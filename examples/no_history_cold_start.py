"""Cold-start model selection: a brand-new zoo with no fine-tuning history.

Run:  python examples/no_history_cold_start.py

§VII-C of the paper: when no training history exists yet, the graph can
be built from transferability scores alone.  This example walks the full
pipeline explicitly — scoring, graph construction, embedding, feature
assembly — rather than through the TransferGraph facade, as a tour of the
public API.
"""


from repro.core import FeatureSet, TransferGraph, TransferGraphConfig
from repro.graph import GraphConfig, build_graph
from repro.probe import compute_dataset_embeddings, record_dataset_similarities
from repro.transferability import score_zoo
from repro.utils import pearson_correlation
from repro.zoo import ZooConfig, get_or_build_zoo


def main() -> None:
    zoo = get_or_build_zoo(ZooConfig.small(modality="image", seed=0))
    target = "dtd"

    # Stage 1 by hand: dataset embeddings, similarities, LogME scores.
    embeddings = compute_dataset_embeddings(zoo)
    n_pairs = record_dataset_similarities(zoo, embeddings)
    scores = score_zoo(zoo, metric="logme")
    print(f"recorded {n_pairs} dataset similarities and "
          f"{len(scores)} LogME scores")

    # Stage 2 by hand: the no-history graph.
    config = GraphConfig(use_accuracy_edges=False,
                         include_pretrain_edges=False)
    graph, links = build_graph(zoo, exclude_target=target, config=config)
    stats = graph.stats()
    print(f"graph: {stats['num_nodes']} nodes, "
          f"{stats['num_md_transferability_edges']} transferability edges, "
          f"{stats['num_dd_edges']} similarity edges")

    # Stages 2-4 through the facade.
    strategy = TransferGraph(TransferGraphConfig(
        predictor="lr", graph_learner="node2vec", embedding_dim=32,
        features=FeatureSet.everything(), graph=config))
    predicted = strategy.scores_for_target(zoo, target)

    ids, truth = zoo.ground_truth(target)
    corr = pearson_correlation(truth, [predicted[m] for m in ids])
    print(f"\ncold-start Pearson on {target}: {corr:+.3f}")
    best = max(predicted, key=predicted.get)
    print(f"top recommendation: {best} "
          f"(actual accuracy {dict(zip(ids, truth))[best]:.3f})")


if __name__ == "__main__":
    main()
