"""Text-modality model selection, including the LoRA setting (§VII-F).

Run:  python examples/text_zoo_selection.py

Evaluates the strategies on the text zoo, then repeats the comparison
with LoRA fine-tuning as the ground truth (Fig. 11b workload: the graph
is still built from full fine-tuning history).
"""

from repro.baselines import AmazonLR, FeatureBasedStrategy
from repro.core import (
    FeatureSet,
    TransferGraph,
    TransferGraphConfig,
    evaluate_strategy,
)
from repro.zoo import ZooConfig, get_or_build_zoo


def main() -> None:
    zoo = get_or_build_zoo(ZooConfig.small(modality="text", seed=0))
    tg = TransferGraph(TransferGraphConfig(
        predictor="lr", graph_learner="node2vec+", embedding_dim=32,
        features=FeatureSet.everything()))
    strategies = [FeatureBasedStrategy("logme"), AmazonLR("all+logme"), tg]

    print("=== full fine-tuning ground truth ===")
    for strategy in strategies:
        ev = evaluate_strategy(strategy, zoo)
        print(f"  {strategy.name:<20} avg Pearson {ev.average_correlation():+.3f}")

    print("\nComputing LoRA fine-tuning history (one-off) ...")
    zoo.ensure_lora_history()
    print("=== LoRA ground truth, full-FT history (Fig. 11b) ===")
    for strategy in strategies:
        ev = evaluate_strategy(strategy, zoo, ground_truth_method="lora")
        print(f"  {strategy.name:<20} avg Pearson {ev.average_correlation():+.3f}")


if __name__ == "__main__":
    main()
