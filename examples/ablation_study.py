"""Feature-set ablation on one target (Fig. 8 workload, single dataset).

Run:  python examples/ablation_study.py

Shows how each feature group changes the quality of the prediction for a
single target dataset, including the cold-start scenario where no
fine-tuning history exists (§VII-C).
"""

from repro.core import (
    FeatureSet,
    TransferGraph,
    TransferGraphConfig,
    evaluate_strategy,
)
from repro.graph import GraphConfig
from repro.zoo import ZooConfig, get_or_build_zoo

FEATURE_SETS = {
    "metadata only (LR)": FeatureSet.basic(),
    "+ similarity + LogME": FeatureSet.all_logme(),
    "graph features only": FeatureSet.graph_only(),
    "metadata + sim + graph": FeatureSet.everything(),
}


def main() -> None:
    zoo = get_or_build_zoo(ZooConfig.small(modality="image", seed=0))
    target = "caltech101"
    print(f"target = {target}\n")
    print(f"{'feature set':<26}{'Pearson':>10}")
    for label, features in FEATURE_SETS.items():
        strategy = TransferGraph(TransferGraphConfig(
            predictor="lr", graph_learner="node2vec", embedding_dim=32,
            features=features))
        ev = evaluate_strategy(strategy, zoo, targets=[target])
        print(f"{label:<26}{ev.results[target].correlation:>+10.3f}")

    print("\ncold start (no fine-tuning history, transferability edges only):")
    strategy = TransferGraph(TransferGraphConfig(
        predictor="lr", graph_learner="node2vec", embedding_dim=32,
        features=FeatureSet.everything(),
        graph=GraphConfig(use_accuracy_edges=False,
                          include_pretrain_edges=False)))
    ev = evaluate_strategy(strategy, zoo, targets=[target])
    print(f"{'no-history TG':<26}{ev.results[target].correlation:>+10.3f}")


if __name__ == "__main__":
    main()
