"""Quickstart: build a zoo, rank models for a new dataset, sanity-check.

Run:  python examples/quickstart.py

Builds (or loads from cache) a small image model zoo, then uses the
TransferGraph strategy to rank all pre-trained models for the
``stanfordcars`` target without fine-tuning any of them — and finally
compares the recommendation against the known ground truth.
"""

from repro.core import (
    FeatureSet,
    TransferGraph,
    TransferGraphConfig,
    top_k_accuracy,
)
from repro.utils import pearson_correlation
from repro.zoo import ZooConfig, get_or_build_zoo


def main() -> None:
    print("Building (or loading) the image model zoo ...")
    zoo = get_or_build_zoo(ZooConfig.small(modality="image", seed=0))
    target = "stanfordcars"
    print(f"zoo: {len(zoo.model_ids())} models, "
          f"{len(zoo.dataset_names())} datasets; target = {target}\n")

    strategy = TransferGraph(TransferGraphConfig(
        predictor="xgb",
        graph_learner="node2vec",
        embedding_dim=32,
        features=FeatureSet.everything(),
    ))
    ranking = strategy.rank_models(zoo, target)

    print("Top 5 recommended models:")
    for model_id, score in ranking[:5]:
        spec = zoo.model(model_id).spec
        print(f"  {model_id:<24} predicted {score:+.3f}   "
              f"(family={spec.family}, source={spec.pretrain_dataset})")

    ids, truth = zoo.ground_truth(target)
    scores = dict(ranking)
    corr = pearson_correlation(truth, [scores[m] for m in ids])
    top5 = top_k_accuracy(zoo, scores, target, k=5)
    print(f"\nPearson(predicted, actual fine-tune accuracy) = {corr:+.3f}")
    print(f"Avg actual accuracy of the top-5 recommendation  = {top5:.3f}")
    print(f"Avg accuracy of a random pick                    = {truth.mean():.3f}")


if __name__ == "__main__":
    main()
