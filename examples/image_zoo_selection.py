"""Compare model-selection strategies on the image zoo (Fig. 7a workload).

Run:  python examples/image_zoo_selection.py

Evaluates random selection, LogME, Amazon LR and TransferGraph with the
leave-one-out protocol over all eight image targets, and prints the
average Pearson correlation and top-5 accuracy per strategy.
"""

from repro.baselines import AmazonLR, FeatureBasedStrategy, RandomSelection
from repro.core import (
    FeatureSet,
    TransferGraph,
    TransferGraphConfig,
    evaluate_strategy,
)
from repro.zoo import ZooConfig, get_or_build_zoo


def main() -> None:
    zoo = get_or_build_zoo(ZooConfig.small(modality="image", seed=0))
    strategies = [
        RandomSelection(seed=0),
        FeatureBasedStrategy("logme"),
        AmazonLR("basic"),
        AmazonLR("all+logme"),
        TransferGraph(TransferGraphConfig(
            predictor="xgb", graph_learner="node2vec", embedding_dim=32,
            features=FeatureSet.everything())),
    ]
    print(f"{'strategy':<20}{'avg Pearson':>14}{'avg top-5 acc':>16}")
    for strategy in strategies:
        ev = evaluate_strategy(strategy, zoo)
        print(f"{strategy.name:<20}{ev.average_correlation():>+14.3f}"
              f"{ev.average_top_k_accuracy(5):>16.3f}")


if __name__ == "__main__":
    main()
