"""Figure 7 — the headline comparison (average Pearson over 8+8 targets).

Paper: image — LogME 0.37, LR 0.26, LR{all,LogME} 0.26, TG:RF 0.64,
TG:XGB 0.67, TG:LR 0.69;  text — LogME 0.58, LR 0.06, LR{all,LogME} 0.57,
TG:RF 0.65, TG:XGB 0.76, TG:LR 0.77.

Expected shape here: every learning-based strategy ≫ LogME ≫ random-level;
TG variants competitive with/above the metadata baselines (our substrate's
metadata is more informative than the paper's — see EXPERIMENTS.md).
"""

from benchmarks.conftest import print_header
from benchmarks.helpers import format_row, main_roster
from repro.core import evaluate_strategy

_PAPER = {
    "image": {"LogME": 0.37, "LR": 0.26, "LR{all,LogME}": 0.26,
              "TG:RF,N2V,all": 0.64, "TG:XGB,N2V,all": 0.67,
              "TG:LR,N2V,all": 0.69},
    "text": {"LogME": 0.58, "LR": 0.06, "LR{all,LogME}": 0.57,
             "TG:RF,N2V,all": 0.65, "TG:XGB,N2V,all": 0.76,
             "TG:LR,N2V,all": 0.77},
}


def _run(zoo):
    out = {}
    for strategy in main_roster():
        out[strategy.name] = evaluate_strategy(strategy, zoo) \
            .average_correlation()
    return out


def test_fig7a_image(benchmark, image_zoo):
    rows = benchmark.pedantic(_run, args=(image_zoo,), rounds=1, iterations=1)
    print_header("Figure 7a — avg Pearson correlation, image datasets")
    for name, value in rows.items():
        paper = _PAPER["image"].get(name)
        suffix = f"   (paper {paper:+.2f})" if paper is not None else ""
        print(format_row(name, value) + suffix)
    best_tg = max(v for k, v in rows.items() if k.startswith("TG:"))
    assert best_tg > rows["LogME"]


def test_fig7b_text(benchmark, text_zoo):
    rows = benchmark.pedantic(_run, args=(text_zoo,), rounds=1, iterations=1)
    print_header("Figure 7b — avg Pearson correlation, textual datasets")
    for name, value in rows.items():
        paper = _PAPER["text"].get(name)
        suffix = f"   (paper {paper:+.2f})" if paper is not None else ""
        print(format_row(name, value) + suffix)
    best_tg = max(v for k, v in rows.items() if k.startswith("TG:"))
    assert best_tg > rows["LogME"]
