"""Strategy roster shared by the benchmark files."""

from __future__ import annotations

from repro.baselines import AmazonLR, FeatureBasedStrategy
from repro.core import FeatureSet, TransferGraph, TransferGraphConfig

#: embedding dimensionality used throughout the benchmarks (the paper uses
#: 128 on a zoo ~8x larger; 32 matches our training-set size — DESIGN.md §2)
BENCH_EMBEDDING_DIM = 32


def tg_strategy(predictor: str = "lr", graph_learner: str = "node2vec",
                features: FeatureSet | None = None, seed: int = 0,
                **config_overrides) -> TransferGraph:
    config = TransferGraphConfig(
        predictor=predictor,
        graph_learner=graph_learner,
        embedding_dim=BENCH_EMBEDDING_DIM,
        features=features or FeatureSet.everything(),
        seed=seed,
        **config_overrides,
    )
    return TransferGraph(config)


def main_roster() -> list:
    """The Fig. 7 strategy roster."""
    return [
        FeatureBasedStrategy("logme"),
        AmazonLR("basic"),
        AmazonLR("all+logme"),
        tg_strategy(predictor="rf"),
        tg_strategy(predictor="xgb"),
        tg_strategy(predictor="lr"),
    ]


def format_row(name: str, value: float, width: int = 22) -> str:
    return f"  {name:<{width}s} {value:+.3f}"
