"""Async router — serial vs concurrent throughput, coalescing proof.

Not a paper figure: this benchmarks the scenario the router exists for.
Eight clients replay the *same* skewed workload concurrently — the
"millions of users asking about the same popular targets" shape — and
single-flight coalescing must keep the cold-fit count at one per
distinct target while total throughput beats the serial ``serve-sim``
baseline by at least 2x (the fits happen once instead of serially
gating every client).

Both runs start from a cold service with no registry, so every distinct
target costs one genuine fit in each mode and the comparison is fair.

The ``--fit-executor`` option (thread | process | both) is the executor
axis: the coalescing bench runs under the chosen executor(s), and
whenever ``process`` is included, ``test_bench_cold_fit_speedup``
additionally measures pure cold-fit throughput — four workers warming
four distinct targets — under both executors and asserts the process
fit plane beats the GIL-bound thread pool by >= 2x.
"""

from __future__ import annotations

import asyncio
import time

from benchmarks.conftest import print_header
from benchmarks.helpers import BENCH_EMBEDDING_DIM
from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import (
    AsyncSelectionRouter,
    SelectionService,
    WorkloadConfig,
    generate_workload,
    replay,
    replay_concurrent,
)
from repro.zoo import ZooConfig, get_or_build_zoo

_CLIENTS = 8
_QUERIES = 60

#: the cold-fit speedup bench: this many workers over this many targets
_FIT_WORKERS = 4


def _bench_config() -> TransferGraphConfig:
    return TransferGraphConfig(
        predictor="lr", graph_learner="node2vec",
        embedding_dim=BENCH_EMBEDDING_DIM, features=FeatureSet.everything())


def _run(fit_executor: str) -> dict[str, float]:
    zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7))
    config = _bench_config()
    workload = generate_workload(zoo, WorkloadConfig(
        num_queries=_QUERIES, zipf_alpha=1.2, seed=3))
    distinct_targets = len({q.target for q in workload})

    serial_service = SelectionService(zoo, config)
    serial = replay(serial_service, workload)
    assert serial["fits"] == distinct_targets

    concurrent_service = SelectionService(zoo, config)
    router = AsyncSelectionRouter(concurrent_service,
                                  fit_executor=fit_executor)
    try:
        # Spawn + zoo hydration happen before the clock starts, so the
        # process axis measures fit parallelism, not worker start-up.
        router.prestart_fit_plane()
        concurrent = replay_concurrent(router, workload, clients=_CLIENTS)
    finally:
        router.close()

    # Coalescing proof: 8x the traffic, still one fit per cold target.
    assert concurrent["fits"] == distinct_targets
    assert concurrent["queries"] == _CLIENTS * _QUERIES
    assert concurrent["coalesced"] > 0

    return {
        "distinct_targets": distinct_targets,
        "serial_qps": serial["qps"],
        "serial_wall_s": serial["wall_s"],
        "concurrent_qps": concurrent["qps"],
        "concurrent_wall_s": concurrent["wall_s"],
        "coalesced": concurrent["coalesced"],
        "fits": concurrent["fits"],
        "fit_p95_ms": concurrent["fit_p95_ms"],
        "predict_p95_ms": concurrent["predict_p95_ms"],
    }


def test_bench_async_router(benchmark, fit_executor):
    rows = benchmark.pedantic(lambda: _run(fit_executor),
                              rounds=1, iterations=1)
    speedup = rows["concurrent_qps"] / rows["serial_qps"]
    print_header(f"Async router — serial vs {_CLIENTS} concurrent clients, "
                 f"{_QUERIES}-query skewed workload (tiny image zoo, "
                 f"{fit_executor} fit executor)")
    print(f"  serial throughput      {rows['serial_qps']:10.1f} qps")
    print(f"  concurrent throughput  {rows['concurrent_qps']:10.1f} qps")
    print(f"  throughput speedup     {speedup:10.1f}x")
    print(f"  cold fits              {rows['fits']:10.0f} "
          f"(== {rows['distinct_targets']:.0f} distinct targets)")
    print(f"  coalesced requests     {rows['coalesced']:10.0f}")
    print(f"  fit p95                {rows['fit_p95_ms']:10.1f} ms")
    print(f"  predict p95            {rows['predict_p95_ms']:10.1f} ms")
    assert speedup >= 2.0


# ---------------------------------------------------------------------- #
# cold-fit throughput: thread pool vs process fit plane
# ---------------------------------------------------------------------- #
def _cold_fit_tput(zoo, targets: list[str], fit_executor: str
                   ) -> tuple[float, float]:
    """(targets-per-second, wall seconds) warming ``targets`` cold."""
    service = SelectionService(zoo, _bench_config())
    router = AsyncSelectionRouter(
        service, max_pending_fits=len(targets),
        fit_workers=_FIT_WORKERS, fit_executor=fit_executor)
    try:
        router.prestart_fit_plane()
        started = time.perf_counter()
        asyncio.run(router.warmup(targets))
        wall = time.perf_counter() - started
        assert router.stats()["fits"] == len(targets)
    finally:
        router.close()
    return len(targets) / wall, wall


def _run_cold_fit() -> dict[str, float]:
    # num_targets=4: the stock tiny zoo has 3 targets; the speedup claim
    # needs at least as many distinct cold fits as workers.
    zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7,
                                          num_targets=_FIT_WORKERS))
    targets = zoo.target_names()
    assert len(targets) >= _FIT_WORKERS
    thread_tput, thread_wall = _cold_fit_tput(zoo, targets, "thread")
    process_tput, process_wall = _cold_fit_tput(zoo, targets, "process")
    return {
        "targets": len(targets),
        "thread_tput": thread_tput,
        "thread_wall_s": thread_wall,
        "process_tput": process_tput,
        "process_wall_s": process_wall,
    }


def test_bench_cold_fit_speedup(benchmark, request):
    import os

    import pytest

    if request.config.getoption("--fit-executor") == "thread":
        pytest.skip("thread-only run; pass --fit-executor process (or "
                    "both) to bench the process fit plane")
    if (os.cpu_count() or 1) < _FIT_WORKERS:
        # The speedup is CPU parallelism; on fewer cores than workers
        # the process plane can only lose to its own IPC overhead.
        pytest.skip(f"{os.cpu_count()} cores < {_FIT_WORKERS} fit workers; "
                    "the >=2x cold-fit speedup needs real parallelism")
    rows = benchmark.pedantic(_run_cold_fit, rounds=1, iterations=1)
    speedup = rows["process_tput"] / rows["thread_tput"]
    print_header(f"Cold-fit throughput — {_FIT_WORKERS} fit workers, "
                 f"{rows['targets']:.0f} distinct cold targets "
                 f"(TransferGraph fits)")
    print(f"  thread executor        {rows['thread_tput']:10.2f} fits/s "
          f"({rows['thread_wall_s']:6.2f} s wall)")
    print(f"  process executor       {rows['process_tput']:10.2f} fits/s "
          f"({rows['process_wall_s']:6.2f} s wall)")
    print(f"  process speedup        {speedup:10.1f}x")
    # The whole point of the fit plane: pure-Python fit stages (walks,
    # SGNS) hold the GIL, so threads serve cold fits at ~1 core while
    # processes scale with the worker count.
    assert speedup >= 2.0
