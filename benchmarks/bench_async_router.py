"""Async router — serial vs concurrent throughput, coalescing proof.

Not a paper figure: this benchmarks the scenario the router exists for.
Eight clients replay the *same* skewed workload concurrently — the
"millions of users asking about the same popular targets" shape — and
single-flight coalescing must keep the cold-fit count at one per
distinct target while total throughput beats the serial ``serve-sim``
baseline by at least 2x (the fits happen once instead of serially
gating every client).

Both runs start from a cold service with no registry, so every distinct
target costs one genuine fit in each mode and the comparison is fair.
"""

from __future__ import annotations

from benchmarks.conftest import print_header
from benchmarks.helpers import BENCH_EMBEDDING_DIM
from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import (
    AsyncSelectionRouter,
    SelectionService,
    WorkloadConfig,
    generate_workload,
    replay,
    replay_concurrent,
)
from repro.zoo import ZooConfig, get_or_build_zoo

_CLIENTS = 8
_QUERIES = 60


def _run() -> dict[str, float]:
    zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7))
    config = TransferGraphConfig(
        predictor="lr", graph_learner="node2vec",
        embedding_dim=BENCH_EMBEDDING_DIM, features=FeatureSet.everything())
    workload = generate_workload(zoo, WorkloadConfig(
        num_queries=_QUERIES, zipf_alpha=1.2, seed=3))
    distinct_targets = len({q.target for q in workload})

    serial_service = SelectionService(zoo, config)
    serial = replay(serial_service, workload)
    assert serial["fits"] == distinct_targets

    concurrent_service = SelectionService(zoo, config)
    router = AsyncSelectionRouter(concurrent_service)
    try:
        concurrent = replay_concurrent(router, workload, clients=_CLIENTS)
    finally:
        router.close()

    # Coalescing proof: 8x the traffic, still one fit per cold target.
    assert concurrent["fits"] == distinct_targets
    assert concurrent["queries"] == _CLIENTS * _QUERIES
    assert concurrent["coalesced"] > 0

    return {
        "distinct_targets": distinct_targets,
        "serial_qps": serial["qps"],
        "serial_wall_s": serial["wall_s"],
        "concurrent_qps": concurrent["qps"],
        "concurrent_wall_s": concurrent["wall_s"],
        "coalesced": concurrent["coalesced"],
        "fits": concurrent["fits"],
        "fit_p95_ms": concurrent["fit_p95_ms"],
        "predict_p95_ms": concurrent["predict_p95_ms"],
    }


def test_bench_async_router(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = rows["concurrent_qps"] / rows["serial_qps"]
    print_header(f"Async router — serial vs {_CLIENTS} concurrent clients, "
                 f"{_QUERIES}-query skewed workload (tiny image zoo)")
    print(f"  serial throughput      {rows['serial_qps']:10.1f} qps")
    print(f"  concurrent throughput  {rows['concurrent_qps']:10.1f} qps")
    print(f"  throughput speedup     {speedup:10.1f}x")
    print(f"  cold fits              {rows['fits']:10.0f} "
          f"(== {rows['distinct_targets']:.0f} distinct targets)")
    print(f"  coalesced requests     {rows['coalesced']:10.0f}")
    print(f"  fit p95                {rows['fit_p95_ms']:10.1f} ms")
    print(f"  predict p95            {rows['predict_p95_ms']:10.1f} ms")
    assert speedup >= 2.0
