"""Store scale — indexed lookups at 1e6 rows, incremental vs full refit.

Not a paper figure: this gates the durability tentpole (ROADMAP open
item 2, "survive a zoo with millions of targets").  Two contracts:

- **Indexed lookup is sublinear.**  A million-row synthetic history
  table answers an equality filter on an indexed column through a
  SQLite B-tree; the same filter without the index scans every row.
  The indexed lookup must beat the scan by >=10x at 1e6 rows and must
  not grow with table size the way the scan does (10x more rows may
  cost the index at most 5x, where the scan pays ~10x).

- **Incremental refresh is O(changed edges).**  After a 1-row history
  update, `Node2Vec.refresh` re-walks only the dirty nodes' 1-hop
  frontier and warm-starts SGNS, while a full refit re-embeds every
  node.  Embedding dominates a TG fit (>90% of fit wall-clock on the
  tiny zoo), so the learner-level speedup bounds the service-level
  one.  Required: >=5x on a graph large enough that the frontier is a
  small fraction of the nodes (360 nodes here; the ratio grows with
  zoo size because refresh cost tracks the frontier, not the graph).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import print_header
from benchmarks.helpers import BENCH_EMBEDDING_DIM
from repro.graph import ModelDatasetGraph, Node2Vec
from repro.store import Column, Schema, SQLiteStore

_SMALL_ROWS = 100_000
_LARGE_ROWS = 1_000_000
_MODELS = 500            # -> _LARGE_ROWS / _MODELS datasets per model
_LOOKUP_ROUNDS = 30


def _history_schema(name: str) -> Schema:
    return Schema(
        name=name,
        columns=[
            Column("model_id", "str"),
            Column("dataset_id", "str"),
            Column("accuracy", "float"),
        ],
        primary_key=("model_id", "dataset_id"),
    )


def _fill(table, n_rows: int, chunk: int = 50_000) -> None:
    datasets = n_rows // _MODELS
    buffer: list[dict] = []
    for m in range(_MODELS):
        for d in range(datasets):
            buffer.append({"model_id": f"m{m:05d}",
                           "dataset_id": f"d{d:05d}",
                           "accuracy": (m * 31 + d) % 97 / 97.0})
            if len(buffer) >= chunk:
                table.load_records(buffer)
                buffer = []
    if buffer:
        table.load_records(buffer)


def _best_lookup(table, dataset_ids: list[str]) -> float:
    best = float("inf")
    for i in range(_LOOKUP_ROUNDS):
        key = dataset_ids[i % len(dataset_ids)]
        start = time.perf_counter()
        rows = table.filter(dataset_id=key)
        best = min(best, time.perf_counter() - start)
        assert len(rows) == _MODELS
    return best


def _run_lookup(tmp_path) -> dict[str, float]:
    out: dict[str, float] = {}
    for label, n_rows in (("small", _SMALL_ROWS), ("large", _LARGE_ROWS)):
        store = SQLiteStore(tmp_path / f"{label}.db")
        indexed = store.table(_history_schema("indexed")).add_index("dataset_id")
        scanned = store.table(_history_schema("scanned"))
        _fill(indexed, n_rows)
        _fill(scanned, n_rows)
        keys = [f"d{d:05d}" for d in range(0, n_rows // _MODELS, 7)]
        out[f"indexed_{label}_s"] = _best_lookup(indexed, keys)
        out[f"scan_{label}_s"] = _best_lookup(scanned, keys)
        store.close()
    return out


def _synthetic_graph(n_models: int = 240, n_datasets: int = 120,
                     degree: int = 10) -> ModelDatasetGraph:
    """The GraphBuilder's output shape, at a size the tiny zoo can't reach."""
    g = ModelDatasetGraph()
    models = [f"m{i}" for i in range(n_models)]
    datasets = [f"d{i}" for i in range(n_datasets)]
    for m in models:
        g.add_node(m, "model")
    for d in datasets:
        g.add_node(d, "dataset")
    rng = np.random.default_rng(11)
    for i, m in enumerate(models):
        for d in rng.choice(n_datasets, size=degree, replace=False):
            g.add_edge(m, datasets[d], 0.2 + 0.8 * ((i + d) % 13) / 13,
                       "accuracy")
    for i in range(n_datasets - 1):
        g.add_edge(datasets[i], datasets[i + 1], 0.5, "similarity")
    return g


def _run_refresh() -> dict[str, float]:
    graph = _synthetic_graph()
    learner = Node2Vec(dim=BENCH_EMBEDDING_DIM, seed=3,
                       num_walks=4, walk_length=10, epochs=2)

    start = time.perf_counter()
    embeddings = learner.embed(graph)
    full_s = time.perf_counter() - start

    # a single history-row update dirties its two incident nodes
    dirty = {"m7", "d3"}
    start = time.perf_counter()
    refreshed = learner.refresh(graph, embeddings, dirty)
    refresh_s = time.perf_counter() - start
    assert set(refreshed) == set(graph.nodes())

    frontier = set(dirty)
    for node in dirty:
        frontier.update(nb for nb, _w, _k in graph.neighbors(node))
    return {
        "full_s": full_s,
        "refresh_s": refresh_s,
        "frontier": len(frontier),
        "nodes": len(graph.nodes()),
    }


def test_bench_store_scale(benchmark, tmp_path):
    def run():
        rows = _run_lookup(tmp_path / "lookup")
        rows.update(_run_refresh())
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Store scale — indexed lookup + incremental refresh")
    print(f"  lookup @ {_SMALL_ROWS:>9,d} rows: "
          f"indexed {rows['indexed_small_s'] * 1e6:8.1f} us   "
          f"scan {rows['scan_small_s'] * 1e3:8.2f} ms")
    print(f"  lookup @ {_LARGE_ROWS:>9,d} rows: "
          f"indexed {rows['indexed_large_s'] * 1e6:8.1f} us   "
          f"scan {rows['scan_large_s'] * 1e3:8.2f} ms")
    scan_speedup = rows["scan_large_s"] / rows["indexed_large_s"]
    index_growth = rows["indexed_large_s"] / rows["indexed_small_s"]
    print(f"  indexed vs scan @ 1e6     {scan_speedup:8.1f}x")
    print(f"  indexed cost growth (10x rows) {index_growth:5.2f}x")
    print(f"  full embed ({rows['nodes']:.0f} nodes)     "
          f"{rows['full_s'] * 1e3:8.1f} ms")
    print(f"  refresh (frontier {rows['frontier']:.0f})      "
          f"{rows['refresh_s'] * 1e3:8.1f} ms")
    refresh_speedup = rows["full_s"] / rows["refresh_s"]
    print(f"  incremental speedup       {refresh_speedup:8.1f}x")

    assert scan_speedup >= 10.0
    assert index_growth <= 5.0
    assert refresh_speedup >= 5.0
