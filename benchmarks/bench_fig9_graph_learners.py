"""Figure 9 — effect of the graph learner (image, LR prediction model).

Paper: GraphSAGE 0.35 < GAT 0.54 < N2V+ 0.69 ≈ N2V 0.69.
Expected shape: the Node2Vec family ≥ the GNNs on this small graph
(the paper attributes the GNN gap to graph size).
"""

from benchmarks.conftest import print_header
from benchmarks.helpers import format_row, tg_strategy
from repro.core import evaluate_strategy

_PAPER = {"graphsage": 0.35, "gat": 0.54, "node2vec+": 0.69, "node2vec": 0.69}


def _run(zoo):
    out = {}
    for learner in ("graphsage", "gat", "node2vec+", "node2vec"):
        strategy = tg_strategy(predictor="lr", graph_learner=learner)
        out[learner] = evaluate_strategy(strategy, zoo).average_correlation()
    return out


def test_fig9_graph_learners(benchmark, image_zoo):
    rows = benchmark.pedantic(_run, args=(image_zoo,), rounds=1, iterations=1)
    print_header("Figure 9 — graph learners (image, TG:LR,*,all)")
    for learner, value in rows.items():
        print(format_row(learner, value) + f"   (paper {_PAPER[learner]:+.2f})")
    n2v_best = max(rows["node2vec"], rows["node2vec+"])
    gnn_best = max(rows["graphsage"], rows["gat"])
    assert n2v_best >= gnn_best - 0.1  # Node2Vec family wins / ties
