"""HTTP front door — end-to-end qps vs the in-process async router.

Not a paper figure: this measures what the wire costs.  The same warm
skewed workload is replayed twice with 8 concurrent clients — once
straight through an :class:`AsyncSelectionRouter` (function calls in one
process) and once as real HTTP/1.1 exchanges against a
:class:`GatewayHTTPServer` on a loopback socket (connection setup,
request parsing, protocol JSON both ways).  Both sides are warmed first
so the comparison isolates per-request overhead rather than cold-fit
throughput (which `bench_async_router.py` already covers).
"""

from __future__ import annotations

import asyncio
import time

from benchmarks.conftest import print_header
from benchmarks.helpers import BENCH_EMBEDDING_DIM
from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import (
    AsyncSelectionRouter,
    GatewayHTTPServer,
    RankRequest,
    SelectionGateway,
    SelectionService,
    WorkloadConfig,
    generate_workload,
    replay_concurrent,
)
from repro.zoo import ZooConfig, get_or_build_zoo

_CLIENTS = 8
_QUERIES = 60
_NAMESPACE = "bench"


async def _http_exchange(host: str, port: int, path: str,
                         payload: bytes) -> int:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
                      f"Content-Length: {len(payload)}\r\n\r\n"
                      ).encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    return int(raw.split(b" ", 2)[1])


async def _http_replay(gateway: SelectionGateway, workload,
                       clients: int) -> float:
    """Replay the workload over live HTTP; returns wall seconds."""
    server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
    host, port = await server.start()
    bodies = [(("/v1/rank" if isinstance(request, RankRequest)
                else "/v1/score_batch"), request.to_json().encode())
              for request in workload]

    async def client() -> None:
        for path, payload in bodies:
            status = await _http_exchange(host, port, path, payload)
            assert status == 200, f"unexpected HTTP {status}"

    started = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(clients)))
    elapsed = time.perf_counter() - started
    await server.close()
    return elapsed


def _run() -> dict[str, float]:
    zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7))
    config = TransferGraphConfig(
        predictor="lr", graph_learner="node2vec",
        embedding_dim=BENCH_EMBEDDING_DIM, features=FeatureSet.everything())
    workload = generate_workload(zoo, WorkloadConfig(
        num_queries=_QUERIES, zipf_alpha=1.2, seed=3), namespace=_NAMESPACE)

    # --- in-process baseline: warm router, function-call transport ----- #
    router = AsyncSelectionRouter(SelectionService(zoo, config))
    try:
        asyncio.run(router.warmup())
        in_process = replay_concurrent(router, workload, clients=_CLIENTS)
        assert in_process["fits"] == 0  # warm: transport cost only
    finally:
        router.close()

    # --- the same traffic as real loopback HTTP ------------------------ #
    gateway = SelectionGateway()
    gateway.add_namespace(_NAMESPACE, zoo, config)
    try:
        async def measured() -> float:
            await gateway.warmup()
            return await _http_replay(gateway, workload, _CLIENTS)

        http_wall = asyncio.run(measured())
        stats = gateway.stats()
        # warmup fitted every target once; the replay itself stayed warm
        assert stats.namespaces[_NAMESPACE]["fits"] == len(zoo.target_names())
        assert stats.fleet["queries"] == _CLIENTS * _QUERIES
    finally:
        gateway.close()

    total = _CLIENTS * _QUERIES
    return {
        "in_process_qps": in_process["qps"],
        "http_qps": total / http_wall,
        "http_wall_s": http_wall,
        "queries": total,
        "p95_ms": in_process["p95_ms"],
    }


def test_bench_http_gateway(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    overhead = rows["in_process_qps"] / rows["http_qps"]
    print_header(f"HTTP gateway — {_CLIENTS} clients, warm "
                 f"{_QUERIES}-query workload, loopback HTTP vs in-process")
    print(f"  in-process throughput  {rows['in_process_qps']:10.1f} qps")
    print(f"  HTTP throughput        {rows['http_qps']:10.1f} qps")
    print(f"  wire overhead          {overhead:10.2f}x")
    print(f"  queries served         {rows['queries']:10.0f}")
    # The wire must stay the transport, not the bottleneck: end-to-end
    # HTTP keeps a usable fraction of in-process throughput.
    assert rows["http_qps"] >= rows["in_process_qps"] / 10
