"""Figure 13 (Appendix B) — effect of the training-history input ratio.

Ratios {0.3, 0.5, 0.7, 1.0} of the history are kept when building the
graph and training set.  Paper: the metadata-only strategy (LR,all) is
robust to low ratios, while the graph-feature strategy degrades —
"with a small input ratio, the constructed graph may have a large number
of disconnected components".
"""

import numpy as np

from benchmarks.conftest import print_header
from benchmarks.helpers import tg_strategy
from repro.baselines import AmazonLR
from repro.core import evaluate_strategy
from repro.graph import GraphConfig

RATIOS = (0.3, 0.5, 0.7, 1.0)


class _SubsampledAmazonLR(AmazonLR):
    """LR{all} whose underlying graph config carries the history ratio.

    Metadata features don't depend on the graph, but the ratio also
    reduces the training rows seen by the regressor via the builder's
    link subsampling — mirroring the paper's protocol.
    """


def _run(zoo):
    rows = {"LR,all": {}, "TG:LR,N2V+,all": {}}
    for ratio in RATIOS:
        graph = GraphConfig(history_ratio=ratio)
        lr = AmazonLR("all")
        rows["LR,all"][ratio] = evaluate_strategy(lr, zoo) \
            .average_correlation()
        tg = tg_strategy(graph_learner="node2vec+", graph=graph)
        rows["TG:LR,N2V+,all"][ratio] = evaluate_strategy(tg, zoo) \
            .average_correlation()
    return rows


def test_fig13_input_ratio(benchmark, image_zoo):
    rows = benchmark.pedantic(_run, args=(image_zoo,), rounds=1, iterations=1)
    print_header("Figure 13 — training-history input ratio (image)")
    print("  " + f"{'strategy':<18}" + "".join(f"{r:>8}" for r in RATIOS))
    for name, by_ratio in rows.items():
        print(f"  {name:<18}" + "".join(f"{by_ratio[r]:>8.2f}" for r in RATIOS))
    # Reproduced shape: the metadata strategy is robust across ratios
    # (paper: "LR,all is more robust even when limited training history").
    # The paper's *second* observation — the graph strategy collapsing at
    # ratio 0.3 — does NOT reproduce here: with only 18 datasets our graph
    # stays connected after subsampling, whereas the paper's 73-dataset
    # graph fragments ("a large number of disconnected components").
    # See EXPERIMENTS.md.
    lr = rows["LR,all"]
    assert max(lr.values()) - min(lr.values()) < 0.15
    tg = rows["TG:LR,N2V+,all"]
    assert all(np.isfinite(v) for v in tg.values())
