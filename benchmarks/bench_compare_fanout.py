"""``/v1/compare`` fan-out — concurrent strategy map vs serial ranks.

Not a paper figure: this measures what the served comparison buys.  A
three-strategy namespace (a TG variant, LogME, random — the acceptance
roster) answers every target two ways, both warm:

- **serial** — one ``/v1/rank`` per strategy awaited one after the
  other, plus one ``/v1/stats`` poll (how a client compared strategies
  before the endpoint existed: collect rankings, then scrape latency
  summaries, then correlate offline);
- **fan-out** — one ``/v1/compare`` per target: the gateway fans the
  strategy map concurrently through the per-strategy routers and
  answers rankings, correlations, and per-strategy live latency
  percentiles in one response.

The fan-out must not lose to the serial sweep (it overlaps the
per-strategy predicts and summarises only the strategies it fanned,
not the whole fleet) and must return the identical rankings — the
comparison is a view over the same serving state, never a second code
path.
"""

from __future__ import annotations

import asyncio
import time

from benchmarks.conftest import print_header
from benchmarks.helpers import BENCH_EMBEDDING_DIM
from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import CompareRequest, RankRequest, SelectionGateway
from repro.zoo import ZooConfig, get_or_build_zoo

_NAMESPACE = "bench"
_ROUNDS = 30


def _build_gateway(zoo) -> SelectionGateway:
    config = TransferGraphConfig(
        predictor="lr", graph_learner="node2vec",
        embedding_dim=BENCH_EMBEDDING_DIM, features=FeatureSet.everything())
    gateway = SelectionGateway()
    gateway.add_namespace(_NAMESPACE, zoo, config,
                          strategies=("logme", "random"),
                          fit_budgets="weighted")
    return gateway


async def _measure(gateway: SelectionGateway, targets: list[str]) -> dict:
    await gateway.warmup()
    specs = gateway.strategies(_NAMESPACE)

    serial = time.perf_counter()
    serial_rankings: dict[tuple[str, str], tuple] = {}
    for _ in range(_ROUNDS):
        for target in targets:
            for spec in specs:
                response = await gateway.rank(RankRequest(
                    target=target, namespace=_NAMESPACE, strategy=spec))
                serial_rankings[(target, spec)] = response.ranking
            gateway.stats()  # the latency numbers a comparison needs
    serial_s = time.perf_counter() - serial

    fanned = time.perf_counter()
    fanout_rankings: dict[tuple[str, str], tuple] = {}
    for _ in range(_ROUNDS):
        for target in targets:
            response = await gateway.compare(CompareRequest(
                target=target, namespace=_NAMESPACE))
            for spec, comparison in response.results.items():
                fanout_rankings[(target, spec)] = comparison.ranking
    fanout_s = time.perf_counter() - fanned

    assert fanout_rankings == serial_rankings  # same state, same answers
    return {"serial_s": serial_s, "fanout_s": fanout_s,
            "strategies": float(len(specs)),
            "compares": float(_ROUNDS * len(targets))}


def _run() -> dict[str, float]:
    zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7))
    gateway = _build_gateway(zoo)
    try:
        return asyncio.run(_measure(gateway, zoo.target_names()))
    finally:
        gateway.close()


def test_bench_compare_fanout(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    per_compare_ms = rows["fanout_s"] / rows["compares"] * 1e3
    per_serial_ms = rows["serial_s"] / rows["compares"] * 1e3
    print_header(f"/v1/compare fan-out — {rows['strategies']:.0f}-strategy "
                 f"map, {rows['compares']:.0f} warm comparisons")
    print(f"  serial rank sweep      {per_serial_ms:10.2f} ms/target")
    print(f"  compare fan-out        {per_compare_ms:10.2f} ms/target")
    print(f"  speedup                {per_serial_ms / per_compare_ms:10.2f}x")
    # The fan-out overlaps per-strategy predicts; generous bound so CI
    # scheduling noise cannot flake the build.
    assert per_compare_ms <= per_serial_ms * 1.5
