"""Figure 2 — average fine-tuned accuracy of the top-5 selected models.

Paper (stanfordcars): Random 0.52 < LogME (SOTA feature-based) 0.70 < TG 0.76.
Expected shape here: Random < LogME ≤ TG, on stanfordcars and on average.
"""

from benchmarks.conftest import print_header
from benchmarks.helpers import tg_strategy
from repro.baselines import FeatureBasedStrategy, RandomSelection
from repro.core import top_k_accuracy


def _run(image_zoo):
    target = "stanfordcars"
    rows = {}
    for strategy in (RandomSelection(seed=0), FeatureBasedStrategy("logme"),
                     tg_strategy(predictor="xgb")):
        scores = strategy.scores_for_target(image_zoo, target)
        rows[strategy.name] = top_k_accuracy(image_zoo, scores, target, k=5)
    return rows


def test_fig2_top5_accuracy(benchmark, image_zoo):
    rows = benchmark.pedantic(_run, args=(image_zoo,), rounds=1, iterations=1)
    print_header("Figure 2 — top-5 avg fine-tuned accuracy (stanfordcars)")
    print(f"  {'paper:':<12} Random 0.52 | LogME 0.70 | TG 0.76")
    parts = " | ".join(f"{k} {v:.2f}" for k, v in rows.items())
    print(f"  {'measured:':<12} {parts}")
    assert rows["Random"] < max(rows.values())
