"""Figure 12 (Appendix A) — effect of the dataset representation.

Task2Vec vs Domain Similarity embeddings, with the XGB predictor over
GraphSAGE and Node2Vec features.  Paper: "only slight differences ... on
most of the datasets"; Task2Vec shows no advantage for GraphSAGE.
"""

from benchmarks.conftest import print_header
from benchmarks.helpers import tg_strategy
from repro.core import evaluate_strategy
from repro.graph import GraphConfig
from repro.probe import compute_dataset_embeddings, record_dataset_similarities


def _run(zoo):
    # Record Task2Vec similarities once so the builder can use them.
    embeddings = compute_dataset_embeddings(zoo, method="task2vec")
    record_dataset_similarities(zoo, embeddings, method="task2vec")

    rows = {}
    for learner in ("graphsage", "node2vec"):
        for method in ("domain_similarity", "task2vec"):
            strategy = tg_strategy(
                predictor="xgb", graph_learner=learner,
                graph=GraphConfig(similarity_method=method))
            key = f"XGB,{learner},{method}"
            rows[key] = evaluate_strategy(strategy, zoo).average_correlation()
    return rows


def test_fig12_dataset_representations(benchmark, image_zoo):
    rows = benchmark.pedantic(_run, args=(image_zoo,), rounds=1, iterations=1)
    print_header("Figure 12 — dataset representations (image)")
    for key, value in rows.items():
        print(f"  {key:<40} {value:+.3f}")
    # shape: representations produce broadly similar results per learner
    for learner in ("graphsage", "node2vec"):
        a = rows[f"XGB,{learner},domain_similarity"]
        b = rows[f"XGB,{learner},task2vec"]
        assert abs(a - b) < 0.35
