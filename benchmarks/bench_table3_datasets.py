"""Table III — properties of the target datasets.

Prints the paper's sample/class counts next to our scaled-down versions
(~20x smaller, classes clamped to 12; DESIGN.md §2).
"""

from benchmarks.conftest import print_header


def _rows(zoo):
    out = []
    for name in zoo.target_names():
        spec = zoo.dataset(name).spec
        out.append((name, spec.paper_samples, spec.num_samples,
                    spec.paper_classes, spec.num_classes))
    return out


def test_table3_dataset_properties(benchmark, image_zoo, text_zoo):
    rows = benchmark.pedantic(
        lambda: {"image": _rows(image_zoo), "text": _rows(text_zoo)},
        rounds=1, iterations=1)
    print_header("Table III — target dataset properties (paper -> scaled)")
    for modality in ("image", "text"):
        print(f"  [{modality}]")
        print(f"  {'dataset':<24}{'samples':>16}{'classes':>14}")
        for name, ps, ss, pc, sc in rows[modality]:
            print(f"  {name:<24}{ps:>8} -> {ss:<5}{pc:>7} -> {sc:<4}")
    for modality in ("image", "text"):
        assert len(rows[modality]) == 8  # eight targets per modality
