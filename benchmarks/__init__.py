"""Benchmark suite: one module per table/figure of the paper (DESIGN.md §4)."""
