"""Figure 11 — effect of the fine-tuning method (LoRA, text datasets).

Two settings, as in §VII-F:
  (a) LoRA results used for *both* the training history and the ground
      truth (paper: LogME 0.74, LR{all} 0.06, LR{all,LogME} 0.74,
      TG:LR,N2V+,all 0.80);
  (b) graph/history built from full fine-tuning, ground truth from LoRA
      (paper: ... TG 0.78) — mixing methods barely hurts.
"""

from benchmarks.conftest import print_header
from benchmarks.helpers import format_row, tg_strategy
from repro.baselines import AmazonLR, FeatureBasedStrategy
from repro.core import evaluate_strategy
from repro.graph import GraphConfig


def _run(zoo):
    zoo.ensure_lora_history()
    rows = {}

    # (a) LoRA everywhere: history labels + graph edges + ground truth.
    lora_graph = GraphConfig(history_method="lora")
    strategies_a = [
        FeatureBasedStrategy("logme"),
        AmazonLR("all+logme", label_method="lora"),
        tg_strategy(graph_learner="node2vec+", graph=lora_graph,
                    label_method="lora"),
    ]
    rows["a"] = {
        s.name: evaluate_strategy(s, zoo, ground_truth_method="lora")
        .average_correlation()
        for s in strategies_a
    }

    # (b) train on full-FT history, predict LoRA ground truth.
    strategies_b = [
        FeatureBasedStrategy("logme"),
        AmazonLR("all+logme"),
        tg_strategy(graph_learner="node2vec+"),
    ]
    rows["b"] = {
        s.name: evaluate_strategy(s, zoo, ground_truth_method="lora")
        .average_correlation()
        for s in strategies_b
    }
    return rows


def test_fig11_lora_finetuning(benchmark, text_zoo):
    rows = benchmark.pedantic(_run, args=(text_zoo,), rounds=1, iterations=1)
    print_header("Figure 11 — LoRA fine-tuning method (text)")
    print("  (a) LoRA history + LoRA ground truth  (paper: TG 0.80)")
    for name, value in rows["a"].items():
        print(format_row(name, value))
    print("  (b) full-FT history, LoRA ground truth  (paper: TG 0.78)")
    for name, value in rows["b"].items():
        print(format_row(name, value))
    # shape: TG stays competitive under both settings, and switching the
    # fine-tuning method between stages does not collapse performance
    tg_a = rows["a"]["TG:LR,N2V+,all"]
    tg_b = rows["b"]["TG:LR,N2V+,all"]
    assert tg_b > tg_a - 0.25
