"""Fit fleet — 2 fit-worker daemons vs the in-process thread pool.

Not a paper figure: this benchmarks the scenario the fleet exists for
(ROADMAP item 1b).  A cold multi-target TransferGraph workload — every
target needs a genuine walk-generation + SGNS fit — is served once by
the GIL-bound thread executor and once by ``fit_executor="socket"``
dispatching to two real ``repro fit-worker`` daemon processes.  Pure
Python fit stages hold the GIL, so the thread pool serves cold fits at
roughly one core while the fleet scales with the worker count: with two
daemons the workload must complete at least 2x faster.

Both runs start from a cold service, so every target costs one genuine
fit in each mode; daemon start-up and per-daemon zoo hydration happen
before the clock (mirroring the process plane's prestart) so the axis
measures fit parallelism, not interpreter spawn.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from pathlib import Path

from benchmarks.conftest import print_header
from benchmarks.helpers import BENCH_EMBEDDING_DIM
from repro.core import FeatureSet, TransferGraphConfig
from repro.fleet import FleetCoordinator
from repro.serving import AsyncSelectionRouter, SelectionService
from repro.zoo import ZooConfig, get_or_build_zoo

#: the fleet under test: this many fit-worker daemon processes
_FLEET_WORKERS = 2

#: distinct cold targets in the workload (>= 2x the fleet so every
#: daemon fits a full pipeline of work)
_TARGETS = 4

_SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def _bench_config() -> TransferGraphConfig:
    return TransferGraphConfig(
        predictor="lr", graph_learner="node2vec",
        embedding_dim=BENCH_EMBEDDING_DIM, features=FeatureSet.everything())


def _spawn_daemon(host: str, port: int, name: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(_SRC_DIR), env.get("PYTHONPATH")) if p)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fit-worker",
         "--connect", f"{host}:{port}", "--name", name],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _cold_fit_wall(zoo, targets, fit_executor, fleet=None) -> float:
    """Wall seconds to warm ``targets`` cold under one executor."""
    service = SelectionService(zoo, _bench_config())
    router = AsyncSelectionRouter(
        service, max_pending_fits=len(targets), fit_workers=len(targets),
        fit_executor=fit_executor, fleet=fleet)
    try:
        started = time.perf_counter()
        asyncio.run(router.warmup(targets))
        wall = time.perf_counter() - started
        assert router.stats()["fits"] == len(targets)
    finally:
        router.close()
    return wall


def _run_fleet_bench() -> dict[str, float]:
    zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7,
                                          num_targets=_TARGETS))
    targets = zoo.target_names()
    assert len(targets) >= _TARGETS

    thread_wall = _cold_fit_wall(zoo, targets, "thread")

    fleet = FleetCoordinator("127.0.0.1", 0)
    host, port = fleet.start()
    daemons = [_spawn_daemon(host, port, f"bench{i}")
               for i in range(_FLEET_WORKERS)]
    try:
        fleet.wait_for_workers(_FLEET_WORKERS, timeout_s=120.0)
        # Pre-pay each daemon's zoo hydration: one concurrent fit per
        # daemon (least-outstanding dispatch spreads them), results
        # discarded with the throwaway service.
        _cold_fit_wall(zoo, targets[:_FLEET_WORKERS], "socket", fleet=fleet)
        socket_wall = _cold_fit_wall(zoo, targets, "socket", fleet=fleet)
    finally:
        fleet.close()
        for daemon in daemons:
            daemon.terminate()
            daemon.wait(timeout=10)

    return {
        "targets": len(targets),
        "thread_wall_s": thread_wall,
        "thread_tput": len(targets) / thread_wall,
        "socket_wall_s": socket_wall,
        "socket_tput": len(targets) / socket_wall,
    }


def test_bench_fit_fleet(benchmark):
    import pytest

    if (os.cpu_count() or 1) < 2 * _FLEET_WORKERS:
        # The speedup is CPU parallelism across daemon processes; on a
        # starved box the fleet can only lose to its own socket hop.
        pytest.skip(f"{os.cpu_count()} cores < {2 * _FLEET_WORKERS}; the "
                    f">=2x fleet speedup needs real parallelism")
    rows = benchmark.pedantic(_run_fleet_bench, rounds=1, iterations=1)
    speedup = rows["thread_wall_s"] / rows["socket_wall_s"]
    print_header(f"Fit fleet — {_FLEET_WORKERS} fit-worker daemons vs the "
                 f"thread pool, {rows['targets']:.0f} cold TG targets")
    print(f"  thread executor        {rows['thread_tput']:10.2f} fits/s "
          f"({rows['thread_wall_s']:6.2f} s wall)")
    print(f"  socket fleet           {rows['socket_tput']:10.2f} fits/s "
          f"({rows['socket_wall_s']:6.2f} s wall)")
    print(f"  fleet speedup          {speedup:10.1f}x")
    # The fleet's reason to exist: cold TG fits hold the GIL, so the
    # thread pool is ~serial while daemons scale with the fleet size.
    assert speedup >= 2.0
