"""Serving latency — cold fit vs warm-cache vs registry-warm ``rank``.

Not a paper figure: this benchmarks the serving subsystem the paper's
pitch implies.  A cold query refits graph, embeddings, and predictor;
a warm query answers from the in-memory LRU; a registry-warm query
revives the on-disk artifact (rebuilding only the LOO graph).  The
warm path must be at least 10x faster than the cold path.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_header
from benchmarks.helpers import BENCH_EMBEDDING_DIM
from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import ArtifactRegistry, SelectionService
from repro.zoo import ZooConfig, get_or_build_zoo

_WARM_ROUNDS = 20


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run(registry_root) -> dict[str, float]:
    zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7))
    config = TransferGraphConfig(
        predictor="xgb", graph_learner="node2vec",
        embedding_dim=BENCH_EMBEDDING_DIM, features=FeatureSet.everything())
    registry = ArtifactRegistry(registry_root)
    target = zoo.target_names()[0]

    service = SelectionService(zoo, config, registry=registry)
    start = time.perf_counter()
    cold_rank = service.rank(target, top_k=5)
    cold_s = time.perf_counter() - start
    assert service.stats()["fits"] == 1

    warm_s = _best_of(lambda: service.rank(target, top_k=5), _WARM_ROUNDS)
    assert service.stats()["fits"] == 1  # never refit on the warm path
    assert service.rank(target, top_k=5) == cold_rank

    # A fresh process: empty memory cache, artifact already on disk.
    revived = SelectionService(zoo, config, registry=registry)
    start = time.perf_counter()
    assert revived.rank(target, top_k=5) == cold_rank
    registry_s = time.perf_counter() - start
    assert revived.stats()["fits"] == 0

    return {"cold_s": cold_s, "warm_s": warm_s, "registry_s": registry_s}


def test_bench_serving_latency(benchmark, tmp_path):
    rows = benchmark.pedantic(_run, args=(tmp_path / "registry",),
                              rounds=1, iterations=1)
    print_header("Serving latency — cold fit vs warm cache (tiny image zoo)")
    print(f"  cold fit + rank        {rows['cold_s'] * 1e3:10.1f} ms")
    print(f"  warm cache rank        {rows['warm_s'] * 1e3:10.1f} ms")
    print(f"  registry-warm rank     {rows['registry_s'] * 1e3:10.1f} ms")
    print(f"  warm speedup           {rows['cold_s'] / rows['warm_s']:10.1f}x")
    print(f"  registry speedup       {rows['cold_s'] / rows['registry_s']:10.1f}x")
    assert rows["cold_s"] / rows["warm_s"] >= 10.0
