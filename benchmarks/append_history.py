"""Append one ``BENCH_compare.json`` run to the benchmark history series.

The compare gate (``compare_gate.py``) answers "did this run regress
against the committed baseline?"; the history series answers "how has
the served benchmark moved over time?".  Each bench-gate run appends one
JSON line to ``benchmarks/history/compare_series.jsonl`` — a
branch-tracked, append-only record keyed by commit sha, so plotting
warm-rank latency or top-k overlap across the repo's history is a
one-liner over the file.

Appends are idempotent per sha: re-running the gate on the same commit
(CI retries, local repeats) replaces nothing and adds nothing.

Usage::

    python benchmarks/append_history.py BENCH_compare.json \\
        [--series benchmarks/history/compare_series.jsonl] [--sha SHA]

The sha defaults to ``$GITHUB_SHA``, then ``git rev-parse HEAD``, then
``local``.  Exit status: 0 appended (or sha already recorded), 2 the
report is unreadable.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

DEFAULT_SERIES = Path(__file__).resolve().parent / "history" / "compare_series.jsonl"


def _resolve_sha(explicit: str | None) -> str:
    if explicit:
        return explicit
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True, check=True
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "local"


def series_line(report: dict, sha: str, recorded_at: str) -> dict:
    """One history record: the run's identity plus every per-strategy
    metric the gate inspects, lifted verbatim from the report."""
    for field in ("benchmark", "strategies"):
        if field not in report:
            raise ValueError(f"report is missing field {field!r}")
    return {
        "sha": sha,
        "recorded_at": recorded_at,
        "benchmark": report["benchmark"],
        "namespace": report.get("namespace"),
        "protocol": report.get("protocol"),
        "reference": report.get("reference"),
        "targets": report.get("targets"),
        "strategies": report["strategies"],
    }


def recorded_shas(series_path: Path) -> set[str]:
    shas: set[str] = set()
    if not series_path.exists():
        return shas
    for raw in series_path.read_text(encoding="utf-8").splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            shas.add(json.loads(raw).get("sha"))
        except ValueError:
            continue  # a torn line never blocks new appends
    return shas


def append_run(report_path: Path, series_path: Path, sha: str) -> bool:
    """Append the report to the series; False when the sha is already
    recorded (idempotent re-runs)."""
    report = json.loads(report_path.read_text(encoding="utf-8"))
    if sha in recorded_shas(series_path):
        return False
    line = series_line(
        report, sha, datetime.now(timezone.utc).isoformat(timespec="seconds")
    )
    series_path.parent.mkdir(parents=True, exist_ok=True)
    with series_path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n")
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="append a BENCH_compare.json run to the history series"
    )
    parser.add_argument("report", type=Path)
    parser.add_argument("--series", type=Path, default=DEFAULT_SERIES)
    parser.add_argument(
        "--sha",
        default=None,
        help="commit sha to record (default: $GITHUB_SHA, "
        "else git rev-parse HEAD, else 'local')",
    )
    args = parser.parse_args(argv)
    sha = _resolve_sha(args.sha)
    try:
        appended = append_run(args.report, args.series, sha)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if appended:
        print(f"history: recorded {sha[:12]} in {args.series}")
    else:
        print(f"history: {sha[:12]} already recorded in {args.series}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
