"""Figure 6 — fine-tuning performance of models over datasets.

The paper plots per-dataset accuracy distributions sorted by standard
deviation, motivating model selection: on some datasets (eurosat) all
models tie; on others (stanfordcars, caltech101) choosing well matters.
We print mean/std/min/max per target, sorted by std as in the figure.
"""

from benchmarks.conftest import print_header
from repro.utils import summary_stats


def _spread(zoo):
    rows = []
    for target in zoo.target_names():
        _, accs = zoo.ground_truth(target)
        stats = summary_stats(accs)
        rows.append((target, stats))
    rows.sort(key=lambda r: r[1].std)
    return rows


def test_fig6_finetune_spread(benchmark, image_zoo, text_zoo):
    result = benchmark.pedantic(
        lambda: {"image": _spread(image_zoo), "text": _spread(text_zoo)},
        rounds=1, iterations=1)
    print_header("Figure 6 — fine-tuning accuracy spread per dataset")
    for modality in ("image", "text"):
        print(f"  [{modality}]  (sorted by std, as in the paper)")
        print(f"  {'dataset':<24}{'mean':>7}{'std':>7}{'min':>7}{'max':>7}")
        for name, s in result[modality]:
            print(f"  {name:<24}{s.mean:>7.3f}{s.std:>7.3f}"
                  f"{s.minimum:>7.3f}{s.maximum:>7.3f}")
    # the motivating observation: spreads differ meaningfully across datasets
    for modality in ("image", "text"):
        stds = [s.std for _, s in result[modality]]
        assert max(stds) > 1.5 * min(stds)
