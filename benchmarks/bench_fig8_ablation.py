"""Figure 8 + §VII-C — feature ablation, per image dataset.

Four feature sets, all with the LR prediction model:
  i)   metadata only                       (LR)
  ii)  metadata + similarity + LogME       (LR{all,LogME})
  iii) graph features only                 (TG:LR,N2V)
  iv)  metadata + similarity + graph       (TG:LR,N2V,all)

plus the no-training-history scenario (§VII-C): the graph is built from
transferability edges only (paper: avg 0.47 with all features / 0.42 with
graph features only).
"""

from benchmarks.conftest import print_header
from benchmarks.helpers import format_row, tg_strategy
from repro.baselines import AmazonLR
from repro.core import FeatureSet, evaluate_strategy
from repro.graph import GraphConfig


def _run(zoo):
    strategies = [
        AmazonLR("basic"),
        AmazonLR("all+logme"),
        tg_strategy(features=FeatureSet.graph_only()),
        tg_strategy(features=FeatureSet.everything()),
    ]
    per_dataset = {}
    averages = {}
    for strategy in strategies:
        ev = evaluate_strategy(strategy, zoo)
        per_dataset[strategy.name] = ev.correlations()
        averages[strategy.name] = ev.average_correlation()

    # §VII-C: no training history — transferability edges only.
    no_history = GraphConfig(use_accuracy_edges=False,
                             include_pretrain_edges=False)
    for features, label in ((FeatureSet.everything(), "no-history TG,all"),
                            (FeatureSet.graph_only(), "no-history TG")):
        strategy = tg_strategy(features=features, graph=no_history)
        averages[label] = evaluate_strategy(strategy, zoo) \
            .average_correlation()
    return per_dataset, averages


def test_fig8_feature_ablation(benchmark, image_zoo):
    per_dataset, averages = benchmark.pedantic(
        _run, args=(image_zoo,), rounds=1, iterations=1)
    print_header("Figure 8a — feature ablation (image), Pearson per dataset")
    names = list(per_dataset)
    targets = sorted(next(iter(per_dataset.values())))
    print("  " + " ".join(f"{n[:14]:>15}" for n in [""] + names))
    for t in targets:
        cells = " ".join(f"{per_dataset[n][t]:>15.2f}" for n in names)
        print(f"  {t[:14]:<15}" + cells)
    print("\n  averages (incl. §VII-C no-history scenario; paper: 0.47 / 0.42):")
    for name, value in averages.items():
        print(format_row(name, value))
    # shape: the full feature set is the best TG variant on average
    assert averages["TG:LR,N2V,all"] >= averages["TG:LR,N2V"] - 0.05
