"""Figure 10 — effect of the prediction model (image, per dataset).

Paper: RF / XGB / LR with N2V,all features — "no dominant prediction
model ... feature selection is more important than prediction model
selection".  We report per-dataset correlations for the three predictors
and assert the spread between them is small relative to the spread
between feature sets (cf. Fig. 8).
"""

import numpy as np

from benchmarks.conftest import print_header
from benchmarks.helpers import tg_strategy
from repro.core import evaluate_strategy


def _run(zoo):
    out = {}
    for predictor in ("rf", "xgb", "lr"):
        ev = evaluate_strategy(tg_strategy(predictor=predictor), zoo)
        out[predictor] = ev.correlations()
    return out


def test_fig10_prediction_models(benchmark, image_zoo):
    rows = benchmark.pedantic(_run, args=(image_zoo,), rounds=1, iterations=1)
    print_header("Figure 10 — prediction models (image, TG:*,N2V,all)")
    targets = sorted(next(iter(rows.values())))
    print("  " + f"{'dataset':<22}" + "".join(f"{p:>8}" for p in rows))
    for t in targets:
        print(f"  {t:<22}" + "".join(f"{rows[p][t]:>8.2f}" for p in rows))
    averages = {p: float(np.mean(list(v.values()))) for p, v in rows.items()}
    print("  " + f"{'average':<22}" + "".join(f"{averages[p]:>8.2f}" for p in rows))
    # no dominant predictor: win counts are split across predictors
    wins = {p: 0 for p in rows}
    for t in targets:
        best = max(rows, key=lambda p: rows[p][t])
        wins[best] += 1
    assert max(wins.values()) < len(targets)  # nobody sweeps every dataset
