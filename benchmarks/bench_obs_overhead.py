"""Observability overhead — instrumented vs no-op warm-rank latency.

Not a paper figure: the tracing/metrics plane rides every request, so
its cost must be provably negligible.  Two gateways serve the same tiny
zoo, one with the live :class:`~repro.obs.Observability` plane (metrics
+ trace ring, no event log — the serve default), one with
:class:`~repro.obs.NullObservability` (every hook stubbed).  Both warm
one target, then answer the same warm ``rank`` stream; the instrumented
p95 must stay within 5% of the no-op p95 (plus a small absolute floor —
warm ranks are single-digit milliseconds, where scheduler jitter alone
exceeds 5%).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from benchmarks.conftest import print_header
from benchmarks.helpers import BENCH_EMBEDDING_DIM
from repro.core import FeatureSet, TransferGraphConfig
from repro.obs import NullObservability, Observability
from repro.serving import RankRequest, SelectionGateway
from repro.zoo import ZooConfig, get_or_build_zoo

_WARM_ROUNDS = 300
#: absolute slack (ms) under which a p95 delta is measurement noise
_EPSILON_MS = 0.75


def _warm_rank_p95_ms(gateway, target: str) -> float:
    async def measure() -> list[float]:
        await gateway.rank(RankRequest(target=target, namespace="bench"))
        latencies = []
        for _ in range(_WARM_ROUNDS):
            start = time.perf_counter()
            await gateway.rank(RankRequest(target=target,
                                           namespace="bench"))
            latencies.append((time.perf_counter() - start) * 1e3)
        return latencies

    return float(np.percentile(asyncio.run(measure()), 95))


def _run() -> dict[str, float]:
    zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7))
    config = TransferGraphConfig(
        predictor="lr", graph_learner="node2vec",
        embedding_dim=BENCH_EMBEDDING_DIM, features=FeatureSet.everything())
    target = zoo.target_names()[0]

    results: dict[str, float] = {}
    for arm, obs in (("noop", NullObservability()),
                     ("instrumented", Observability())):
        gateway = SelectionGateway(obs=obs)
        try:
            gateway.add_namespace("bench", zoo, config)
            results[arm] = _warm_rank_p95_ms(gateway, target)
        finally:
            gateway.close()
    return results


def test_bench_obs_overhead(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    overhead_ms = rows["instrumented"] - rows["noop"]
    overhead_pct = 100.0 * overhead_ms / rows["noop"]
    print_header("Observability overhead — warm rank p95, "
                 f"{_WARM_ROUNDS} rounds (tiny image zoo)")
    print(f"  no-op collector p95    {rows['noop']:10.3f} ms")
    print(f"  instrumented p95       {rows['instrumented']:10.3f} ms")
    print(f"  overhead               {overhead_ms:10.3f} ms "
          f"({overhead_pct:+.1f}%)")
    assert rows["instrumented"] <= max(rows["noop"] * 1.05,
                                       rows["noop"] + _EPSILON_MS)
