"""CI benchmark gate over ``BENCH_compare.json`` reports.

Compares the report a fresh ``repro evaluate --served`` run wrote against
the committed baseline (``benchmarks/baselines/compare_baseline.json``)
and fails the build when serving quality or warm-path latency regresses:

- **selection quality** — each strategy's mean top-k overlap vs the
  reference strategy must not drop below its baseline by more than
  ``--max-overlap-drop`` (rankings are deterministic given the zoo seed,
  so the tolerance only absorbs float jitter across platforms: the
  default allows one top-3 slot flip on one of the tiny zoo's three
  targets, i.e. 1/9);
- **warm-path latency** — each strategy's warm-rank p95 must not exceed
  ``max(baseline * (1 + --max-p95-regression), baseline +
  --p95-grace-ms)``.  The absolute grace keeps millisecond-scale timer
  noise and runner-speed variance from failing CI while still catching
  the real regression class: a warm rank accidentally becoming a cold
  fit costs hundreds of milliseconds;
- **coverage** — every baseline strategy must still be reported, nothing
  may have been shed (the bench warms the namespace first, so any shed
  means the budget math or the warmup broke), and the reference strategy
  and overlap depth must match the baseline's.

Exit status: 0 all gates pass, 1 a gate failed, 2 the reports are
unreadable or structurally incompatible.

Usage::

    python benchmarks/compare_gate.py BENCH_compare.json \\
        benchmarks/baselines/compare_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPORT_BENCHMARK = "compare_served"


def _usage_error(message: str) -> SystemExit:
    """Exit status 2: the reports themselves are unusable, not a
    benchmark regression (CI wrappers branch on the distinction)."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def load_report(path: Path) -> dict:
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise _usage_error(f"cannot read report {path}: {exc}")
    if report.get("benchmark") != REPORT_BENCHMARK:
        raise _usage_error(
            f"{path} is not a {REPORT_BENCHMARK!r} report "
            f"(benchmark={report.get('benchmark')!r})"
        )
    if not isinstance(report.get("strategies"), dict):
        raise _usage_error(f"{path} has no strategies section")
    return report


def check_compatible(current: dict, baseline: dict) -> list[str]:
    """Structural mismatches that make a comparison meaningless.

    ``targets`` is part of the contract: overlap means are averaged per
    target, so a changed roster would silently compare different
    quantities (a strategy regressing on a dropped target would pass).
    """
    failures = []
    for key in ("reference", "top_k", "namespace", "targets"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key} changed: baseline {baseline.get(key)!r}, "
                f"current {current.get(key)!r} (regenerate the baseline "
                f"if this is intentional)"
            )
    return failures


def check_strategy(
    spec: str,
    current: dict,
    baseline: dict,
    *,
    max_overlap_drop: float,
    max_p95_regression: float,
    p95_grace_ms: float,
) -> list[str]:
    """Gate failures for one strategy's row (empty list = pass)."""
    failures = []
    if current.get("targets_shed", 0) > 0:
        failures.append(
            f"{spec}: {current['targets_shed']} target(s) shed in a warmed "
            f"bench run — fit budgets or warmup are broken"
        )
    base_overlap = baseline.get("mean_top_k_overlap")
    new_overlap = current.get("mean_top_k_overlap")
    if base_overlap is not None:
        if new_overlap is None:
            failures.append(f"{spec}: mean_top_k_overlap missing from report")
        elif base_overlap - new_overlap > max_overlap_drop:
            failures.append(
                f"{spec}: top-k overlap vs reference dropped "
                f"{base_overlap:.3f} -> {new_overlap:.3f} "
                f"(allowed drop {max_overlap_drop:.3f})"
            )
    base_p95 = baseline.get("warm_rank_p95_ms")
    new_p95 = current.get("warm_rank_p95_ms")
    if base_p95 is not None:
        budget = max(base_p95 * (1.0 + max_p95_regression), base_p95 + p95_grace_ms)
        if new_p95 is None:
            failures.append(f"{spec}: warm_rank_p95_ms missing from report")
        elif new_p95 > budget:
            failures.append(
                f"{spec}: warm-rank p95 regressed {base_p95:.2f} ms -> "
                f"{new_p95:.2f} ms (budget {budget:.2f} ms)"
            )
    return failures


def run_gate(current: dict, baseline: dict, args) -> list[str]:
    incompatible = check_compatible(current, baseline)
    if incompatible:
        raise _usage_error("reports are not comparable:\n  " +
                           "\n  ".join(incompatible))
    failures = []
    for spec, base_row in sorted(baseline["strategies"].items()):
        row = current["strategies"].get(spec)
        if row is None:
            failures.append(f"{spec}: missing from the current report")
            continue
        failures.extend(
            check_strategy(
                spec,
                row,
                base_row,
                max_overlap_drop=args.max_overlap_drop,
                max_p95_regression=args.max_p95_regression,
                p95_grace_ms=args.p95_grace_ms,
            )
        )
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("current", type=Path, help="freshly generated report")
    parser.add_argument("baseline", type=Path, help="committed baseline report")
    parser.add_argument(
        "--max-overlap-drop",
        type=float,
        default=0.12,
        help="largest tolerated drop in mean top-k overlap (default: one "
        "top-3 slot flip on one of three targets, 1/9)",
    )
    parser.add_argument(
        "--max-p95-regression",
        type=float,
        default=0.30,
        help="largest tolerated relative warm-rank p95 regression",
    )
    parser.add_argument(
        "--p95-grace-ms",
        type=float,
        default=50.0,
        help="absolute p95 grace so ms-scale timer noise cannot fail CI",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    current = load_report(args.current)
    baseline = load_report(args.baseline)
    failures = run_gate(current, baseline, args)

    print(f"compare gate: {args.current} vs baseline {args.baseline}")
    for spec, row in sorted(current["strategies"].items()):
        overlap = row.get("mean_top_k_overlap")
        shown = f"{overlap:.3f}" if overlap is not None else "--"
        print(
            f"  {spec:<22} overlap {shown}  "
            f"warm p95 {row.get('warm_rank_p95_ms', float('nan')):8.2f} ms  "
            f"shed {row.get('targets_shed', 0)}"
        )
    if failures:
        print(f"FAIL: {len(failures)} gate violation(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("PASS: selection quality and warm-path latency within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
