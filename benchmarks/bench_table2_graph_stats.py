"""Table II — statistics of the constructed graphs (image and text).

Paper: image graph 265 nodes / 5256 D-D edges / 1753 M-D accuracy edges /
916 M-D transferability edges, avg degree 20.1; text graph 188 nodes /
550 / 918 / 419, avg degree 8.6; all pruning thresholds 0.5.

Our zoo is ~8x smaller, so absolute counts scale down; the *structure*
(all D-D pairs present, M-D edges pruned at 0.5) is identical.
"""

from benchmarks.conftest import print_header
from repro.graph import GraphConfig, build_graph

_PAPER = {
    "image": dict(nodes=265, dd=5256, md_acc=1753, md_trans=916, degree=20.1),
    "text": dict(nodes=188, dd=550, md_acc=918, md_trans=419, degree=8.6),
}


def _stats_for(zoo):
    graph, _ = build_graph(zoo, config=GraphConfig())
    return graph.stats()


def test_table2_graph_stats(benchmark, image_zoo, text_zoo):
    results = benchmark.pedantic(
        lambda: {"image": _stats_for(image_zoo), "text": _stats_for(text_zoo)},
        rounds=1, iterations=1)
    print_header("Table II — graph statistics")
    print(f"  {'property':<38}{'paper-img':>10}{'ours-img':>10}"
          f"{'paper-txt':>10}{'ours-txt':>10}")
    rows = [
        ("number of nodes", "nodes", "num_nodes"),
        ("dataset-dataset edges", "dd", "num_dd_edges"),
        ("model-dataset edges (accuracy)", "md_acc", "num_md_accuracy_edges"),
        ("model-dataset edges (transferability)", "md_trans",
         "num_md_transferability_edges"),
        ("average node degree", "degree", "average_degree"),
    ]
    for label, paper_key, ours_key in rows:
        print(f"  {label:<38}"
              f"{_PAPER['image'][paper_key]:>10}"
              f"{results['image'][ours_key]:>10.1f}"
              f"{_PAPER['text'][paper_key]:>10}"
              f"{results['text'][ours_key]:>10.1f}")
    # structural invariant: all dataset pairs present (as in the paper)
    for modality, zoo in (("image", image_zoo), ("text", text_zoo)):
        n = len(zoo.dataset_names())
        assert results[modality]["num_dd_edges"] == n * (n - 1) // 2
