"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  The zoos are built once and cached on disk, so the first
run pays the build cost and later runs only pay the experiment itself.
"""

from __future__ import annotations

import pytest

from repro.zoo import ZooConfig, get_or_build_zoo


def pytest_addoption(parser):
    parser.addoption(
        "--fit-executor", action="store", default="thread",
        choices=("thread", "process", "both"),
        help="fit-executor axis for the async-router benches: run them "
             "with this executor ('both' parametrizes over the two); "
             "the thread-vs-process cold-fit speedup bench runs "
             "whenever 'process' is included")


def pytest_generate_tests(metafunc):
    if "fit_executor" in metafunc.fixturenames:
        choice = metafunc.config.getoption("--fit-executor")
        modes = ("thread", "process") if choice == "both" else (choice,)
        metafunc.parametrize("fit_executor", modes)


@pytest.fixture(scope="session")
def image_zoo():
    return get_or_build_zoo(ZooConfig.default(modality="image", seed=0))


@pytest.fixture(scope="session")
def text_zoo():
    return get_or_build_zoo(ZooConfig.default(modality="text", seed=0))


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
