"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  The zoos are built once and cached on disk, so the first
run pays the build cost and later runs only pay the experiment itself.
"""

from __future__ import annotations

import pytest

from repro.zoo import ZooConfig, get_or_build_zoo


@pytest.fixture(scope="session")
def image_zoo():
    return get_or_build_zoo(ZooConfig.default(modality="image", seed=0))


@pytest.fixture(scope="session")
def text_zoo():
    return get_or_build_zoo(ZooConfig.default(modality="text", seed=0))


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
