"""The TransferGraph core: configuration, pipeline, and LOO evaluation."""

from repro.core.config import FeatureSet, TransferGraphConfig
from repro.core.features import FeatureAssembler
from repro.core.framework import FittedTransferGraph, TransferGraph
from repro.core.evaluation import (
    LooEvaluation,
    TargetResult,
    evaluate_strategy,
    top_k_accuracy,
)

__all__ = [
    "FeatureSet",
    "TransferGraphConfig",
    "FeatureAssembler",
    "FittedTransferGraph",
    "TransferGraph",
    "LooEvaluation",
    "TargetResult",
    "evaluate_strategy",
    "top_k_accuracy",
]
