"""Stage-3 feature assembly: (model, dataset) pairs → tabular rows (§VI-C).

Each row describes one (model, dataset) pair with up to four groups:

1. **metadata** — the §IV-A features: model architecture/family/source
   dataset (one-hot), numeric capacity indicators, plus dataset sample /
   class counts;
2. **dataset similarity** — ϕ(model's pre-train dataset, the row's
   dataset), the "distance between source dataset and target" feature;
3. **transferability** — the LogME score of the pair (LR{all,LogME});
4. **graph features** — the node embeddings of model and dataset learned
   by the graph learner.

The assembler is *fitted* on the training pairs (fixing one-hot encoders)
and then reused for the prediction set so columns stay aligned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FeatureSet
from repro.transferability import score_model_on_dataset
from repro.utils import FeatureMatrixBuilder, OneHotEncoder

__all__ = ["FeatureAssembler"]


@dataclass
class FeatureAssembler:
    """Builds aligned train/prediction feature matrices."""

    zoo: object
    features: FeatureSet
    embeddings: dict[str, np.ndarray] | None = None
    transferability_metric: str = "logme"
    similarity_method: str = "domain_similarity"
    #: the LOO graph (needed for the two-hop affinity feature)
    graph: object | None = None

    def __post_init__(self):
        if not self.features.any_active():
            raise ValueError("FeatureSet selects no feature groups")
        if self.features.graph_features and self.embeddings is None:
            raise ValueError("graph features requested but no embeddings given")
        self._encoders: dict[str, OneHotEncoder] | None = None

    # ------------------------------------------------------------------ #
    def _model_rows(self, model_ids: list[str]) -> list[dict]:
        return [self.zoo.catalog.models.get(mid) for mid in model_ids]

    def _dataset_rows(self, dataset_ids: list[str]) -> list[dict]:
        return [self.zoo.catalog.datasets.get(did) for did in dataset_ids]

    def _similarity_feature(self, model_row: dict, dataset_id: str) -> float:
        """ϕ(source dataset of the model, the pair's dataset)."""
        source = model_row["pretrain_dataset"]
        if source == dataset_id:
            return 1.0
        sim = self.zoo.catalog.get_similarity(source, dataset_id,
                                              method=self.similarity_method)
        return sim if sim is not None else 0.0

    def _raw_transferability_scores(self, dataset_id: str) -> dict[str, float]:
        """Raw estimator scores of every zoo model on one dataset.

        Thread-safe via a scoped recorder: known scores are snapshotted
        under the catalog lock, *missing* ones are computed into a local
        batch with the lock released (forward passes are the expensive
        part and fits for other targets should overlap them), and the
        batch is merged back under the lock.  Two threads racing on the
        same dataset duplicate some deterministic work at worst — the
        upserted values are identical.
        """
        catalog = self.zoo.catalog
        model_ids = self.zoo.model_ids()
        with catalog.lock:
            scores = {m: catalog.get_transferability(
                          m, dataset_id, metric=self.transferability_metric)
                      for m in model_ids}
        missing = [m for m, s in scores.items() if s is None]
        if missing:
            # Computable without fine-tuning: forward pass + estimator.
            batch = {m: score_model_on_dataset(self.zoo, m, dataset_id,
                                               self.transferability_metric)
                     for m in missing}
            with catalog.lock:
                for model_id, score in batch.items():
                    catalog.record_transferability(
                        model_id, dataset_id, self.transferability_metric,
                        score)
            scores.update(batch)
        return scores

    def _transferability_feature(self, model_id: str, dataset_id: str) -> float:
        """Per-dataset min-max normalised estimator score.

        Raw LogME evidences live on dataset-dependent scales; a regression
        model pooling rows across datasets needs them comparable, so each
        score is normalised against all zoo models on the same dataset.
        """
        if not hasattr(self, "_transfer_norm_cache"):
            self._transfer_norm_cache: dict[str, dict[str, float]] = {}
        per_dataset = self._transfer_norm_cache.get(dataset_id)
        if per_dataset is None:
            scores = self._raw_transferability_scores(dataset_id)
            model_ids = list(scores)
            raw = np.array([scores[m] for m in model_ids])
            lo, hi = raw.min(), raw.max()
            normed = (raw - lo) / (hi - lo) if hi - lo > 1e-12 \
                else np.full_like(raw, 0.5)
            per_dataset = dict(zip(model_ids, normed))
            self._transfer_norm_cache[dataset_id] = per_dataset
        return per_dataset[model_id]

    def _embedding_of(self, node_id: str, dim: int) -> np.ndarray:
        assert self.embeddings is not None
        vector = self.embeddings.get(node_id)
        if vector is None:
            return np.zeros(dim)
        return vector

    def _two_hop_affinity(self, model_id: str, dataset_id: str) -> float:
        """Σ over datasets d' of ϕ(dataset, d') · accuracy-edge(model, d').

        Uses only edges present in the (LOO-pruned) graph, so no target
        history can leak through this feature.
        """
        if self.graph is None or not self.graph.has_node(model_id):
            return 0.0
        total = 0.0
        for neighbor, weight, kind in self.graph.neighbors(model_id):
            if kind != "accuracy" or neighbor == dataset_id:
                continue
            if self.graph.node_kind(neighbor) != "dataset":
                continue
            sim = self.zoo.catalog.get_similarity(
                dataset_id, neighbor, method=self.similarity_method)
            if sim is not None:
                total += sim * weight
        return total

    # ------------------------------------------------------------------ #
    def get_state(self) -> dict:
        """Fitted normalisation state (encoders + per-dataset score ranges).

        Together with the constructor arguments (zoo, feature set,
        embeddings, graph) this is everything needed to reproduce
        ``assemble(..., fit=False)`` bit-for-bit on another process.
        """
        encoders = None if self._encoders is None else {
            name: enc.get_state() for name, enc in self._encoders.items()}
        cache = getattr(self, "_transfer_norm_cache", {})
        return {
            "encoders": encoders,
            "transfer_norm_cache": {
                dataset: {model: float(v) for model, v in scores.items()}
                for dataset, scores in cache.items()},
        }

    def set_state(self, state: dict) -> "FeatureAssembler":
        encoders = state.get("encoders")
        self._encoders = None if encoders is None else {
            name: OneHotEncoder().set_state(s) for name, s in encoders.items()}
        self._transfer_norm_cache = {
            dataset: dict(scores)
            for dataset, scores in state.get("transfer_norm_cache", {}).items()}
        return self

    # ------------------------------------------------------------------ #
    def assemble(self, pairs: list[tuple[str, str]], fit: bool = False
                 ) -> tuple[np.ndarray, list[str]]:
        """Feature matrix for (model_id, dataset_id) pairs.

        ``fit=True`` (training set) fits the categorical encoders;
        ``fit=False`` (prediction set) reuses them — call order matters.
        """
        if not pairs:
            raise ValueError("no pairs to assemble features for")
        if not fit and self._encoders is None:
            raise RuntimeError("assemble(fit=True) must be called first")

        model_ids = [m for m, _ in pairs]
        dataset_ids = [d for _, d in pairs]
        model_rows = self._model_rows(model_ids)
        dataset_rows = self._dataset_rows(dataset_ids)

        builder = FeatureMatrixBuilder()
        encoders = self._encoders or {}

        if self.features.metadata:
            builder.add_numeric("model.num_params",
                                [r["num_params"] for r in model_rows])
            builder.add_numeric("model.memory_mb",
                                [r["memory_mb"] for r in model_rows])
            builder.add_numeric("model.input_shape",
                                [r["input_shape"] for r in model_rows])
            builder.add_numeric("model.embedding_dim",
                                [r["embedding_dim"] for r in model_rows])
            builder.add_numeric("model.depth",
                                [r["depth"] for r in model_rows])
            builder.add_numeric("model.pretrain_accuracy",
                                [r["pretrain_accuracy"] for r in model_rows])
            builder.add_categorical("model.family",
                                    [r["family"] for r in model_rows],
                                    encoder=encoders.get("model.family"))
            builder.add_categorical("model.architecture",
                                    [r["architecture"] for r in model_rows],
                                    encoder=encoders.get("model.architecture"))
            builder.add_categorical(
                "model.pretrain_dataset",
                [r["pretrain_dataset"] for r in model_rows],
                encoder=encoders.get("model.pretrain_dataset"))
            builder.add_numeric("dataset.num_samples",
                                [r["num_samples"] for r in dataset_rows])
            builder.add_numeric("dataset.num_classes",
                                [r["num_classes"] for r in dataset_rows])
            builder.add_numeric("dataset.input_dim",
                                [r["input_dim"] for r in dataset_rows])

        if self.features.dataset_similarity:
            builder.add_numeric(
                "pair.source_target_similarity",
                [self._similarity_feature(mr, d)
                 for mr, d in zip(model_rows, dataset_ids)])

        if self.features.transferability:
            builder.add_numeric(
                "pair.transferability",
                [self._transferability_feature(m, d) for m, d in pairs])

        if self.features.graph_features:
            dim = len(next(iter(self.embeddings.values())))
            model_emb = np.vstack([self._embedding_of(m, dim) for m in model_ids])
            dataset_emb = np.vstack([self._embedding_of(d, dim)
                                     for d in dataset_ids])
            if self.features.graph_raw_embeddings:
                builder.add_embedding("model.graph_emb", model_emb)
                builder.add_embedding("dataset.graph_emb", dataset_emb)
            if self.features.graph_interaction:
                builder.add_embedding("pair.graph_emb_product",
                                      model_emb * dataset_emb)
                # Derived scalars a linear model can exploit directly:
                # SGNS embedding norms track node frequency (≈ how many
                # datasets a model performs well on) and the dot/cosine
                # track model-dataset co-occurrence in the walks.
                norm_m = np.linalg.norm(model_emb, axis=1)
                norm_d = np.linalg.norm(dataset_emb, axis=1)
                dots = (model_emb * dataset_emb).sum(axis=1)
                cosine = dots / np.maximum(norm_m * norm_d, 1e-12)
                builder.add_numeric("model.graph_emb_norm", norm_m)
                builder.add_numeric("dataset.graph_emb_norm", norm_d)
                builder.add_numeric("pair.graph_emb_dot", dots)
                builder.add_numeric("pair.graph_emb_cosine", cosine)
            if self.features.graph_two_hop and self.graph is not None:
                builder.add_numeric(
                    "pair.graph_two_hop",
                    [self._two_hop_affinity(m, d) for m, d in pairs])

        matrix, names = builder.build()
        if fit:
            self._encoders = builder.encoders()
        return matrix, names
