"""The TransferGraph framework — Fig. 5's four stages, end to end.

Given a zoo and a target dataset:

- **Stage 1** (metadata & features) is already materialised in the zoo
  catalog (similarities, transferability scores, history);
- **Stage 2** builds the LOO graph (target's M-D edges removed) and runs
  the configured graph learner to get node embeddings;
- **Stage 3** assembles the tabular training set from all *other*
  datasets' fine-tuning history and fits the prediction model;
- **Stage 4** scores every (model, target) pair and ranks the models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TransferGraphConfig
from repro.core.features import FeatureAssembler
from repro.graph import GraphBuilder, get_graph_learner
from repro.obs import span
from repro.predictors import get_predictor
from repro.utils.rng import derive_seed

__all__ = ["TransferGraph", "FittedTransferGraph"]


@dataclass
class FittedTransferGraph:
    """The state produced by :meth:`TransferGraph.fit` for one target."""

    target: str
    assembler: FeatureAssembler
    predictor: object
    embeddings: dict[str, np.ndarray]
    graph_stats: dict[str, float]
    feature_names: list[str] = field(repr=False, default_factory=list)

    def predict(self, model_ids: list[str]) -> np.ndarray:
        """Predicted fine-tuning scores of models on the fitted target."""
        pairs = [(m, self.target) for m in model_ids]
        x, _ = self.assembler.assemble(pairs, fit=False)
        return self.predictor.predict(x)

    def rank(self, model_ids: list[str]) -> list[tuple[str, float]]:
        """``model_ids`` sorted by predicted score, best first.

        Both :meth:`TransferGraph.rank_models` and the serving layer's
        warm path rank through this, so the sort order cannot diverge.
        """
        scores = dict(zip(model_ids, self.predict(model_ids)))
        return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))


class TransferGraph:
    """Model-selection strategy backed by graph learning (the paper's TG)."""

    def __init__(self, config: TransferGraphConfig | None = None):
        self.config = config or TransferGraphConfig()

    @property
    def name(self) -> str:
        return self.config.strategy_name()

    # ------------------------------------------------------------------ #
    def _training_pairs(self, zoo, target: str) -> tuple[list[tuple[str, str]],
                                                         np.ndarray]:
        """All (model, dataset≠target) pairs with known history labels."""
        method = self.config.label_method
        pairs: list[tuple[str, str]] = []
        labels: list[float] = []
        for dataset_id in zoo.target_names():
            if dataset_id == target:
                continue
            for row in zoo.catalog.history_for_dataset(dataset_id, method=method):
                pairs.append((row["model_id"], dataset_id))
                labels.append(row["accuracy"])
        if not pairs:
            raise ValueError(
                f"no training history available outside target {target!r}")
        return pairs, np.asarray(labels)

    # ------------------------------------------------------------------ #
    def fit(self, zoo, target: str) -> FittedTransferGraph:
        """Run Stages 2–3 for one leave-one-out target."""
        config = self.config
        builder = GraphBuilder(zoo, config.graph)
        with span("fit.graph_build"):
            graph, links = builder.build(exclude_target=target)

        embeddings: dict[str, np.ndarray] = {}
        if config.features.graph_features:
            learner = get_graph_learner(
                config.graph_learner, dim=config.embedding_dim,
                seed=derive_seed(config.seed, "graph_learner", target))
            with span("fit.embed"):
                embeddings = learner.embed(graph, links)

        assembler = FeatureAssembler(
            zoo=zoo,
            features=config.features,
            embeddings=embeddings if config.features.graph_features else None,
            transferability_metric=config.graph.transferability_metric,
            similarity_method=config.graph.similarity_method,
            graph=graph if config.features.graph_features else None,
        )
        with span("fit.features"):
            pairs, labels = self._training_pairs(zoo, target)
            x_train, names = assembler.assemble(pairs, fit=True)

        predictor = get_predictor(config.predictor)
        with span("fit.train"):
            predictor.fit(x_train, labels)

        return FittedTransferGraph(
            target=target,
            assembler=assembler,
            predictor=predictor,
            embeddings=embeddings,
            graph_stats=graph.stats(),
            feature_names=names,
        )

    # ------------------------------------------------------------------ #
    def refresh(self, zoo, target: str, fitted: FittedTransferGraph,
                dirty_nodes: set[str]) -> FittedTransferGraph:
        """Incrementally update a fitted pipeline after catalog writes.

        Stage 2 is localized: instead of re-walking the whole graph, the
        learner re-walks only ``dirty_nodes`` (the graph nodes incident
        to the changed catalog rows) and their one-hop neighbors, warm-
        starting SGNS from ``fitted.embeddings`` — see
        :meth:`repro.graph.Node2Vec.refresh`.  Stages 3–4 (feature
        assembly + predictor) always retrain: their cost is linear in
        the history table, not the graph, and the changed labels must
        reach the predictor.  Learners without a ``refresh`` (the GNNs)
        and graph-less configs fall back to a clean :meth:`fit`.
        """
        config = self.config
        if not config.features.graph_features or not fitted.embeddings:
            return self.fit(zoo, target)
        learner = get_graph_learner(
            config.graph_learner, dim=config.embedding_dim,
            seed=derive_seed(config.seed, "graph_learner", target))
        if not hasattr(learner, "refresh"):
            return self.fit(zoo, target)

        builder = GraphBuilder(zoo, config.graph)
        with span("refresh.graph_build"):
            graph, links = builder.build(exclude_target=target)
        with span("refresh.embed"):
            embeddings = learner.refresh(graph, fitted.embeddings,
                                         dirty_nodes, links)

        assembler = FeatureAssembler(
            zoo=zoo,
            features=config.features,
            embeddings=embeddings,
            transferability_metric=config.graph.transferability_metric,
            similarity_method=config.graph.similarity_method,
            graph=graph,
        )
        with span("refresh.features"):
            pairs, labels = self._training_pairs(zoo, target)
            x_train, names = assembler.assemble(pairs, fit=True)

        predictor = get_predictor(config.predictor)
        with span("refresh.train"):
            predictor.fit(x_train, labels)

        return FittedTransferGraph(
            target=target,
            assembler=assembler,
            predictor=predictor,
            embeddings=embeddings,
            graph_stats=graph.stats(),
            feature_names=names,
        )

    # ------------------------------------------------------------------ #
    def scores_for_target(self, zoo, target: str) -> dict[str, float]:
        """Stage 4: predicted score for every model on ``target``.

        This is the strategy protocol shared with the baselines, so the
        evaluation harness can treat TG and baselines uniformly.
        """
        fitted = self.fit(zoo, target)
        model_ids = zoo.model_ids()
        scores = fitted.predict(model_ids)
        return dict(zip(model_ids, scores))

    def rank_models(self, zoo, target: str) -> list[tuple[str, float]]:
        """Models sorted by predicted fine-tuning score, best first."""
        return self.fit(zoo, target).rank(zoo.model_ids())
