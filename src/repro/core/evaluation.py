"""Leave-one-out evaluation harness (§VII-A "Evaluation").

A *strategy* is anything with ``name`` and
``scores_for_target(zoo, target) -> {model_id: score}``.  The harness runs
the LOO protocol over the zoo's target datasets and reports, per target,
the Pearson correlation between predicted scores and the ground-truth
fine-tuning accuracies — plus the Fig. 2-style top-k average accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import pearson_correlation, top_k_indices

__all__ = ["TargetResult", "LooEvaluation", "evaluate_strategy",
           "top_k_accuracy"]


@dataclass(frozen=True)
class TargetResult:
    """Outcome of one strategy on one LOO target."""

    target: str
    correlation: float
    scores: dict[str, float] = field(repr=False)
    truth: dict[str, float] = field(repr=False)

    def top_k_accuracy(self, k: int = 5) -> float:
        """Mean ground-truth accuracy of the k best-scored models."""
        model_ids = sorted(self.scores)
        score_vec = np.array([self.scores[m] for m in model_ids])
        truth_vec = np.array([self.truth[m] for m in model_ids])
        idx = top_k_indices(score_vec, k)
        return float(truth_vec[idx].mean())


@dataclass
class LooEvaluation:
    """All per-target results of one strategy."""

    strategy: str
    results: dict[str, TargetResult]

    def correlations(self) -> dict[str, float]:
        return {t: r.correlation for t, r in sorted(self.results.items())}

    def average_correlation(self) -> float:
        if not self.results:
            raise ValueError("no results to average")
        return float(np.mean([r.correlation for r in self.results.values()]))

    def average_top_k_accuracy(self, k: int = 5) -> float:
        return float(np.mean([r.top_k_accuracy(k)
                              for r in self.results.values()]))


def evaluate_strategy(strategy, zoo, targets: list[str] | None = None,
                      ground_truth_method: str = "finetune") -> LooEvaluation:
    """Run the LOO protocol for one strategy over the given targets."""
    targets = targets if targets is not None else zoo.target_names()
    if not targets:
        raise ValueError("no target datasets to evaluate on")
    results: dict[str, TargetResult] = {}
    for target in targets:
        scores = strategy.scores_for_target(zoo, target)
        ids, truth_vec = zoo.ground_truth(target, method=ground_truth_method)
        missing = set(ids) - set(scores)
        if missing:
            raise ValueError(
                f"{strategy.name} returned no score for {sorted(missing)[:3]}…")
        score_vec = np.array([scores[m] for m in ids])
        corr = pearson_correlation(truth_vec, score_vec)
        results[target] = TargetResult(
            target=target,
            correlation=corr,
            scores={m: float(s) for m, s in zip(ids, score_vec)},
            truth={m: float(t) for m, t in zip(ids, truth_vec)},
        )
    return LooEvaluation(strategy=getattr(strategy, "name", repr(strategy)),
                         results=results)


def top_k_accuracy(zoo, scores: dict[str, float], target: str, k: int = 5,
                   ground_truth_method: str = "finetune") -> float:
    """Fig. 2 metric: mean actual accuracy of the top-k predicted models."""
    ids, truth_vec = zoo.ground_truth(target, method=ground_truth_method)
    score_vec = np.array([scores[m] for m in ids])
    idx = top_k_indices(score_vec, k)
    return float(truth_vec[idx].mean())
