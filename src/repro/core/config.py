"""Configuration of the TransferGraph framework (§VI).

A strategy variant in the paper's notation, e.g. ``TG:LR,N2V,all``, maps
to: ``predictor="lr"``, ``graph_learner="node2vec"``, and the ``all``
feature set (metadata + dataset similarity + graph features).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph import GraphConfig

__all__ = ["FeatureSet", "TransferGraphConfig"]


@dataclass(frozen=True)
class FeatureSet:
    """Which feature groups feed the Stage-3 prediction model (§VII-C)."""

    metadata: bool = True          # model + dataset metadata (§IV-A)
    dataset_similarity: bool = True  # ϕ(source of model, target)  (§IV-B2)
    transferability: bool = False  # LogME score as a feature (LR{all,LogME})
    graph_features: bool = True    # node embeddings from the graph learner
    #: include the elementwise product of the model and dataset embeddings.
    #: A linear prediction model cannot express the bilinear affinity
    #: ⟨emb_m, emb_d⟩ from concatenated embeddings alone; the product block
    #: makes it a learnable weighted dot product (implementation detail on
    #: top of Fig. 5's "mi emb | dj emb" columns, see DESIGN.md).
    graph_interaction: bool = True
    #: include the raw embedding coordinate blocks themselves (the paper's
    #: "mi emb | dj emb" columns).  They let the predictor memorise
    #: per-model quality from history — the core of TG's advantage.
    graph_raw_embeddings: bool = True
    #: include a similarity-weighted two-hop affinity score computed
    #: directly on the graph: Σ_{d'} ϕ(target, d') · w_acc(model, d').
    #: A deterministic graph feature complementing the learned embeddings.
    graph_two_hop: bool = True

    @classmethod
    def basic(cls) -> "FeatureSet":
        """Amazon LR: metadata only."""
        return cls(metadata=True, dataset_similarity=False,
                   transferability=False, graph_features=False)

    @classmethod
    def all_no_graph(cls) -> "FeatureSet":
        """LR{all}: metadata + dataset similarity."""
        return cls(metadata=True, dataset_similarity=True,
                   transferability=False, graph_features=False)

    @classmethod
    def all_logme(cls) -> "FeatureSet":
        """LR{all,LogME}: metadata + similarity + LogME score."""
        return cls(metadata=True, dataset_similarity=True,
                   transferability=True, graph_features=False)

    @classmethod
    def graph_only(cls) -> "FeatureSet":
        """TG:…,N2V — graph features alone."""
        return cls(metadata=False, dataset_similarity=False,
                   transferability=False, graph_features=True)

    @classmethod
    def everything(cls) -> "FeatureSet":
        """TG:…,N2V,all — metadata + similarity + graph features."""
        return cls(metadata=True, dataset_similarity=True,
                   transferability=False, graph_features=True)

    def any_active(self) -> bool:
        return (self.metadata or self.dataset_similarity
                or self.transferability or self.graph_features)


@dataclass(frozen=True)
class TransferGraphConfig:
    """End-to-end configuration of a TG strategy variant."""

    graph: GraphConfig = field(default_factory=GraphConfig)
    graph_learner: str = "node2vec"
    embedding_dim: int = 128
    predictor: str = "lr"
    features: FeatureSet = field(default_factory=FeatureSet.everything)
    label_method: str = "finetune"   # which history supplies labels
    seed: int = 0

    def strategy_name(self) -> str:
        """Human-readable name in the paper's notation, e.g. TG:LR,N2V,all."""
        learner_alias = {
            "node2vec": "N2V",
            "node2vec+": "N2V+",
            "graphsage": "GraphSAGE",
            "gat": "GAT",
        }.get(self.graph_learner, self.graph_learner)
        suffix = ""
        if self.features.metadata or self.features.dataset_similarity:
            suffix = ",all"
        return f"TG:{self.predictor.upper()},{learner_alias}{suffix}"
