"""Stdlib link checker for the docs tree (CI's ``docs`` job).

Two classes of rot it catches:

- **relative links**: every ``[text](target)`` in ``docs/*.md`` and the
  README whose target is not an absolute URL or pure anchor must
  resolve on disk, relative to the file that links it;
- **CLI examples**: inside fenced code blocks, a line invoking
  ``repro <word>`` (or ``python -m repro <word>``) must name a real
  subcommand.  The valid set is parsed from the live ``repro --help``
  text, so a renamed subcommand breaks the docs build instead of the
  reader.

No third-party markdown parser: the repo's docs stick to plain
CommonMark links and fenced blocks, which a few regexes cover.
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = ["check_links", "cli_subcommands", "doc_files"]

#: [text](target) — target captured without the optional "title" part
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: skip-list for link targets that are not filesystem paths
_EXTERNAL = ("http://", "https://", "mailto:", "#")

#: a fenced-block line invoking the repro CLI; group 1 is the first token
#: after the program name
_CLI_LINE = re.compile(
    r"^\s*\$?\s*(?:python\s+-m\s+repro|repro)\s+(?:--?\S+\s+\S+\s+)*(\S+)")


def doc_files(root: str | Path) -> list[Path]:
    """The markdown set the checker covers: README + docs/*.md."""
    root = Path(root)
    files = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    readme = root / "README.md"
    if readme.exists():
        files.insert(0, readme)
    return files


def cli_subcommands() -> set[str]:
    """Valid ``repro`` subcommands, parsed from the live ``--help`` text."""
    from repro.cli import build_parser

    help_text = build_parser().format_help()
    found: set[str] = set()
    for match in re.finditer(r"\{([a-z0-9_,-]+)\}", help_text):
        found.update(name for name in match.group(1).split(",") if name)
    return found


def _check_file_links(path: Path, root: Path) -> list[str]:
    problems: list[str] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                  start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: broken relative "
                    f"link {target!r} (resolved to {resolved})"
                )
    return problems


def _check_file_cli(path: Path, root: Path, commands: set[str]) -> list[str]:
    problems: list[str] = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                  start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            continue
        match = _CLI_LINE.match(line)
        if match is None:
            continue
        word = match.group(1)
        if word.startswith("-") or word in ("|", "&&", ";"):
            continue  # bare `repro --help`-style or shell plumbing
        if word not in commands:
            problems.append(
                f"{path.relative_to(root)}:{lineno}: CLI example names "
                f"unknown subcommand {word!r} (known: "
                f"{', '.join(sorted(commands))})"
            )
    return problems


def check_links(root: str | Path) -> list[str]:
    """All doc problems found; empty means the docs tree is clean."""
    root = Path(root)
    commands = cli_subcommands()
    problems: list[str] = []
    for path in doc_files(root):
        problems.extend(_check_file_links(path, root))
        problems.extend(_check_file_cli(path, root, commands))
    return problems
