"""Render ``docs/protocol.md`` from the enforced protocol sources.

Two sections, two sources of truth:

- the **HTTP v1 message reference** comes from the committed wire-schema
  snapshot ``benchmarks/baselines/protocol_schema.json``.  That file is
  already gated against ``repro/serving/protocol.py`` by the
  ``wire-schema`` analysis rule, so rendering *from the snapshot* means
  the doc can only drift if the snapshot does — and then CI fails
  twice, once per gate;
- the **fleet frame table** is derived from the
  :mod:`repro.fleet.wire` dataclasses (name, direction, fields), the
  same definitions both ends of the socket parse with.

``repro docs --protocol`` writes the doc; ``--check`` renders to memory
and exits non-zero when the committed doc differs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.fleet import wire

__all__ = [
    "PROTOCOL_DOC_PATH",
    "SNAPSHOT_PATH",
    "render_protocol_doc",
    "write_protocol_doc",
    "check_protocol_doc",
]

#: repo-relative path of the generated protocol reference
PROTOCOL_DOC_PATH = "docs/protocol.md"

#: repo-relative path of the committed wire-schema snapshot
SNAPSHOT_PATH = "benchmarks/baselines/protocol_schema.json"

#: fleet frame -> (direction, one-line purpose); the field list itself
#: comes from the live dataclasses in repro.fleet.wire
_FRAME_DIRECTIONS = {
    "HELLO": ("worker → coordinator",
              "wire version, worker name, pid, challenge nonce"),
    "CHALLENGE": ("coordinator → worker",
                  "auth nonce + coordinator's HMAC proof"),
    "AUTH": ("worker → coordinator",
             "worker's HMAC proof of the challenge"),
    "REGISTER": ("coordinator → worker",
                 "assigned worker id, heartbeat cadence"),
    "HEARTBEAT": ("worker → coordinator",
                  "liveness + outstanding/fits_done"),
    "FIT": ("coordinator → worker",
            "fit id, target, pickled strategy + zoo reference"),
    "FIT_RESULT": ("worker → coordinator",
                   "meta JSON, span records, packed arrays"),
    "FIT_ERROR": ("worker → coordinator",
                  "typed kind, exception module/type, message"),
}


def _message_section(name: str, spec: dict) -> list[str]:
    lines = [f"### `{name}`", ""]
    kind = spec.get("kind")
    if kind is not None:
        lines += [f"Wire discriminant: `\"kind\": \"{kind}\"`", ""]
    lines += ["| field | type | required |", "| --- | --- | --- |"]
    for field, info in sorted(spec.get("fields", {}).items()):
        required = "yes" if info.get("required") else "no"
        # "|" inside a cell would split the markdown table column
        type_str = str(info.get("type", "?")).replace("|", "\\|")
        lines.append(f"| `{field}` | `{type_str}` | {required} |")
    lines.append("")
    return lines


def _fleet_rows() -> list[tuple[str, str, str, str]]:
    rows = []
    for frame_cls, name in wire._FRAME_NAMES.items():
        direction, carries = _FRAME_DIRECTIONS.get(name, ("?", "?"))
        fields = ", ".join(f.name for f in dataclasses.fields(frame_cls))
        rows.append((name, direction, fields, carries))
    return rows


def render_protocol_doc(root: str | Path) -> str:
    """The full ``docs/protocol.md`` markdown for this checkout."""
    snapshot_file = Path(root) / SNAPSHOT_PATH
    snapshot = json.loads(snapshot_file.read_text(encoding="utf-8"))
    messages = snapshot.get("messages", {})
    version = snapshot.get("protocol_version", "?")

    lines = [
        "# Wire protocol reference",
        "",
        "<!-- GENERATED FILE — do not edit by hand. -->",
        "<!-- Regenerate with: repro docs --protocol -->",
        "<!-- CI gates drift with: repro docs --protocol --check -->",
        "",
        "## HTTP v1 protocol",
        "",
        f"Protocol version: `{version}`.  Messages are canonical JSON "
        "(sorted keys, compact separators) — encoding the same message "
        "twice yields identical bytes.  This section is rendered from "
        f"`{SNAPSHOT_PATH}`, the snapshot the `wire-schema` analysis "
        "rule gates against `repro/serving/protocol.py`; growth is "
        "additive-only (new optional fields), never breaking.",
        "",
    ]
    for name in sorted(messages):
        lines += _message_section(name, messages[name])

    lines += [
        "## Fleet socket frames",
        "",
        "The distributed fit plane (`repro fit-worker` ↔ the gateway's "
        "`FleetCoordinator`) speaks a length-prefixed framed protocol "
        "over TCP (`repro/fleet/wire.py`, wire version "
        f"`{wire.WIRE_VERSION}`): each frame is a canonical-JSON header "
        "plus an optional binary tail for what JSON cannot carry.  The "
        "CHALLENGE/AUTH handshake is a *mutual* HMAC proof over fresh "
        "nonces when a fleet secret is configured; the coordinator "
        "never unpickles worker-supplied bytes.",
        "",
        "| frame | direction | fields | carries |",
        "| --- | --- | --- | --- |",
    ]
    for name, direction, fields, carries in _fleet_rows():
        lines.append(f"| `{name}` | {direction} | `{fields}` | {carries} |")
    lines += [
        "",
        "See `docs/operations.md` for the fleet trust model and "
        "deployment runbook.",
        "",
    ]
    return "\n".join(lines)


def write_protocol_doc(root: str | Path) -> Path:
    """Render and write ``docs/protocol.md``; returns the path."""
    out = Path(root) / PROTOCOL_DOC_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_protocol_doc(root), encoding="utf-8")
    return out


def check_protocol_doc(root: str | Path) -> list[str]:
    """Drift report: empty when the committed doc matches a fresh render."""
    expected = render_protocol_doc(root)
    path = Path(root) / PROTOCOL_DOC_PATH
    if not path.exists():
        return [f"{PROTOCOL_DOC_PATH} is missing; run `repro docs --protocol`"]
    if path.read_text(encoding="utf-8") != expected:
        return [f"{PROTOCOL_DOC_PATH} is stale; run `repro docs --protocol`"]
    return []
