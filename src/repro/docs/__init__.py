"""Documentation tooling: generated references that cannot drift.

Hand-written docs rot; this package renders the machine-checked parts
of ``docs/`` from the same sources the code enforces:

- :mod:`repro.docs.protocol` renders ``docs/protocol.md`` from the
  committed wire-schema snapshot
  (``benchmarks/baselines/protocol_schema.json`` — the file the
  ``wire-schema`` analysis rule gates against ``serving/protocol.py``)
  plus the fleet frame table derived from :mod:`repro.fleet.wire`'s
  dataclasses, so the protocol reference is exactly as fresh as the
  enforced schema;
- :mod:`repro.docs.links` is a stdlib link checker for ``docs/*.md``
  and the README: relative links must resolve on disk and fenced
  ``repro ...`` CLI examples must name real subcommands (parsed from
  the live ``repro --help``).

Both run in CI via ``repro docs --protocol --check`` and
``repro docs --check-links``.
"""

from repro.docs.links import check_links
from repro.docs.protocol import (
    PROTOCOL_DOC_PATH,
    check_protocol_doc,
    render_protocol_doc,
    write_protocol_doc,
)

__all__ = [
    "PROTOCOL_DOC_PATH",
    "check_links",
    "check_protocol_doc",
    "render_protocol_doc",
    "write_protocol_doc",
]
