"""Amazon LR (Li et al., CVPR 2023 [10]) — the learning-based SOTA baseline.

A linear regression over basic metadata of models and datasets, trained
on the fine-tuning history of all non-target datasets (LOO).  Variants:

- ``LR``            — metadata features only;
- ``LR{all}``       — metadata + dataset similarity;
- ``LR{all,LogME}`` — metadata + dataset similarity + LogME score.

Implementation-wise this is TransferGraph's Stage 3 with graph features
switched off — which is precisely how the paper positions it.  The class
is a thin, backward-compatible face over the strategy layer: it *is* a
:class:`~repro.strategies.TransferGraphStrategy` under an ``lr:`` spec,
so the three variants are also servable end-to-end via
``get_strategy("lr:basic" | "lr:all" | "lr:all+logme")``.
"""

from __future__ import annotations

from repro.core.config import TransferGraphConfig
from repro.strategies.transfer_graph import LR_VARIANTS, TransferGraphStrategy

__all__ = ["AmazonLR"]


class AmazonLR(TransferGraphStrategy):
    """Metadata linear regression in three feature variants."""

    def __init__(self, variant: str = "basic", seed: int = 0,
                 label_method: str = "finetune"):
        if variant not in LR_VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of "
                f"{sorted(LR_VARIANTS)}")
        feature_set, name = LR_VARIANTS[variant]
        self.variant = variant
        config = TransferGraphConfig(
            predictor="lr",
            features=feature_set(),
            label_method=label_method,
            seed=seed,
        )
        super().__init__(config, spec=f"lr:{variant}", name=name)
