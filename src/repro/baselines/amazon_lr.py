"""Amazon LR (Li et al., CVPR 2023 [10]) — the learning-based SOTA baseline.

A linear regression over basic metadata of models and datasets, trained
on the fine-tuning history of all non-target datasets (LOO).  Variants:

- ``LR``            — metadata features only;
- ``LR{all}``       — metadata + dataset similarity;
- ``LR{all,LogME}`` — metadata + dataset similarity + LogME score.

Implementation-wise this is TransferGraph's Stage 3 with graph features
switched off — which is precisely how the paper positions it.
"""

from __future__ import annotations

from repro.core.config import FeatureSet, TransferGraphConfig
from repro.core.framework import TransferGraph

__all__ = ["AmazonLR"]

_VARIANTS = {
    "basic": (FeatureSet.basic, "LR"),
    "all": (FeatureSet.all_no_graph, "LR{all}"),
    "all+logme": (FeatureSet.all_logme, "LR{all,LogME}"),
}


class AmazonLR:
    """Metadata linear regression in three feature variants."""

    def __init__(self, variant: str = "basic", seed: int = 0,
                 label_method: str = "finetune"):
        if variant not in _VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {sorted(_VARIANTS)}")
        feature_set, name = _VARIANTS[variant]
        self.variant = variant
        self.name = name
        config = TransferGraphConfig(
            predictor="lr",
            features=feature_set(),
            label_method=label_method,
            seed=seed,
        )
        self._tg = TransferGraph(config)

    def scores_for_target(self, zoo, target: str) -> dict[str, float]:
        return self._tg.scores_for_target(zoo, target)
