"""Feature-based strategies: rank directly by a transferability estimator.

The paper's main feature-based baseline is LogME [4]: score every model
with a forward pass on the target dataset, no fine-tuning and no learning
from history.  :class:`FeatureBasedStrategy` is the backward-compatible
name for :class:`~repro.strategies.TransferabilityStrategy` — the same
ranker is servable end-to-end via ``get_strategy("logme")`` (or any
other estimator name).
"""

from __future__ import annotations

from repro.strategies.score_based import TransferabilityStrategy

__all__ = ["FeatureBasedStrategy"]


class FeatureBasedStrategy(TransferabilityStrategy):
    """Scores = estimator(model features on target).  Default: LogME."""
