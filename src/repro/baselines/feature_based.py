"""Feature-based strategies: rank directly by a transferability estimator.

The paper's main feature-based baseline is LogME [4]: score every model
with a forward pass on the target dataset, no fine-tuning and no learning
from history.
"""

from __future__ import annotations

from repro.transferability import get_estimator, score_model_on_dataset

__all__ = ["FeatureBasedStrategy"]


class FeatureBasedStrategy:
    """Scores = estimator(model features on target).  Default: LogME."""

    def __init__(self, metric: str = "logme", record: bool = True):
        self.metric = metric
        self.record = record
        self.name = {"logme": "LogME"}.get(metric, metric.upper())
        get_estimator(metric)  # fail fast on unknown metric

    def scores_for_target(self, zoo, target: str) -> dict[str, float]:
        scores: dict[str, float] = {}
        for model_id in zoo.model_ids():
            cached = zoo.catalog.get_transferability(model_id, target,
                                                     metric=self.metric)
            if cached is None:
                cached = score_model_on_dataset(zoo, model_id, target,
                                                self.metric)
                if self.record:
                    zoo.catalog.record_transferability(model_id, target,
                                                       self.metric, cached)
            scores[model_id] = cached
        return scores
