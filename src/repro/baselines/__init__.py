"""Baseline model-selection strategies (§VII-A "Baselines").

- :class:`RandomSelection` — the naive strategy of Fig. 2;
- :class:`FeatureBasedStrategy` — rank by a transferability estimator
  (``LogME`` being the paper's feature-based baseline);
- :class:`AmazonLR` — the learning-based SOTA baseline [10] in its three
  variants: ``LR`` (metadata), ``LR{all}`` (+dataset similarity),
  ``LR{all,LogME}`` (+LogME score feature).

All expose the strategy protocol:
``scores_for_target(zoo, target) -> {model_id: score}``.
"""

from repro.baselines.random_select import RandomSelection
from repro.baselines.feature_based import FeatureBasedStrategy
from repro.baselines.amazon_lr import AmazonLR

__all__ = ["RandomSelection", "FeatureBasedStrategy", "AmazonLR"]
