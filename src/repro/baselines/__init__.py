"""Baseline model-selection strategies (§VII-A "Baselines").

- :class:`RandomSelection` — the naive strategy of Fig. 2;
- :class:`FeatureBasedStrategy` — rank by a transferability estimator
  (``LogME`` being the paper's feature-based baseline);
- :class:`AmazonLR` — the learning-based SOTA baseline [10] in its three
  variants: ``LR`` (metadata), ``LR{all}`` (+dataset similarity),
  ``LR{all,LogME}`` (+LogME score feature).

All are first-class :class:`~repro.strategies.SelectionStrategy`
subclasses, so beyond the evaluation-harness protocol
(``scores_for_target(zoo, target) -> {model_id: score}``) they fit,
pack/unpack, and serve through the whole registry → service → gateway →
HTTP stack like any other strategy
(``repro.strategies.get_strategy("lr:all+logme" | "logme" | "random")``).
"""

from repro.baselines.random_select import RandomSelection
from repro.baselines.feature_based import FeatureBasedStrategy
from repro.baselines.amazon_lr import AmazonLR

__all__ = ["RandomSelection", "FeatureBasedStrategy", "AmazonLR"]
