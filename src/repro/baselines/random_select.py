"""Random model selection — the naive baseline of Fig. 2.

:class:`RandomSelection` is the backward-compatible name for
:class:`~repro.strategies.RandomStrategy`, kept so the evaluation
harness and older call sites read as the paper does.
"""

from __future__ import annotations

from repro.strategies.score_based import RandomStrategy

__all__ = ["RandomSelection"]


class RandomSelection(RandomStrategy):
    """Assigns i.i.d. uniform scores; deterministic per (seed, target)."""
