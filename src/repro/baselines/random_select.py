"""Random model selection — the naive baseline of Fig. 2."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_seed

__all__ = ["RandomSelection"]


class RandomSelection:
    """Assigns i.i.d. uniform scores; deterministic per (seed, target)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.name = "Random"

    def scores_for_target(self, zoo, target: str) -> dict[str, float]:
        rng = np.random.default_rng(derive_seed(self.seed, "random", target))
        model_ids = zoo.model_ids()
        return dict(zip(model_ids, rng.random(len(model_ids))))
