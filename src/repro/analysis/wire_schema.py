"""wire-schema: the v1 protocol only ever grows, additively.

``serving/protocol.py`` promises that v1 is *additive-only*: fields
never disappear, never change type, and requests never grow new
required fields (PR 3's byte-stability contract).  Until now that rule
was enforced by reviewer memory.

This rule extracts the message schema — every ``@dataclass`` in the
protocol module, its wire ``kind``, and each field's annotation and
required/optional status — and diffs it against the committed snapshot
at ``benchmarks/baselines/protocol_schema.json``:

- a removed message, removed field, retyped field, newly-required
  field, or changed protocol version is a **breaking** finding — CI
  fails and the snapshot refuses to move;
- a new message or new *optional* field is legitimate additive growth:
  the finding says exactly that, and
  ``repro analyze --update-schema`` regenerates the snapshot as part
  of the same PR.

The snapshot is committed next to the benchmark baselines because it
is one: a machine-checked record of behaviour previous PRs shipped.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.core import Finding, Project, Rule, SourceFile

__all__ = ["WireSchemaRule", "extract_schema"]

PROTOCOL_PATH = "src/repro/serving/protocol.py"
SNAPSHOT_PATH = "benchmarks/baselines/protocol_schema.json"

_REGENERATE_HINT = (
    "additive change: regenerate the snapshot with "
    "'repro analyze --update-schema' and commit it"
)


def _is_classvar(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    return isinstance(annotation, ast.Name) and annotation.id == "ClassVar"


def _is_dataclass(klass: ast.ClassDef) -> bool:
    for decorator in klass.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


def _extract(source: SourceFile) -> tuple[dict, dict[str, dict[str, int]]]:
    """(schema dict, {message: {field or "": line}}) of one protocol file."""
    version = None
    for node in source.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "PROTOCOL_VERSION"
            and isinstance(node.value, ast.Constant)
        ):
            version = node.value.value
    messages: dict[str, dict] = {}
    lines: dict[str, dict[str, int]] = {}
    for node in source.tree.body:
        if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
            continue
        kind = None
        fields: dict[str, dict] = {}
        lines[node.name] = {"": node.lineno}
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            name = stmt.target.id
            if _is_classvar(stmt.annotation):
                is_kind = name in ("kind", "_kind")
                if is_kind and isinstance(stmt.value, ast.Constant):
                    kind = stmt.value.value
                continue
            fields[name] = {
                "type": ast.unparse(stmt.annotation),
                "required": stmt.value is None,
            }
            lines[node.name][name] = stmt.lineno
        messages[node.name] = {"kind": kind, "fields": fields}
    schema = {
        "module": PROTOCOL_PATH,
        "protocol_version": version,
        "messages": messages,
    }
    return schema, lines


def extract_schema(project: Project) -> dict:
    """The live wire schema of the project's protocol module."""
    source = project.source(PROTOCOL_PATH)
    if source is None:
        return {"module": PROTOCOL_PATH, "protocol_version": None, "messages": {}}
    schema, _ = _extract(source)
    return schema


class WireSchemaRule(Rule):
    """protocol.py must match its committed snapshot, additively."""

    id: ClassVar[str] = "wire-schema"
    description: ClassVar[str] = (
        "serving/protocol.py dataclasses diff cleanly against "
        "benchmarks/baselines/protocol_schema.json: no removed, retyped, "
        "or newly-required fields"
    )

    def check(self, project: Project) -> list[Finding]:
        source = project.source(PROTOCOL_PATH)
        if source is None:
            return []
        live, lines = _extract(source)
        snapshot = project.read_json(SNAPSHOT_PATH)
        if snapshot is None:
            return [
                Finding(
                    rule=self.id,
                    path=PROTOCOL_PATH,
                    line=1,
                    message=f"no committed schema snapshot at {SNAPSHOT_PATH}",
                    hint=_REGENERATE_HINT,
                )
            ]
        if not isinstance(snapshot, dict):
            return [
                Finding(
                    rule=self.id,
                    path=PROTOCOL_PATH,
                    line=1,
                    message=f"{SNAPSHOT_PATH} is not a JSON object",
                    hint=_REGENERATE_HINT,
                )
            ]
        findings: list[Finding] = []

        def report(message: str, name: str, field: str = "", hint: str = "") -> None:
            line = lines.get(name, {}).get(field) or lines.get(name, {}).get("", 1)
            findings.append(
                Finding(
                    rule=self.id,
                    path=PROTOCOL_PATH,
                    line=line or 1,
                    message=message,
                    hint=hint or "breaking changes belong in a /v2 module",
                )
            )

        old_version = snapshot.get("protocol_version")
        if live["protocol_version"] != old_version:
            report(
                f"protocol version changed from {old_version!r} to "
                f"{live['protocol_version']!r}",
                name="",
            )
        old_messages = snapshot.get("messages", {})
        for name, old in old_messages.items():
            new = live["messages"].get(name)
            if new is None:
                report(
                    f"message {name} was removed from the v1 protocol",
                    name=name,
                )
                continue
            if new["kind"] != old.get("kind"):
                report(
                    f"{name}.kind changed from {old.get('kind')!r} to "
                    f"{new['kind']!r}",
                    name=name,
                )
            old_fields = old.get("fields", {})
            for field, old_spec in old_fields.items():
                new_spec = new["fields"].get(field)
                if new_spec is None:
                    report(
                        f"{name}.{field} was removed from the v1 protocol",
                        name=name,
                    )
                    continue
                if new_spec["type"] != old_spec.get("type"):
                    report(
                        f"{name}.{field} was retyped from "
                        f"{old_spec.get('type')!r} to {new_spec['type']!r}",
                        name=name,
                        field=field,
                    )
                if new_spec["required"] and not old_spec.get("required"):
                    report(
                        f"{name}.{field} became required; v1 fields may "
                        f"only be added as optional",
                        name=name,
                        field=field,
                    )
            for field, new_spec in new["fields"].items():
                if field in old_fields:
                    continue
                if new_spec["required"]:
                    report(
                        f"{name}.{field} is a new required field; the v1 "
                        f"protocol only grows optional fields",
                        name=name,
                        field=field,
                    )
                else:
                    report(
                        f"{name}.{field} is new but missing from the "
                        f"committed snapshot",
                        name=name,
                        field=field,
                        hint=_REGENERATE_HINT,
                    )
        for name in live["messages"]:
            if name not in old_messages:
                report(
                    f"message {name} is new but missing from the committed "
                    f"snapshot",
                    name=name,
                    hint=_REGENERATE_HINT,
                )
        return findings
