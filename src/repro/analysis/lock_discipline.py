"""lock-discipline: declared lock-guarded attributes stay lock-guarded.

The serving and observability planes share mutable state between the
event loop, executor threads, and metric scrapes; every such attribute
is guarded by an instance lock by convention.  PR 7's ``_predict_locks``
leak showed the convention failing silently — an unguarded read lived
for two PRs because nothing checked it.

This rule makes the convention declarative.  Registering an attribute
is one trailing comment on its ``__init__`` assignment::

    self._stats = Counter()  # guarded by: self._stats_lock

From then on, every other read or write of ``self._stats`` inside the
class must sit lexically inside a ``with self._stats_lock:`` block.
Exemptions, in order of preference:

- the declaring method itself (construction precedes publication);
- methods named ``*_locked`` — the repo's "caller already holds the
  lock" convention — are assumed to run under every declared lock;
- an explicit ``# analyze: ignore[lock-discipline]`` on the access, for
  deliberate unlocked fast paths (document why next to it).

Nested functions and lambdas defined inside a guarded block are treated
as *not* holding the lock: they run whenever they are called, not where
they are defined.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import ClassVar

from repro.analysis.core import Finding, Project, Rule, SourceFile

__all__ = ["LockDisciplineRule"]

_GUARD_RE = re.compile(r"#\s*guarded by:\s*self\.([A-Za-z_][A-Za-z0-9_]*)")

_SCOPE = ("src/repro/serving/*.py", "src/repro/obs/*.py")


@dataclass(frozen=True)
class _Declaration:
    attr: str
    lock: str
    line: int
    method: ast.AST  # the function whose body declared it


def _self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _declarations(source: SourceFile, klass: ast.ClassDef) -> dict[str, _Declaration]:
    """Guard declarations in ``klass``: attr -> (lock, declaring method)."""
    decls: dict[str, _Declaration] = {}
    for method in ast.walk(klass):
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            attrs = [a for a in map(_self_attr, targets) if a is not None]
            if not attrs:
                continue
            # The marker may trail the assignment or sit on its own
            # comment line directly above it.
            end = node.end_lineno or node.lineno
            for lineno in range(node.lineno - 1, end + 1):
                text = source.line(lineno)
                if lineno < node.lineno and not text.lstrip().startswith("#"):
                    continue
                match = _GUARD_RE.search(text)
                if match is None:
                    continue
                for attr in attrs:
                    decls[attr] = _Declaration(
                        attr=attr,
                        lock=match.group(1),
                        line=node.lineno,
                        method=method,
                    )
                break
    return decls


class LockDisciplineRule(Rule):
    """Accesses to declared-guarded attributes must hold their lock."""

    id: ClassVar[str] = "lock-discipline"
    description: ClassVar[str] = (
        "attributes declared '# guarded by: self._lock' are only touched "
        "inside 'with self._lock' blocks"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for source in project.files(*_SCOPE):
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_class(source, node))
        return findings

    def _check_class(self, source: SourceFile, klass: ast.ClassDef) -> list[Finding]:
        decls = _declarations(source, klass)
        if not decls:
            return []
        locks = frozenset(d.lock for d in decls.values())
        findings: list[Finding] = []
        for stmt in klass.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # *_locked methods run under the caller's lock by convention.
            held = locks if stmt.name.endswith("_locked") else frozenset()
            exempt = frozenset(
                attr for attr, decl in decls.items() if decl.method is stmt
            )
            for child in ast.iter_child_nodes(stmt):
                self._walk(source, klass, decls, exempt, child, held, findings)
        return findings

    def _walk(
        self,
        source: SourceFile,
        klass: ast.ClassDef,
        decls: dict[str, _Declaration],
        exempt: frozenset[str],
        node: ast.AST,
        held: frozenset[str],
        findings: list[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callable runs when called, not where defined — it
            # does not inherit the enclosing block's locks.
            for child in ast.iter_child_nodes(node):
                self._walk(source, klass, decls, exempt, child, frozenset(), findings)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                lock = _self_attr(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
                self._walk(
                    source,
                    klass,
                    decls,
                    exempt,
                    item.context_expr,
                    held,
                    findings,
                )
            inner = held | acquired
            for stmt in node.body:
                self._walk(source, klass, decls, exempt, stmt, inner, findings)
            return
        attr = _self_attr(node)
        if attr is not None and attr in decls and attr not in exempt:
            decl = decls[attr]
            if decl.lock not in held:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            f"{klass.name}.{attr} is declared guarded by "
                            f"self.{decl.lock} (line {decl.line}) but is "
                            f"accessed without holding it"
                        ),
                        hint=(
                            f"wrap the access in 'with self.{decl.lock}:' or "
                            f"move it into a *_locked helper"
                        ),
                    )
                )
            return
        for child in ast.iter_child_nodes(node):
            self._walk(source, klass, decls, exempt, child, held, findings)
