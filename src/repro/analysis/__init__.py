"""``repro analyze``: the repo-specific static-analysis suite.

Five AST-based rules encode the invariants the serving stack holds only
by convention — and that the next tier of scale (ROADMAP's fit-worker
fleet and SQLite catalog) will stretch:

- ``lock-discipline`` — attributes declared
  ``# guarded by: self._lock`` are only touched under that lock
  (``serving/`` + ``obs/``);
- ``async-blocking`` — no blocking calls inline in the ``async def``
  bodies of ``http.py``/``router.py``/``gateway.py``;
- ``wire-schema`` — ``serving/protocol.py`` diffs additively against
  the committed ``benchmarks/baselines/protocol_schema.json`` snapshot;
- ``import-layering`` — the declared package DAG
  (foundation -> strategies -> serving; ``obs`` a leaf;
  ``protocol.py`` stdlib-only) matches the real import graph;
- ``pickle-boundary`` — nothing unpicklable on
  :class:`~repro.strategies.SelectionStrategy` subclasses or submitted
  across the process fit plane.

Everything is stdlib-only so the CI ``analysis`` job (and this
container) needs no extra installs.  Run ``repro analyze`` locally;
see the README's "Static analysis" section for the rule catalog and
the snapshot-regeneration workflow.
"""

from repro.analysis.core import (
    AnalysisError,
    Finding,
    Project,
    Rule,
    all_rules,
    format_findings,
    run_analysis,
)
from repro.analysis.wire_schema import SNAPSHOT_PATH, extract_schema

__all__ = [
    "AnalysisError",
    "Finding",
    "Project",
    "Rule",
    "SNAPSHOT_PATH",
    "all_rules",
    "extract_schema",
    "format_findings",
    "run_analysis",
]
