"""Shared machinery of the ``repro analyze`` static-analysis suite.

The suite is dependency-free on purpose: rules parse the repo with the
stdlib :mod:`ast` module and report :class:`Finding` records, so the CI
``analysis`` job needs nothing beyond the interpreter, and the checks
run identically in environments (like this one) where third-party
linters cannot be installed.

Three pieces:

- :class:`Project` — lazily parsed view of the repository's ``src``
  tree, keyed by repo-relative POSIX paths, shared across rules so each
  file is read and parsed once per run;
- :class:`Rule` — one invariant checker; subclasses declare ``id`` /
  ``description`` and implement :meth:`Rule.check`;
- :func:`run_analysis` — the runner: instantiates the requested rules,
  collects findings, drops ones suppressed by an inline
  ``# analyze: ignore[rule-id]`` comment on the flagged line, and
  returns them in stable (path, line, rule) order.

Suppression is deliberate and visible: a bare ``# analyze: ignore``
silences every rule on that line, ``# analyze: ignore[lock-discipline]``
silences one rule, and the comment rides the flagged line itself so the
exemption is reviewed next to the code it exempts.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterable, Sequence

__all__ = [
    "AnalysisError",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "format_findings",
    "run_analysis",
]

_IGNORE_RE = re.compile(r"#\s*analyze:\s*ignore(?:\[([a-zA-Z0-9_, -]+)\])?")


class AnalysisError(RuntimeError):
    """The analysis run itself failed (bad root, unknown rule id)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line.

    ``path`` is repo-relative POSIX form so findings are stable across
    machines; ``hint`` is the suggested fix, shown indented under the
    message in human output.
    """

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)


class SourceFile:
    """One parsed source file: text, lines, AST, and suppressions."""

    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=rel)
        self._suppressed: dict[int, set[str] | None] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _IGNORE_RE.search(line)
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                self._suppressed[lineno] = None  # every rule
            else:
                ids = {r.strip() for r in rules.split(",") if r.strip()}
                self._suppressed[lineno] = ids

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        if lineno not in self._suppressed:
            return False
        rules = self._suppressed[lineno]
        return rules is None or rule_id in rules


class Project:
    """A lazily parsed, cached view of one repository tree.

    Rules address files by repo-relative POSIX path
    (``src/repro/serving/router.py``); parse results are cached so the
    five rules share one AST per file.  Fixture tests point this at the
    mini-repos under ``tests/analysis_fixtures/`` — any directory with
    the repo's ``src/repro`` shape works.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        if not self.root.is_dir():
            raise AnalysisError(f"analysis root {self.root} is not a directory")
        self._cache: dict[str, SourceFile | None] = {}

    def files(self, *patterns: str) -> list[SourceFile]:
        """Parsed sources matching any of the ``src``-relative globs."""
        rels: set[str] = set()
        for pattern in patterns:
            for path in sorted(self.root.glob(pattern)):
                if path.suffix == ".py" and path.is_file():
                    rels.add(path.relative_to(self.root).as_posix())
        out = []
        for rel in sorted(rels):
            source = self.source(rel)
            if source is not None:
                out.append(source)
        return out

    def source(self, rel: str) -> SourceFile | None:
        """The parsed file at ``rel``, or None if absent/unparseable."""
        if rel not in self._cache:
            path = self.root / rel
            if not path.is_file():
                self._cache[rel] = None
            else:
                text = path.read_text(encoding="utf-8")
                try:
                    self._cache[rel] = SourceFile(rel, text)
                except SyntaxError as exc:
                    raise AnalysisError(f"{rel} does not parse: {exc}") from exc
        return self._cache[rel]

    def read_json(self, rel: str) -> object | None:
        """Parsed JSON at ``rel``, or None if the file is absent."""
        path = self.root / rel
        if not path.is_file():
            return None
        return json.loads(path.read_text(encoding="utf-8"))


class Rule:
    """One machine-checked repo invariant.

    Subclasses set :attr:`id` (the ``--rule`` / suppression key) and
    :attr:`description` (one line, shown by ``repro analyze --list``)
    and implement :meth:`check`.
    """

    id: ClassVar[str]
    description: ClassVar[str]

    def check(self, project: Project) -> list[Finding]:
        raise NotImplementedError


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, in catalog order."""
    from repro.analysis.async_blocking import AsyncBlockingRule
    from repro.analysis.layering import ImportLayeringRule
    from repro.analysis.lock_discipline import LockDisciplineRule
    from repro.analysis.pickle_boundary import PickleBoundaryRule
    from repro.analysis.wire_schema import WireSchemaRule

    return [
        LockDisciplineRule,
        AsyncBlockingRule,
        WireSchemaRule,
        ImportLayeringRule,
        PickleBoundaryRule,
    ]


def resolve_rules(rule_ids: Sequence[str] | None) -> list[Rule]:
    """Instantiate the requested rules (all of them when None)."""
    catalog = {cls.id: cls for cls in all_rules()}
    if rule_ids is None:
        return [cls() for cls in catalog.values()]
    out = []
    for rule_id in rule_ids:
        if rule_id not in catalog:
            known = ", ".join(sorted(catalog))
            raise AnalysisError(f"unknown rule {rule_id!r}; known rules: {known}")
        out.append(catalog[rule_id]())
    return out


def run_analysis(
    root: Path | str,
    rule_ids: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the suite over one repo tree and return surviving findings.

    Findings whose flagged line carries a matching
    ``# analyze: ignore[...]`` comment are dropped here, so every rule
    gets suppression behaviour for free.
    """
    project = Project(root)
    findings: list[Finding] = []
    for rule in resolve_rules(rule_ids):
        for finding in rule.check(project):
            source = project.source(finding.path)
            suppressed = source is not None and source.is_suppressed(
                finding.rule,
                finding.line,
            )
            if suppressed:
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def format_findings(findings: Iterable[Finding], fmt: str = "human") -> str:
    """Render findings as ``human`` text or a ``json`` report."""
    findings = list(findings)
    if fmt == "json":
        report = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "ok": not findings,
        }
        return json.dumps(report, indent=2, sort_keys=True)
    if fmt != "human":
        raise AnalysisError(f"unknown format {fmt!r}; expected human or json")
    if not findings:
        return "analyze: clean (no findings)"
    out = []
    for finding in findings:
        out.append(f"{finding.path}:{finding.line}: [{finding.rule}] {finding.message}")
        if finding.hint:
            out.append(f"    fix: {finding.hint}")
    out.append(f"analyze: {len(findings)} finding(s)")
    return "\n".join(out)
