"""async-blocking: no synchronous blocking calls on the event loop.

The serving stack's concurrency model is one asyncio event loop in
front of executor pools: every blocking operation — strategy fits,
artifact IO, process-pool round-trips — must cross
``loop.run_in_executor(...)`` (or ``asyncio.to_thread``), never run
inline in a coroutine.  One inline ``strategy.fit()`` in a request
handler stalls every in-flight request for seconds; it still passes
every functional test, because tests measure results, not loop stalls.

This rule walks the ``async def`` bodies of the event-loop-facing
modules (serving's ``http.py``, ``router.py``, ``gateway.py`` and the
fleet's ``wire.py``, ``coordinator.py``, ``worker.py``) and flags
direct calls that block:

- ``time.sleep`` (use ``asyncio.sleep``);
- ``open`` (artifact/file IO belongs in the executor);
- ``<future>.result()`` (await the future instead);
- anything under ``subprocess`` (the process fit plane wraps its pool
  in an executor for a reason);
- ``<strategy>.fit(...)`` and ``np.load`` (the two heavyweight calls
  the executors exist for);
- anything under ``sqlite3`` and ``execute``/``executemany``/
  ``executescript`` calls (the durable store and the registry's
  artifact index are SQLite databases on disk — a query is file IO
  and may additionally park on the database lock).

Arguments of ``run_in_executor``/``to_thread`` calls are exempt — that
is the sanctioned way to reference a blocking callable — and nested
``def``/``lambda`` helpers are skipped entirely: they execute wherever
they are invoked, which the enclosing scope decides.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.core import Finding, Project, Rule, SourceFile

__all__ = ["AsyncBlockingRule"]

_SCOPE = (
    "src/repro/serving/http.py",
    "src/repro/serving/router.py",
    "src/repro/serving/gateway.py",
    "src/repro/fleet/wire.py",
    "src/repro/fleet/coordinator.py",
    "src/repro/fleet/worker.py",
)

_EXECUTOR_CALLS = {"run_in_executor", "to_thread"}


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """The dotted name chain of ``a.b.c`` expressions, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _blocking_reason(func: ast.AST) -> tuple[str, str] | None:
    """(message, hint) when ``func`` is a known blocking callable."""
    if isinstance(func, ast.Name) and func.id == "open":
        return (
            "open() blocks the event loop",
            "do file IO in the executor (loop.run_in_executor)",
        )
    chain = _dotted(func)
    if chain is None:
        return None
    if chain[-2:] == ("time", "sleep") or chain == ("sleep",):
        return (
            "time.sleep() stalls every in-flight request",
            "use 'await asyncio.sleep(...)'",
        )
    if chain[0] == "subprocess":
        return (
            f"subprocess.{chain[-1]}() blocks the event loop",
            "dispatch through the fit-plane executor instead",
        )
    if chain[-2:] == ("np", "load") or chain[-2:] == ("numpy", "load"):
        return (
            "np.load() is blocking artifact IO",
            "load arrays in the executor (loop.run_in_executor)",
        )
    if chain[-1] == "result" and len(chain) > 1:
        return (
            f"{'.'.join(chain)}() blocks until the future resolves",
            "await the future (or asyncio.wrap_future) instead",
        )
    if chain[-1] == "fit" and len(chain) > 1:
        return (
            f"{'.'.join(chain)}() runs a strategy fit on the event loop",
            "submit the fit through the router's fit executor",
        )
    if chain[0] == "sqlite3":
        return (
            f"sqlite3.{chain[-1]}() blocks the event loop",
            "open store databases in the executor (loop.run_in_executor)",
        )
    if chain[-1] in {"execute", "executemany", "executescript"} and len(chain) > 1:
        return (
            f"{'.'.join(chain)}() runs SQLite work on the event loop",
            "route store/index queries through the executor "
            "(loop.run_in_executor)",
        )
    return None


class AsyncBlockingRule(Rule):
    """``async def`` bodies must not call blocking primitives inline."""

    id: ClassVar[str] = "async-blocking"
    description: ClassVar[str] = (
        "no time.sleep/open/Future.result/subprocess/strategy.fit/np.load/"
        "sqlite3 work directly inside async def bodies of serving's "
        "http/router/gateway and the fleet's wire/coordinator/worker"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for source in project.files(*_SCOPE):
            for node in ast.walk(source.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    for child in ast.iter_child_nodes(node):
                        self._walk(source, node.name, child, findings)
        return findings

    def _walk(
        self,
        source: SourceFile,
        coroutine: str,
        node: ast.AST,
        findings: list[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested helpers run wherever they are invoked; flagging the
            # invocation site (or the executor submission) is the job of
            # the enclosing scope's walk.
            return
        if isinstance(node, ast.Call):
            reason = _blocking_reason(node.func)
            if reason is not None:
                message, hint = reason
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        message=f"async def {coroutine}: {message}",
                        hint=hint,
                    )
                )
            chain = _dotted(node.func)
            if chain is not None and chain[-1] in _EXECUTOR_CALLS:
                # The sanctioned escape hatch: blocking callables are
                # *referenced* here, not called on the loop.
                self._walk(source, coroutine, node.func, findings)
                return
        for child in ast.iter_child_nodes(node):
            self._walk(source, coroutine, child, findings)
