"""pickle-boundary: strategies must survive the process fit plane.

``fit_executor="process"`` pickles the strategy instance into a spawn
worker (``serving/fit_plane.py``), so every
:class:`~repro.strategies.SelectionStrategy` subclass carries a hard
contract, documented in ``strategies/base.py``: module-level classes
with plain data attributes — no closures, no lambdas, no locks, no
open handles.  Violating it is a runtime :class:`FitPlaneError` on the
first cold fit routed to a worker; this rule turns that into a
review-time finding.

Two checks:

- **strategy state** — inside any class that (transitively) subclasses
  ``SelectionStrategy`` across ``strategies/`` and ``baselines/``,
  flag ``self.x = <lambda>``, ``self.x = <nested def>``,
  ``self.x = threading.Lock()`` (or any lock/semaphore sibling),
  ``self.x = open(...)``, and ``self.x = ThreadPoolExecutor(...)``;
- **executor submissions** — in ``serving/fit_plane.py``, a
  ``pool.submit(fn, ...)`` whose callable is a lambda or a function
  defined inside the enclosing scope cannot be pickled to a spawn
  worker; workers take module-level functions only.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.core import Finding, Project, Rule, SourceFile

__all__ = ["PickleBoundaryRule"]

_STRATEGY_SCOPE = ("src/repro/strategies/*.py", "src/repro/baselines/*.py")
_FIT_PLANE = "src/repro/serving/fit_plane.py"

_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
}
_EXECUTOR_FACTORIES = {"ThreadPoolExecutor", "ProcessPoolExecutor"}

_HINT = (
    "strategy instances cross the process fit plane by pickle: keep "
    "attributes to plain data (see strategies/base.py)"
)


def _call_name(node: ast.AST) -> str | None:
    """Terminal name of a ``Call``'s callee (``threading.Lock`` -> Lock)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _unpicklable_reason(value: ast.AST, nested_defs: set[str]) -> str | None:
    if isinstance(value, ast.Lambda):
        return "a lambda (unpicklable)"
    if isinstance(value, ast.Name) and value.id in nested_defs:
        return f"nested function {value.id!r} (closures do not pickle)"
    name = _call_name(value)
    if name in _LOCK_FACTORIES:
        return f"a threading.{name} (locks do not pickle)"
    if name in _EXECUTOR_FACTORIES:
        return f"a {name} (executors do not pickle)"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id == "open":
            return "an open file handle (handles do not pickle)"
    return None


def _strategy_classes(sources: list[SourceFile]) -> dict[str, ast.ClassDef]:
    """(source rel, class) for every transitive SelectionStrategy subclass."""
    classes: list[tuple[SourceFile, ast.ClassDef]] = []
    for source in sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                classes.append((source, node))
    known = {"SelectionStrategy"}
    grew = True
    while grew:
        grew = False
        for _, klass in classes:
            if klass.name in known:
                continue
            base_names = {
                base.id if isinstance(base, ast.Name) else base.attr
                for base in klass.bases
                if isinstance(base, (ast.Name, ast.Attribute))
            }
            if base_names & known:
                known.add(klass.name)
                grew = True
    return {
        f"{source.rel}:{klass.name}": klass
        for source, klass in classes
        if klass.name in known and klass.name != "SelectionStrategy"
    }


class PickleBoundaryRule(Rule):
    """Nothing unpicklable on strategies or across the fit executor."""

    id: ClassVar[str] = "pickle-boundary"
    description: ClassVar[str] = (
        "no lambdas, closures, locks, or open handles stored on "
        "SelectionStrategy subclasses or submitted to the fit-plane "
        "executor"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        sources = project.files(*_STRATEGY_SCOPE)
        by_rel = {source.rel: source for source in sources}
        for key, klass in sorted(_strategy_classes(sources).items()):
            rel = key.rsplit(":", 1)[0]
            findings.extend(self._check_class(by_rel[rel], klass))
        fit_plane = project.source(_FIT_PLANE)
        if fit_plane is not None:
            findings.extend(self._check_submissions(fit_plane))
        return findings

    def _check_class(self, source: SourceFile, klass: ast.ClassDef) -> list[Finding]:
        findings: list[Finding] = []
        for method in klass.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nested_defs = {
                node.name
                for node in ast.walk(method)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not method
            }
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                stored = [
                    t
                    for t in node.targets
                    if isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ]
                if not stored:
                    continue
                reason = _unpicklable_reason(node.value, nested_defs)
                if reason is None:
                    continue
                for target in stored:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.rel,
                            line=node.lineno,
                            message=f"{klass.name}.{target.attr} stores {reason}",
                            hint=_HINT,
                        )
                    )
        return findings

    def _check_submissions(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for scope in ast.walk(source.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nested_defs = {
                node.name
                for node in ast.walk(scope)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not scope
            }
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                if not (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"
                    and node.args
                ):
                    continue
                fn = node.args[0]
                reason = None
                if isinstance(fn, ast.Lambda):
                    reason = "a lambda"
                elif isinstance(fn, ast.Name) and fn.id in nested_defs:
                    reason = f"nested function {fn.id!r}"
                if reason is not None:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"executor submission of {reason}; spawn "
                                f"workers can only import module-level "
                                f"callables"
                            ),
                            hint=(
                                "lift the task function to module level "
                                "(like _fit_task/_warm_worker)"
                            ),
                        )
                    )
        return findings
