"""import-layering: the package DAG is declared here and enforced.

The repo's layering contract (ROADMAP architecture; ISSUE 8):
foundation packages (``nn``/``graph``/``probe``/``transferability``)
feed ``strategies``, which feeds ``serving`` — never the other way.
Two hard edges ride along: ``obs`` is a leaf every layer may use but
which imports nothing back (so instrumenting a module can never create
a cycle), and ``serving/protocol.py`` is stdlib-only (the wire contract
must be importable without numpy, the zoo, or anything else).

The declared order lives in :data:`LAYERS`; a module may import only
packages at its own layer or below.  Adding a package means adding it
to the table — an unknown package is itself a finding, so the table
cannot silently rot.  Top-level orchestration modules (``cli.py``,
``__main__.py``, the package ``__init__``) are exempt: wiring every
layer together is their job.

Function-level (lazy) imports count: layering is about the dependency
graph, not import time.  Relative imports stay inside their package
and are always fine.
"""

from __future__ import annotations

import ast
import sys
from typing import ClassVar

from repro.analysis.core import Finding, Project, Rule

__all__ = ["ImportLayeringRule", "LAYERS"]

#: the declared architecture: package -> layer rank.  A module may only
#: import packages with rank <= its own.
LAYERS: dict[str, int] = {
    "utils": 0,
    "obs": 0,  # observability is a leaf: everyone may import it
    "analysis": 0,  # this suite is dependency-free by construction
    "nn": 1,
    "store": 1,
    "predictors": 1,
    "transferability": 1,
    "probe": 2,
    "zoo": 2,
    "graph": 3,
    "core": 4,
    "strategies": 5,
    "baselines": 6,
    "fleet": 6,  # distributed fit plane: serving imports it, never back
    "serving": 7,
    "docs": 7,  # generated-docs tooling reads fleet wire defs, never back
}

#: top-level modules whose job is wiring all layers together
_EXEMPT_MODULES = {"cli", "__main__", "__init__"}

PROTOCOL_PATH = "src/repro/serving/protocol.py"

_SRC_PREFIX = "src/repro/"


def _package_of(rel: str) -> str | None:
    """The repro subpackage of a repo-relative path, None when exempt."""
    if not rel.startswith(_SRC_PREFIX):
        return None
    parts = rel[len(_SRC_PREFIX):].split("/")
    if len(parts) == 1:
        name = parts[0].removesuffix(".py")
        return None if name in _EXEMPT_MODULES else name
    return parts[0]


def _imported_packages(tree: ast.AST) -> list[tuple[str, int]]:
    """(repro subpackage, line) for every absolute repro import."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    out.append((parts[1], node.lineno))
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            parts = node.module.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) > 1:
                out.append((parts[1], node.lineno))
            else:
                # "from repro import X": each name is a subpackage
                for alias in node.names:
                    out.append((alias.name, node.lineno))
    return out


class ImportLayeringRule(Rule):
    """Real imports must respect the declared package DAG."""

    id: ClassVar[str] = "import-layering"
    description: ClassVar[str] = (
        "packages only import same-or-lower layers "
        "(foundation -> strategies -> serving); obs is a leaf; "
        "serving/protocol.py is stdlib-only"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for source in project.files("src/repro/**/*.py"):
            package = _package_of(source.rel)
            if package is None:
                continue
            rank = LAYERS.get(package)
            if rank is None:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=1,
                        message=(
                            f"package {package!r} is not in the declared "
                            f"layering table"
                        ),
                        hint="add it to repro.analysis.layering.LAYERS",
                    )
                )
                continue
            for target, lineno in _imported_packages(source.tree):
                if target == package:
                    continue
                target_rank = LAYERS.get(target)
                if target_rank is None:
                    continue  # unknown target flagged when its files scan
                if target_rank > rank:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.rel,
                            line=lineno,
                            message=(
                                f"{package} (layer {rank}) imports "
                                f"repro.{target} (layer {target_rank}): "
                                f"upward dependency"
                            ),
                            hint=(
                                "move the shared code below "
                                f"repro.{package} or invert the dependency"
                            ),
                        )
                    )
            if source.rel == PROTOCOL_PATH:
                findings.extend(self._check_stdlib_only(source))
        return findings

    def _check_stdlib_only(self, source) -> list[Finding]:
        stdlib = sys.stdlib_module_names
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            roots: list[str] = []
            if isinstance(node, ast.Import):
                roots = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level > 0:
                    roots = ["repro"]  # relative = serving-internal
                elif node.module:
                    roots = [node.module.split(".")[0]]
            for root in roots:
                if root not in stdlib:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"protocol.py imports non-stdlib module "
                                f"{root!r}; the wire contract is "
                                f"stdlib-only"
                            ),
                            hint=(
                                "keep validation/serialisation in "
                                "protocol.py self-contained"
                            ),
                        )
                    )
        return findings
