"""LEEP — Log Expected Empirical Prediction (Nguyen et al., ICML 2020).

LEEP scores a source classifier by routing its source-class probabilities
through the empirical source→target label joint:

    P̂(y, z) = mean over samples with target label y of theta(x)_z
    P̂(y | z) = P̂(y, z) / P̂(z)
    LEEP = (1/n) Σ_i log Σ_z P̂(y_i | z) · theta(x_i)_z

Higher (closer to 0) is better; LEEP is always ≤ 0.
"""

from __future__ import annotations

import numpy as np

from repro.transferability.base import TransferabilityEstimator
from repro.utils.validation import check_2d, check_same_length

__all__ = ["LEEP", "leep_score"]


def _validate_probs(source_probs: np.ndarray, n: int) -> np.ndarray:
    p = np.asarray(source_probs, dtype=np.float64)
    check_2d(p, "source_probs")
    if p.shape[0] != n:
        raise ValueError(
            f"source_probs has {p.shape[0]} rows, expected {n}")
    if (p < -1e-9).any():
        raise ValueError("source_probs must be non-negative")
    row_sums = p.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-6):
        raise ValueError("source_probs rows must sum to 1 (softmax outputs)")
    return p


def leep_score(source_probs: np.ndarray, labels: np.ndarray) -> float:
    """LEEP transferability from source-class probabilities and labels."""
    y = np.asarray(labels)
    check_same_length(source_probs, y, "source_probs", "labels")
    theta = _validate_probs(source_probs, len(y))
    n, num_source = theta.shape
    classes = np.unique(y)

    # joint P(y, z): average theta over samples of each target class
    joint = np.zeros((classes.size, num_source))
    for row, c in enumerate(classes):
        joint[row] = theta[y == c].sum(axis=0)
    joint /= n
    marginal_z = joint.sum(axis=0)           # P(z)
    cond = joint / np.maximum(marginal_z, 1e-12)[None, :]   # P(y|z)

    class_index = {c: i for i, c in enumerate(classes)}
    rows = np.array([class_index[c] for c in y])
    eep = (cond[rows] * theta).sum(axis=1)   # expected empirical prediction
    return float(np.log(np.maximum(eep, 1e-12)).mean())


class LEEP(TransferabilityEstimator):
    """LEEP estimator; requires the model's source-class probabilities."""

    name = "leep"
    needs_source_probs = True

    def score(self, features, labels, source_probs=None) -> float:
        if source_probs is None:
            raise ValueError("LEEP requires source_probs (softmax outputs)")
        return leep_score(source_probs, labels)
