"""H-score (Bao et al., ICIP 2019) — a fast mutual-information surrogate.

    H(F) = tr( cov(F)^+ · cov_between(F) )

where ``cov_between`` is the covariance of the class-conditional feature
means (each sample replaced by its class mean).  Larger H-scores indicate
features with high inter-class variance relative to overall redundancy.
"""

from __future__ import annotations

import numpy as np

from repro.transferability.base import TransferabilityEstimator, validate_inputs

__all__ = ["HScore", "h_score"]


def h_score(features: np.ndarray, labels: np.ndarray) -> float:
    """Compute the H-score of features w.r.t. integer labels."""
    f, y = validate_inputs(features, labels)
    f = f - f.mean(axis=0, keepdims=True)
    cov = np.cov(f, rowvar=False, bias=True)

    class_mean_per_sample = np.empty_like(f)
    for c in np.unique(y):
        mask = y == c
        class_mean_per_sample[mask] = f[mask].mean(axis=0)
    cov_between = np.cov(class_mean_per_sample, rowvar=False, bias=True)

    pinv = np.linalg.pinv(cov, rcond=1e-10)
    return float(np.trace(pinv @ cov_between))


class HScore(TransferabilityEstimator):
    """H-score estimator (see :func:`h_score`)."""

    name = "hscore"

    def score(self, features, labels, source_probs=None) -> float:
        return h_score(features, labels)
