"""Transferability estimators (feature-based model selection, §II-A).

Implemented from their original papers:

- :class:`LogME` — log maximum evidence (You et al., 2021);
- :class:`LEEP` — log expected empirical prediction (Nguyen et al., 2020);
- :class:`NCE` — negative conditional entropy (Tran et al., 2019);
- :class:`PARC` — pairwise representation comparison (Bolya et al., 2021);
- :class:`TransRate` — coding-rate difference (Huang et al., 2022);
- :class:`HScore` — H-score (Bao et al., 2019).
"""

from repro.transferability.base import TransferabilityEstimator, validate_inputs
from repro.transferability.logme import LogME, log_maximum_evidence
from repro.transferability.leep import LEEP, leep_score
from repro.transferability.nce import NCE, nce_score
from repro.transferability.parc import PARC, parc_score
from repro.transferability.transrate import TransRate, transrate_score, coding_rate
from repro.transferability.hscore import HScore, h_score
from repro.transferability.scoring import (
    ESTIMATORS,
    get_estimator,
    normalise_scores,
    score_model_on_dataset,
    score_zoo,
)

__all__ = [
    "TransferabilityEstimator",
    "validate_inputs",
    "LogME",
    "log_maximum_evidence",
    "LEEP",
    "leep_score",
    "NCE",
    "nce_score",
    "PARC",
    "parc_score",
    "TransRate",
    "transrate_score",
    "coding_rate",
    "HScore",
    "h_score",
    "ESTIMATORS",
    "get_estimator",
    "normalise_scores",
    "score_model_on_dataset",
    "score_zoo",
]
