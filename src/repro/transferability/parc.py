"""PARC — Pairwise Annotation Representation Comparison (Bolya et al., 2021).

PARC compares the *pairwise-distance structure* of the features with that
of the labels: compute the Pearson-correlation distance matrix between
sample features, the same between one-hot labels, and report the Spearman
correlation of their lower triangles (scaled to [-100, 100] in the
original paper; we keep the raw [-1, 1] correlation).
"""

from __future__ import annotations

import numpy as np

from repro.transferability.base import TransferabilityEstimator, validate_inputs
from repro.utils.stats import spearman_correlation

__all__ = ["PARC", "parc_score"]


def _pearson_distance_matrix(x: np.ndarray) -> np.ndarray:
    """1 - rowwise Pearson correlation; constant rows correlate as 0."""
    centered = x - x.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1)
    norms = np.where(norms == 0, 1.0, norms)
    normalised = centered / norms[:, None]
    corr = np.clip(normalised @ normalised.T, -1.0, 1.0)
    return 1.0 - corr


def parc_score(features: np.ndarray, labels: np.ndarray,
               max_samples: int = 500, seed: int = 0) -> float:
    """PARC score in [-1, 1]; subsamples to bound the O(n^2) cost."""
    f, y = validate_inputs(features, labels)
    n = len(y)
    if n > max_samples:
        idx = np.random.default_rng(seed).choice(n, size=max_samples,
                                                 replace=False)
        f, y = f[idx], y[idx]
        n = max_samples

    classes, y_idx = np.unique(y, return_inverse=True)
    onehot = np.eye(classes.size)[y_idx]

    dist_f = _pearson_distance_matrix(f)
    dist_y = _pearson_distance_matrix(onehot)
    tri = np.tril_indices(n, k=-1)
    return float(spearman_correlation(dist_y[tri], dist_f[tri]))


class PARC(TransferabilityEstimator):
    """PARC estimator (see :func:`parc_score`)."""

    name = "parc"

    def __init__(self, max_samples: int = 500, seed: int = 0):
        self.max_samples = max_samples
        self.seed = seed

    def score(self, features, labels, source_probs=None) -> float:
        return parc_score(features, labels, max_samples=self.max_samples,
                          seed=self.seed)
