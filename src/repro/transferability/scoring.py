"""Scoring zoo models on datasets with transferability estimators.

This is Step ③ of the TransferGraph pipeline (Fig. 5): run a forward pass
of each model on the target dataset, feed features (and, for source-label
methods, softmax outputs) to an estimator, and record the score in the
catalog so the graph builder can use it as an M-D edge weight.
"""

from __future__ import annotations

import numpy as np

from repro.transferability.base import TransferabilityEstimator
from repro.transferability.hscore import HScore
from repro.transferability.leep import LEEP
from repro.transferability.logme import LogME
from repro.transferability.nce import NCE
from repro.transferability.parc import PARC
from repro.transferability.transrate import TransRate

__all__ = ["ESTIMATORS", "get_estimator", "score_model_on_dataset",
           "score_zoo", "normalise_scores"]

ESTIMATORS: dict[str, type[TransferabilityEstimator]] = {
    cls.name: cls for cls in (LogME, LEEP, NCE, PARC, TransRate, HScore)
}


def get_estimator(name: str, **kwargs) -> TransferabilityEstimator:
    """Instantiate an estimator by registry name (e.g. ``"logme"``)."""
    try:
        return ESTIMATORS[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown estimator {name!r}; available: {sorted(ESTIMATORS)}"
        ) from None


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def score_model_on_dataset(zoo, model_id: str, dataset_name: str,
                           estimator: TransferabilityEstimator | str = "logme",
                           split: str = "train") -> float:
    """Forward pass + estimator score for one (model, dataset) pair."""
    if isinstance(estimator, str):
        estimator = get_estimator(estimator)
    dataset = zoo.dataset(dataset_name)
    features = zoo.features(model_id, dataset_name, split=split)
    labels = dataset.y_train if split == "train" else dataset.y_test

    source_probs = None
    if estimator.needs_source_probs:
        model = zoo.model(model_id)
        x = dataset.x_train if split == "train" else dataset.x_test
        source_probs = _softmax(model.logits(x))
    return estimator.score(features, labels, source_probs=source_probs)


def score_zoo(zoo, metric: str = "logme", targets: list[str] | None = None,
              record: bool = True) -> dict[tuple[str, str], float]:
    """Score every model on every target dataset; optionally record.

    Returns ``{(model_id, dataset): score}``.  With ``record=True`` the
    scores are written to ``zoo.catalog`` (transferability table), making
    them available as graph edges.
    """
    estimator = get_estimator(metric)
    targets = targets if targets is not None else zoo.target_names()
    scores: dict[tuple[str, str], float] = {}
    for dataset_name in targets:
        for model_id in zoo.model_ids():
            value = score_model_on_dataset(zoo, model_id, dataset_name, estimator)
            scores[(model_id, dataset_name)] = value
            if record:
                zoo.catalog.record_transferability(model_id, dataset_name,
                                                   metric, value)
    return scores


def normalise_scores(scores: np.ndarray) -> np.ndarray:
    """Min-max normalise scores to [0, 1] (constant input maps to 0.5).

    Graph edge weights must be comparable across estimators with very
    different ranges (LogME evidence vs LEEP log-likelihoods), so the
    graph builder normalises per (estimator, dataset) group.
    """
    s = np.asarray(scores, dtype=np.float64)
    lo, hi = s.min(), s.max()
    if hi - lo < 1e-12:
        return np.full_like(s, 0.5)
    return (s - lo) / (hi - lo)
