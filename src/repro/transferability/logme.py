"""LogME — Log of Maximum Evidence (You et al., ICML 2021).

LogME fits a Bayesian linear model from the pre-trained features F to each
one-hot label column and reports the (per-sample) log marginal evidence,
maximised over the prior/noise precisions (alpha, beta) by MacKay
fixed-point iteration.  It is the transferability score the paper uses for
its M-D transferability edges and for the LogME baseline.

Model per label column y (n-vector):

    y = F w + eps,   w ~ N(0, alpha^-1 I),  eps ~ N(0, beta^-1 I)

    log p(y | F, alpha, beta) =
        n/2 log beta + d/2 log alpha - n/2 log 2pi
        - 1/2 log|A| - beta/2 ||y - F m||^2 - alpha/2 m' m

with A = alpha I + beta F'F and m = beta A^-1 F' y.  Working in the
eigenbasis of F'F makes each iteration O(d).
"""

from __future__ import annotations

import numpy as np

from repro.transferability.base import TransferabilityEstimator, validate_inputs

__all__ = ["LogME", "log_maximum_evidence"]


def _evidence_for_column(y: np.ndarray, sigma: np.ndarray, z: np.ndarray,
                         y_sq: float, n: int, d: int, max_iter: int,
                         tol: float) -> float:
    """Maximised log evidence (per sample) for one label column.

    ``sigma`` — eigenvalues of F'F; ``z`` — V' F' y in that eigenbasis;
    ``y_sq`` — ||y||².
    """
    alpha, beta = 1.0, 1.0
    for _ in range(max_iter):
        t = alpha / beta
        m = z / (sigma + t)                  # = beta * z / (alpha + beta*sigma)
        m_sq = float((m**2).sum())
        residual = float(y_sq - (z**2 * (sigma + 2 * t) / (sigma + t) ** 2).sum())
        residual = max(residual, 1e-12)
        gamma = float((sigma / (sigma + t)).sum())
        alpha_new = gamma / max(m_sq, 1e-12)
        beta_new = (n - gamma) / residual
        if (abs(alpha_new - alpha) / max(alpha, 1e-12) < tol
                and abs(beta_new - beta) / max(beta, 1e-12) < tol):
            alpha, beta = alpha_new, beta_new
            break
        alpha, beta = alpha_new, beta_new

    t = alpha / beta
    m = z / (sigma + t)
    m_sq = float((m**2).sum())
    residual = max(float(y_sq - (z**2 * (sigma + 2 * t) / (sigma + t) ** 2).sum()),
                   1e-12)
    log_det_a = float(np.log(alpha + beta * sigma).sum()) \
        + (d - sigma.size) * np.log(alpha)
    evidence = (n / 2.0 * np.log(beta)
                + d / 2.0 * np.log(alpha)
                - n / 2.0 * np.log(2 * np.pi)
                - 0.5 * log_det_a
                - beta / 2.0 * residual
                - alpha / 2.0 * m_sq)
    return evidence / n


def log_maximum_evidence(features: np.ndarray, labels: np.ndarray,
                         max_iter: int = 50, tol: float = 1e-5) -> float:
    """LogME score: mean per-class maximised log evidence per sample."""
    f, y = validate_inputs(features, labels)
    n, d = f.shape
    # Eigen-decompose F'F once; reused by every label column.
    gram = f.T @ f
    sigma, v = np.linalg.eigh(gram)
    sigma = np.clip(sigma, 0.0, None)

    classes = np.unique(y)
    evidences = []
    for c in classes:
        y_col = (y == c).astype(np.float64)
        # Residual identity assumes centred ||y||²; use raw column as LogME does.
        z = v.T @ (f.T @ y_col)
        evidences.append(_evidence_for_column(
            y_col, sigma, z, float((y_col**2).sum()), n, d, max_iter, tol))
    return float(np.mean(evidences))


class LogME(TransferabilityEstimator):
    """LogME estimator (see :func:`log_maximum_evidence`)."""

    name = "logme"

    def __init__(self, max_iter: int = 50, tol: float = 1e-5):
        self.max_iter = max_iter
        self.tol = tol

    def score(self, features, labels, source_probs=None) -> float:
        return log_maximum_evidence(features, labels,
                                    max_iter=self.max_iter, tol=self.tol)
