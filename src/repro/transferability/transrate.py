"""TransRate (Huang et al., ICML 2022) — "frustratingly easy" estimation.

TransRate measures the mutual information between features and labels via
coding rates:

    R(Z, eps)   = 1/2 · logdet( I_d + d/(n·eps²) · Zᵀ Z )
    TransRate   = R(Z, eps) - Σ_c (n_c/n) · R(Z_c, eps)

where Z are (centred) features and Z_c the features of class c.  Higher
is better: features that are globally diverse but compact within each
class are easy to classify.
"""

from __future__ import annotations

import numpy as np

from repro.transferability.base import TransferabilityEstimator, validate_inputs

__all__ = ["TransRate", "transrate_score", "coding_rate"]


def coding_rate(z: np.ndarray, eps: float = 1e-2) -> float:
    """Rate-distortion coding rate of (already centred) features."""
    n, d = z.shape
    if n == 0:
        return 0.0
    gram = z.T @ z
    scaled = np.eye(d) + (d / (n * eps**2)) * gram
    sign, logdet = np.linalg.slogdet(scaled)
    if sign <= 0:
        raise ValueError("coding-rate matrix is not positive definite")
    return 0.5 * float(logdet)


def transrate_score(features: np.ndarray, labels: np.ndarray,
                    eps: float = 1e-2) -> float:
    """TransRate: whole-set coding rate minus within-class coding rates."""
    f, y = validate_inputs(features, labels)
    f = f - f.mean(axis=0, keepdims=True)
    n = len(y)
    total = coding_rate(f, eps)
    within = 0.0
    for c in np.unique(y):
        mask = y == c
        within += mask.sum() / n * coding_rate(f[mask], eps)
    return float(total - within)


class TransRate(TransferabilityEstimator):
    """TransRate estimator (see :func:`transrate_score`)."""

    name = "transrate"

    def __init__(self, eps: float = 1e-2):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = eps

    def score(self, features, labels, source_probs=None) -> float:
        return transrate_score(features, labels, eps=self.eps)
