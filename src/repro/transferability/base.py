"""Common interface for transferability estimators (§II-A, feature-based).

Every estimator maps (features extracted by a pre-trained model on the
target dataset, target labels) — and for source-label-based estimators the
model's source-class probabilities — to a scalar score.  Higher scores
predict better fine-tuning performance.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_2d, check_finite, check_same_length

__all__ = ["TransferabilityEstimator", "validate_inputs"]


def validate_inputs(features: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Standard shape/sanity validation used by every estimator."""
    f = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels)
    check_2d(f, "features")
    check_1d(y, "labels")
    check_same_length(f, y, "features", "labels")
    check_finite(f, "features")
    if len(np.unique(y)) < 2:
        raise ValueError("labels must contain at least two classes")
    return f, y


class TransferabilityEstimator:
    """Base class.  Subclasses implement :meth:`score`."""

    #: registry name, e.g. ``"logme"``
    name: str = "base"
    #: whether :meth:`score` requires source-classifier probabilities
    needs_source_probs: bool = False

    def score(self, features: np.ndarray, labels: np.ndarray,
              source_probs: np.ndarray | None = None) -> float:
        raise NotImplementedError  # pragma: no cover

    def __call__(self, features, labels, source_probs=None) -> float:
        return self.score(features, labels, source_probs=source_probs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
