"""NCE — Negative Conditional Entropy (Tran et al., ICCV 2019).

NCE measures transferability as the negative conditional entropy of the
target label given the source model's hard pseudo-label:

    NCE = -H(Y | Z) = Σ_{y,z} P̂(y,z) log ( P̂(y,z) / P̂(z) )

Always ≤ 0; equals 0 when the source predictions determine the target
labels exactly.
"""

from __future__ import annotations

import numpy as np

from repro.transferability.base import TransferabilityEstimator
from repro.utils.validation import check_1d, check_same_length

__all__ = ["NCE", "nce_score"]


def nce_score(source_labels: np.ndarray, target_labels: np.ndarray) -> float:
    """Negative conditional entropy between hard label assignments."""
    z = np.asarray(source_labels)
    y = np.asarray(target_labels)
    check_1d(z, "source_labels")
    check_1d(y, "target_labels")
    check_same_length(z, y, "source_labels", "target_labels")
    n = len(y)
    if n == 0:
        raise ValueError("empty label arrays")

    z_values, z_idx = np.unique(z, return_inverse=True)
    y_values, y_idx = np.unique(y, return_inverse=True)
    joint = np.zeros((y_values.size, z_values.size))
    np.add.at(joint, (y_idx, z_idx), 1.0)
    joint /= n
    p_z = joint.sum(axis=0)

    mask = joint > 0
    ratios = joint[mask] / np.take(p_z, np.nonzero(mask)[1])
    return float((joint[mask] * np.log(ratios)).sum())


class NCE(TransferabilityEstimator):
    """NCE estimator; uses argmax of the source probabilities."""

    name = "nce"
    needs_source_probs = True

    def score(self, features, labels, source_probs=None) -> float:
        if source_probs is None:
            raise ValueError("NCE requires source_probs to derive pseudo-labels")
        pseudo = np.asarray(source_probs).argmax(axis=1)
        return nce_score(pseudo, np.asarray(labels))
