"""Async request router: single-flight fit coalescing over SelectionService.

:class:`SelectionService` answers warm queries in a millisecond but a
cold query fits a whole pipeline, and the serial facade makes N
concurrent cold queries for one target pay N fits.
:class:`AsyncSelectionRouter` fronts one service with an asyncio event
loop and fixes exactly that:

- **single-flight coalescing** — concurrent misses for the same
  ``(target, config_fp)`` key await one in-flight fit future; the fit
  runs once no matter how many clients asked for it;
- **thread-pool offload** — fits/revives and predicts are CPU-bound, so
  they run in executors while the event loop keeps accepting requests;
  distinct cold targets fit in parallel (derived-score recording into
  the shared zoo catalog is lock-guarded — see
  :attr:`repro.store.ZooCatalog.lock` — so ``fit_workers`` defaults
  above one; the fit job also runs one warm-up predict so the predict
  pool never touches a pipeline's lazy normalisation state);
- **process fit plane** — ``fit_executor="process"`` ships each cold fit
  to a worker *process* (:mod:`repro.serving.fit_plane`) for true
  multi-core fitting: pure-Python fit stages (walks, SGNS) hold the GIL,
  so the thread pool alone serves cold traffic at roughly one core.
  The fit threads then merely block on worker futures — queueing,
  coalescing, shedding, and stats behave identically in both modes;
- **bounded cold-fit queue** — at most ``max_pending_fits`` cold fits
  may be admitted (in flight or waiting for a fit worker); an overflow
  either raises :class:`QueueFullError` with an adaptive
  ``retry_after_s`` hint derived from the stats-window p95 fit latency
  (``overflow="reject"``, the default) or waits for capacity
  (``overflow="wait"``);
- **probabilistic early shedding** — with ``shed_start < 1``, reject
  mode starts shedding *before* the hard cliff: once queue depth
  crosses ``shed_start × max_pending_fits``, requests are shed with
  probability rising linearly from 0 to 1 at the cliff, so saturation
  degrades smoothly instead of flipping between all-accept and
  all-reject;
- **router stats** — coalesced-request count, rejections, peak queue
  depth, and per-stage latencies (queue wait / fit / predict), merged
  with the service's counters by :meth:`AsyncSelectionRouter.stats`.

All catalog-mutating work happens on the fit workers: the fit job warms
each fresh pipeline with one predict, materialising the target's lazy
transferability normalisation before any predict-pool thread sees the
pipeline.  Per-pipeline predict calls are additionally serialised with a
per-key thread lock as a safety net; predicts for *different* targets
run concurrently.

The router also answers typed protocol requests
(:meth:`AsyncSelectionRouter.handle`), sharing the response constructors
with :meth:`SelectionService.handle` so the async and serial paths
cannot diverge.
"""

from __future__ import annotations

import asyncio
import math
import os
import random
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.obs import graft_spans, run_in_context, set_outcome, span
from repro.serving.protocol import (
    RankRequest,
    RankResponse,
    ScoreBatchRequest,
    ScoreBatchResponse,
)
from repro.serving.service import SelectionService, ServiceStats

__all__ = [
    "AsyncSelectionRouter",
    "RouterStats",
    "QueueFullError",
    "ROUTER_LATENCY_WINDOW",
]

#: rolling window of per-stage latencies kept for percentile reporting
ROUTER_LATENCY_WINDOW = 10_000

#: most-recent fit samples feeding the adaptive retry hint's p95
_HINT_SAMPLE_WINDOW = 1_024

_COUNTER_FIELDS = (
    "requests",
    "coalesced",
    "rejections",
    "early_sheds",
    "failed_waits",
    "cold_fits",
    "queue_waits",
    "fits_timed",
    "predicts_timed",
)

#: total-appended counter paired with each latency deque, so ``since``
#: stays correct after the bounded deque wraps (same idea as
#: ``ServiceStats.since`` slicing by the queries counter)
_STAGE_COUNTERS = {
    "queue_wait_ms": "queue_waits",
    "fit_ms": "fits_timed",
    "predict_ms": "predicts_timed",
}


class QueueFullError(RuntimeError):
    """The bounded cold-fit queue is full; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass
class RouterStats:
    """Counters and per-stage latencies accumulated by the router."""

    requests: int = 0
    #: requests that awaited another request's in-flight fit
    coalesced: int = 0
    #: requests shed because the cold-fit queue was full
    rejections: int = 0
    #: rejections that were probabilistic early sheds (queue not yet at
    #: the hard limit); always counted inside ``rejections`` too
    early_sheds: int = 0
    #: coalesced waiters whose originator's fit *failed* (not shed) —
    #: their outcome merges to "error", not "coalesced"
    failed_waits: int = 0
    #: cold fits the router admitted (== originators, not waiters)
    cold_fits: int = 0
    #: highest number of simultaneously pending cold fits observed
    peak_pending_fits: int = 0
    #: lifetime append counts for the three latency deques below
    queue_waits: int = 0
    fits_timed: int = 0
    predicts_timed: int = 0
    queue_wait_ms: deque = field(
        default_factory=lambda: deque(maxlen=ROUTER_LATENCY_WINDOW), repr=False
    )
    fit_ms: deque = field(
        default_factory=lambda: deque(maxlen=ROUTER_LATENCY_WINDOW), repr=False
    )
    predict_ms: deque = field(
        default_factory=lambda: deque(maxlen=ROUTER_LATENCY_WINDOW), repr=False
    )

    def record_latency(self, stage: str, ms: float) -> None:
        """Append one ``stage`` sample ('queue_wait_ms'/'fit_ms'/...)."""
        getattr(self, stage).append(ms)
        counter = _STAGE_COUNTERS[stage]
        setattr(self, counter, getattr(self, counter) + 1)

    def copy(self) -> "RouterStats":
        out = RouterStats(**{f: getattr(self, f) for f in _COUNTER_FIELDS})
        out.peak_pending_fits = self.peak_pending_fits
        for name in _STAGE_COUNTERS:
            getattr(out, name).extend(getattr(self, name))
        return out

    def since(self, earlier: "RouterStats") -> "RouterStats":
        """Counters/latencies accumulated after the ``earlier`` snapshot.

        Each stage's fresh samples are sliced by its append counter (not
        deque lengths, which stop growing once the window wraps);
        ``peak_pending_fits`` is a high-water mark, not a counter, so the
        delta carries the current peak unchanged.
        """
        out = RouterStats(
            **{f: getattr(self, f) - getattr(earlier, f) for f in _COUNTER_FIELDS}
        )
        out.peak_pending_fits = self.peak_pending_fits
        for name, counter in _STAGE_COUNTERS.items():
            fresh = getattr(out, counter)
            if fresh > 0:
                getattr(out, name).extend(list(getattr(self, name))[-fresh:])
        return out

    def merge(self, other: "RouterStats") -> "RouterStats":
        """Pool another snapshot in (fleet aggregation over namespaces):
        counters sum, stage windows extend, the peak stays a max."""
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.peak_pending_fits = max(self.peak_pending_fits, other.peak_pending_fits)
        for name in _STAGE_COUNTERS:
            getattr(self, name).extend(getattr(other, name))
        return self

    @staticmethod
    def _percentile(values, q: float) -> float:
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values), q))

    @staticmethod
    def _percentiles(values: deque, qs: tuple) -> tuple:
        """Several percentiles of one window in a single pass."""
        if not values:
            return tuple(0.0 for _ in qs)
        return tuple(float(v) for v in np.percentile(np.asarray(values), qs))

    def latency_summary(self) -> dict[str, float]:
        """The per-stage latency slice of :meth:`summary` alone.

        Compare responses embed this per strategy (merged with the
        service's per-query window), so it stays a flat name->float map
        and batches each stage's percentiles into one
        ``np.percentile`` call.
        """
        fit_p50, fit_p95 = self._percentiles(self.fit_ms, (50, 95))
        predict_p50, predict_p95 = self._percentiles(self.predict_ms, (50, 95))
        return {
            "queue_wait_p95_ms": self._percentile(self.queue_wait_ms, 95),
            "fit_p50_ms": fit_p50,
            "fit_p95_ms": fit_p95,
            "predict_p50_ms": predict_p50,
            "predict_p95_ms": predict_p95,
        }

    def summary(self) -> dict[str, float]:
        return {
            "router_requests": self.requests,
            "coalesced": self.coalesced,
            "rejections": self.rejections,
            "early_sheds": self.early_sheds,
            "failed_waits": self.failed_waits,
            "cold_fits": self.cold_fits,
            "peak_pending_fits": self.peak_pending_fits,
            **self.latency_summary(),
        }


def _retrieve_exception(future: asyncio.Future) -> None:
    # A failed fit with zero coalesced waiters would otherwise log
    # "exception was never retrieved" — the originator re-raises its own
    # copy, so marking the future's copy retrieved loses nothing.
    if not future.cancelled():
        future.exception()


class AsyncSelectionRouter:
    """Asyncio front-end over one :class:`SelectionService`.

    Parameters
    ----------
    service:
        The (cold or warm) service to route to.  The router is the
        concurrency front door; don't drive the same service's
        synchronous API from other threads at the same time.
    max_pending_fits:
        Bound on simultaneously admitted cold fits (in flight or queued
        for a fit worker).  Coalesced waiters don't count: they hold no
        queue slot, they only await the originator's future.
    overflow:
        ``"reject"`` sheds the request with :class:`QueueFullError`
        (carrying a ``retry_after_s`` hint); ``"wait"`` parks it until a
        slot frees up.
    retry_after_s:
        Floor for the retry hint; the adaptive hint is the stats-window
        p95 fit latency times the queue-drain rounds ahead of the shed
        request (pending fits / fit workers).
    shed_start:
        Fraction of ``max_pending_fits`` at which probabilistic early
        shedding begins (reject mode only).  Below it nothing is shed;
        from there the shed probability rises linearly, reaching 1 at
        the hard limit.  The default ``1.0`` disables early shedding
        (the pre-existing hard-cliff behaviour).
    shed_rng:
        Zero-arg callable returning uniforms in [0, 1) for the shedding
        draw; defaults to :func:`random.random`.  Tests inject a
        deterministic sequence here.
    fit_workers:
        Cold-fit parallelism: threads (``fit_executor="thread"``) or
        worker processes (``"process"``).  Distinct cold targets fit in
        parallel: derived similarity/transferability recording into the
        shared zoo catalog is serialised by the catalog's own lock
        (thread mode) or stays process-local and folds back through the
        packed artifact (process mode).
    predict_workers:
        Threads answering warm predicts (safe to raise: per-key locks
        already serialise same-pipeline predicts).
    fit_executor:
        ``"thread"`` fits in the router's thread pool (the default);
        ``"process"`` ships cold fits to a spawn-based
        ``ProcessPoolExecutor`` (see :mod:`repro.serving.fit_plane`) for
        true CPU parallelism; ``"socket"`` dispatches them through a
        shared :class:`~repro.fleet.FleetCoordinator` (the ``fleet``
        parameter) to remote ``repro fit-worker`` daemons.  In every
        remote mode the worker returns the strategy-packed artifact and
        the parent unpacks and writes it through to the registry
        byte-identically to the thread path.  ``None`` reads the
        ``REPRO_FIT_EXECUTOR`` environment variable, defaulting to
        ``"thread"``.
    fit_timeout_s:
        Process/socket modes: a fit exceeding this many seconds raises
        :class:`~repro.fleet.errors.FitTimeoutError`, shedding its
        coalesced group.  ``None`` (default) never times out.
    fleet:
        The :class:`~repro.fleet.FleetCoordinator` socket-mode fits
        dispatch through.  Required for ``fit_executor="socket"``; the
        coordinator is shared (gateway-owned), so :meth:`close` leaves
        it running.
    """

    def __init__(
        self,
        service: SelectionService,
        *,
        max_pending_fits: int = 8,
        overflow: str = "reject",
        retry_after_s: float = 0.5,
        fit_workers: int = 2,
        predict_workers: int = 4,
        shed_start: float = 1.0,
        shed_rng=None,
        fit_executor: str | None = None,
        fit_timeout_s: float | None = None,
        fleet=None,
    ):
        if max_pending_fits < 1:
            raise ValueError("max_pending_fits must be >= 1")
        if overflow not in ("reject", "wait"):
            raise ValueError(f"overflow must be 'reject' or 'wait', got {overflow!r}")
        if fit_workers < 1 or predict_workers < 1:
            raise ValueError("worker counts must be >= 1")
        if not (0.0 <= shed_start <= 1.0):
            raise ValueError("shed_start must be in [0, 1]")
        if fit_executor is None:
            fit_executor = os.environ.get("REPRO_FIT_EXECUTOR", "thread")
        if fit_executor not in ("thread", "process", "socket"):
            raise ValueError(
                f"fit_executor must be 'thread', 'process', or 'socket', "
                f"got {fit_executor!r}"
            )
        if fit_executor == "socket" and fleet is None:
            raise ValueError(
                "fit_executor='socket' needs a FleetCoordinator (fleet=...)"
            )
        self.service = service
        self.max_pending_fits = max_pending_fits
        self.overflow = overflow
        self.retry_after_s = retry_after_s
        self.shed_start = shed_start
        self._shed_rng = shed_rng if shed_rng is not None else random.random
        self.fit_workers = fit_workers
        self.fit_executor = fit_executor
        self._fit_timeout_s = fit_timeout_s
        self._fit_plane = None
        #: socket planes are shared (gateway-owned); close() must not
        #: shut a coordinator other routers still dispatch through
        self._owns_fit_plane = False
        if fit_executor == "process":
            from repro.serving.fit_plane import ProcessFitExecutor

            self._fit_plane = ProcessFitExecutor(
                workers=fit_workers, fit_timeout_s=fit_timeout_s
            )
            self._owns_fit_plane = True
        elif fit_executor == "socket":
            self._fit_plane = fleet
        self._fit_pool = ThreadPoolExecutor(
            max_workers=fit_workers, thread_name_prefix="router-fit"
        )
        self._predict_pool = ThreadPoolExecutor(
            max_workers=predict_workers, thread_name_prefix="router-predict"
        )
        self._stats = RouterStats()  # guarded by: self._stats_lock
        self._stats_lock = threading.Lock()
        #: (fits_timed generation, p95 ms) — see _retry_after_hint
        self._p95_cache: tuple[int, float] = (-1, 0.0)
        #: in-flight fit futures keyed by (target, config_fp); mutated
        #: only from the event-loop thread, so no lock is needed
        self._inflight: dict[tuple[str, str], asyncio.Future] = {}
        self._pending_fits = 0
        #: serialises predicts on one fitted pipeline (see module doc);
        #: bounded by the service cache: the eviction listener below
        #: drops a key's lock with its cache entry, so a long-running
        #: server over millions of targets cannot leak locks
        # guarded by: self._predict_locks_guard
        self._predict_locks: dict[tuple[str, str], threading.Lock] = {}
        self._predict_locks_guard = threading.Lock()
        service.add_eviction_listener(self._drop_predict_locks)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._capacity: asyncio.Condition | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # loop binding
    # ------------------------------------------------------------------ #
    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        """The running loop; rebinds loop-local state across asyncio.runs."""
        if self._closed:
            raise RuntimeError("router is closed")
        loop = asyncio.get_running_loop()
        if loop is not self._loop:
            if self._inflight:
                raise RuntimeError(
                    "router used from a new event loop while fits from a "
                    "previous loop are still in flight"
                )
            self._loop = loop
            self._capacity = asyncio.Condition()
        return loop

    # ------------------------------------------------------------------ #
    # single-flight fit acquisition
    # ------------------------------------------------------------------ #
    def _retry_after_hint(self) -> float:
        """Adaptive backpressure: when will a retry plausibly be admitted?

        The stats-window p95 fit latency (not the mean: shed clients who
        return too early are shed again, so the hint must cover slow
        fits) times the number of queue-drain rounds ahead of the shed
        request — pending fits spread over the fit workers.  Falls back
        to the configured floor until the window has samples.

        The p95 is cached per fit-count generation: a rejection storm —
        exactly when this path is hot — recomputes nothing and holds
        ``_stats_lock`` only long enough to read one counter.  Only the
        event-loop thread calls this, so the cache needs no lock.
        """
        with self._stats_lock:
            generation = self._stats.fits_timed
            samples = (
                list(self._stats.fit_ms)[-_HINT_SAMPLE_WINDOW:]
                if generation != self._p95_cache[0]
                else None
            )
        if samples is not None:  # percentile math outside the lock
            self._p95_cache = (generation, RouterStats._percentile(samples, 95))
        p95_ms = self._p95_cache[1]
        if p95_ms <= 0.0:
            return self.retry_after_s
        drain_rounds = math.ceil((self._pending_fits or 1) / self.fit_workers)
        return max(self.retry_after_s, (p95_ms / 1e3) * drain_rounds)

    def _shed_probability(self) -> float:
        """Early-shed probability at the current queue depth.

        Zero up to ``shed_start × max_pending_fits``, then a linear ramp
        to 1 at the hard limit (where the cliff takes over anyway).
        """
        if self.shed_start >= 1.0:
            return 0.0
        start = self.shed_start * self.max_pending_fits
        depth = self._pending_fits
        if depth <= start:
            return 0.0
        return (depth - start) / (self.max_pending_fits - start)

    async def _admit_cold_fit(self, target: str, overflow: str) -> None:
        """Take one cold-fit queue slot or shed the request."""
        if self._pending_fits >= self.max_pending_fits:
            if overflow == "reject":
                hint = self._retry_after_hint()
                with self._stats_lock:
                    self._stats.rejections += 1
                set_outcome("shed")
                raise QueueFullError(
                    f"cold-fit queue full ({self._pending_fits} pending, "
                    f"limit {self.max_pending_fits}); target {target!r} "
                    f"shed — retry in {hint:.2f}s",
                    retry_after_s=hint,
                )
            async with self._capacity:
                await self._capacity.wait_for(
                    lambda: self._pending_fits < self.max_pending_fits
                )
        elif overflow == "reject":
            probability = self._shed_probability()
            if probability > 0.0 and self._shed_rng() < probability:
                hint = self._retry_after_hint()
                with self._stats_lock:
                    self._stats.rejections += 1
                    self._stats.early_sheds += 1
                set_outcome("shed")
                raise QueueFullError(
                    f"cold-fit queue deepening ({self._pending_fits} of "
                    f"{self.max_pending_fits} pending); target {target!r} "
                    f"shed early (p={probability:.2f}) — retry in "
                    f"{hint:.2f}s",
                    retry_after_s=hint,
                )
        self._pending_fits += 1
        with self._stats_lock:
            self._stats.cold_fits += 1
            self._stats.peak_pending_fits = max(
                self._stats.peak_pending_fits, self._pending_fits
            )

    async def _release_cold_fit(self) -> None:
        self._pending_fits -= 1
        async with self._capacity:
            self._capacity.notify_all()

    def _remote_fit(self, strategy, zoo, target: str):
        """Process/socket-mode fit: block a fit thread on a remote worker.

        The worker — a spawn-pool process or a fleet daemon — ships back
        ``(meta, arrays, spans)``; the child's fit-stage spans are
        grafted onto the live request trace here (this thread carries
        the request context via :func:`repro.obs.run_in_context`) and
        the packed payload is returned for
        :meth:`SelectionService.load_or_fit` to unpack and write
        through.
        """
        meta, arrays, spans = self._fit_plane.submit_fit(
            strategy, zoo, target, timeout_s=self._fit_timeout_s
        )
        graft_spans(spans)
        return meta, arrays

    def _fit_job(self, target: str):
        """Runs on a fit worker: acquire the pipeline, warm its lazy state.

        In thread mode the throwaway predict materialises the target's
        transferability normalisation, which records scores into the
        *shared* zoo catalog on first use.  Doing it here keeps fit
        workers the only catalog writers (their derived-score recording
        is serialised by ``ZooCatalog.lock``); the predict pool then
        never mutates shared state.  Costs one extra predict per cold
        fit — microscopic next to the fit itself.  In process mode the
        worker already warmed the pipeline before packing (the state
        ships inside the artifact), so the predict is a pure read kept
        for path uniformity.
        """
        remote = self._remote_fit if self._fit_plane is not None else None
        fitted = self.service.load_or_fit(target, remote_fit=remote)
        fitted.predict(self.service.zoo.model_ids())
        return fitted

    async def _ensure_fitted(self, target: str, overflow: str | None = None):
        """Fitted pipeline for ``target`` with single-flight coalescing.

        Exactly one execution of :meth:`SelectionService.load_or_fit` per
        (target, config fingerprint) is in flight at any moment; every
        concurrent request for that key awaits the same future.
        """
        loop = self._bind_loop()
        cached = self.service.cache_get(target)  # fast; counts hit/miss
        if cached is not None:
            return cached

        key = (target, self.service.config_fp)
        inflight = self._inflight.get(key)
        if inflight is not None:
            waited = time.perf_counter()
            with self._stats_lock:
                self._stats.coalesced += 1
            set_outcome("coalesced")
            try:
                # shield: cancelling one waiter must not cancel the
                # future every other participant (and the originator's
                # set_result) depends on.
                with span("queue.coalesced_wait"):
                    fitted = await asyncio.shield(inflight)
            except QueueFullError:
                # The originator was shed while this request waited on
                # it; that sheds the whole coalesced group.
                with self._stats_lock:
                    self._stats.rejections += 1
                set_outcome("shed")
                raise
            except BaseException:
                # Any other failure of the *originator's* fit (a fit
                # exception, a fit-plane crash/timeout, a cancelled
                # originator) also fails every waiter — count it and
                # merge the outcome to "error" instead of leaving the
                # trace claiming a successful coalesced wait.  A waiter
                # cancelled in its own right (future still pending)
                # stays out of the counter: nothing failed group-wide.
                if (
                    inflight.done()
                    and not inflight.cancelled()
                    and inflight.exception() is not None
                ):
                    with self._stats_lock:
                        self._stats.failed_waits += 1
                    set_outcome("error")
                raise
            with self._stats_lock:
                self._stats.record_latency(
                    "queue_wait_ms", (time.perf_counter() - waited) * 1e3
                )
            return fitted

        # Register the future BEFORE waiting for queue capacity: admission
        # may suspend (overflow="wait"), and any same-key request arriving
        # during that suspension must coalesce, not start a second fit.
        future = loop.create_future()
        future.add_done_callback(_retrieve_exception)
        self._inflight[key] = future
        admitted = False
        try:
            await self._admit_cold_fit(target, overflow or self.overflow)
            admitted = True
            started = time.perf_counter()
            # run_in_context: propagate the request's trace onto the fit
            # worker so fit.* spans land on the originating request
            fitted = await loop.run_in_executor(
                self._fit_pool, run_in_context(self._fit_job, target)
            )
        except BaseException as exc:
            # A cancelled originator sheds the whole coalesced group
            # (waiters see the CancelledError; a retry hits the cache if
            # the executor fit still completed).
            if not future.done():
                future.set_exception(exc)
            raise
        else:
            if not future.done():
                future.set_result(fitted)
            with self._stats_lock:
                self._stats.record_latency(
                    "fit_ms", (time.perf_counter() - started) * 1e3
                )
            return fitted
        finally:
            del self._inflight[key]
            if admitted:
                await self._release_cold_fit()

    # ------------------------------------------------------------------ #
    # predict offload
    # ------------------------------------------------------------------ #
    def _predict_lock(self, target: str) -> threading.Lock:
        key = (target, self.service.config_fp)
        # guard: creation happens on the loop thread, but the service's
        # eviction listener removes keys from fit-worker threads
        with self._predict_locks_guard:
            lock = self._predict_locks.get(key)
            if lock is None:
                lock = self._predict_locks[key] = threading.Lock()
        return lock

    def _drop_predict_locks(self, keys) -> None:
        """Service eviction hook: a key's predict lock dies with its
        cache entry (an in-flight predict keeps its own reference)."""
        with self._predict_locks_guard:
            for key in keys:
                self._predict_locks.pop(key, None)

    async def _run_predict(self, target: str, fn):
        loop = self._bind_loop()
        lock = self._predict_lock(target)

        def locked():
            with lock:
                return fn()

        started = time.perf_counter()
        with span("predict"):
            result = await loop.run_in_executor(
                self._predict_pool, run_in_context(locked)
            )
        with self._stats_lock:
            self._stats.record_latency(
                "predict_ms", (time.perf_counter() - started) * 1e3
            )
        return result

    # ------------------------------------------------------------------ #
    # async entry points
    # ------------------------------------------------------------------ #
    async def rank(self, target: str, top_k: int | None = None
                   ) -> list[tuple[str, float]]:
        """Async :meth:`SelectionService.rank`; identical results."""
        started = time.perf_counter()
        with self._stats_lock:
            self._stats.requests += 1
        fitted = await self._ensure_fitted(target)
        model_ids = self.service.zoo.model_ids()
        ranking = await self._run_predict(target, lambda: fitted.rank(model_ids))
        self.service.record_query(started)
        return ranking if top_k is None else ranking[:top_k]

    async def score_batch(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Async :meth:`SelectionService.score_batch`; identical results.

        Distinct targets resolve their pipelines concurrently (each
        subject to coalescing) and predict in parallel.
        """
        started = time.perf_counter()
        with self._stats_lock:
            self._stats.requests += 1
        if not pairs:
            self.service.record_query(started)
            return np.empty(0)
        by_target: dict[str, list[int]] = {}
        for i, (_, target) in enumerate(pairs):
            by_target.setdefault(target, []).append(i)

        targets = list(by_target)
        fitteds = await asyncio.gather(*(self._ensure_fitted(t) for t in targets))

        async def predict(target, fitted, indices):
            models = [pairs[i][0] for i in indices]
            return await self._run_predict(target, lambda: fitted.predict(models))

        scores = await asyncio.gather(
            *(predict(t, f, by_target[t]) for t, f in zip(targets, fitteds))
        )
        out = np.empty(len(pairs))
        for target, target_scores in zip(targets, scores):
            out[by_target[target]] = target_scores
        self.service.record_query(started)
        return out

    async def handle(self, request: RankRequest | ScoreBatchRequest):
        """Async :meth:`SelectionService.handle`: protocol in, protocol out.

        Responses go through the same ``build`` constructors as the
        serial facade, so a ranking served through the router (and the
        HTTP front door above it) is byte-identical to one served
        in-process.
        """
        self.service.check_strategy(getattr(request, "strategy", None))
        if isinstance(request, RankRequest):
            return RankResponse.build(
                request, await self.rank(request.target, top_k=request.top_k)
            )
        if isinstance(request, ScoreBatchRequest):
            return ScoreBatchResponse.build(
                request, await self.score_batch(list(request.pairs))
            )
        raise TypeError(f"unsupported request type {type(request).__name__}")

    async def warmup(self, targets: list[str] | None = None) -> dict[str, float]:
        """Pre-fit pipelines concurrently; seconds spent per target.

        Warmup never sheds: capacity overflow waits instead of raising,
        and (like the serial facade) it doesn't count as query traffic.
        """
        if targets is None:
            targets = self.service.zoo.target_names()

        async def one(target: str) -> float:
            started = time.perf_counter()
            await self._ensure_fitted(target, overflow="wait")
            return time.perf_counter() - started

        timings = await asyncio.gather(*(one(t) for t in targets))
        return dict(zip(targets, timings))

    # ------------------------------------------------------------------ #
    # stats + lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, float]:
        """Service counters merged with router-level counters/latencies."""
        return {**self.service.stats(), **self.router_stats().summary()}

    def router_stats(self) -> RouterStats:
        """A copy of the raw router counters (diffable via ``since``)."""
        with self._stats_lock:
            return self._stats.copy()

    def stats_snapshot(self) -> tuple[ServiceStats, RouterStats]:
        """Paired (service, router) snapshots, e.g. to diff a replay."""
        return self.service.stats_snapshot(), self.router_stats()

    def latency_summary(self) -> dict[str, float]:
        """Live latency percentiles: the service's per-query window
        merged with the router's per-stage windows.  This is what a
        ``/v1/compare`` response reports per strategy — summarised under
        the stats locks directly, not from full snapshot copies (the
        windows hold up to 10k/100k samples; a fan-out would otherwise
        copy all of them once per strategy per request)."""
        with self._stats_lock:
            router_part = self._stats.latency_summary()
        return {**self.service.latency_summary(), **router_part}

    def fit_cost_summary(self) -> dict[str, float]:
        """Measured cold-fit cost: rolling-window fit-latency percentiles.

        This is the number the strategy's declared ``fit_weight``
        approximates; ``/v1/stats`` and healthz expose it per strategy
        so budget tuning can read measured cost instead of the declared
        proxy (ROADMAP item 5).
        """
        with self._stats_lock:
            p50, p95 = RouterStats._percentiles(self._stats.fit_ms, (50, 95))
            fits = self._stats.fits_timed
        return {
            "fit_ms_p50": p50,
            "fit_ms_p95": p95,
            "fits_timed": float(fits),
        }

    @property
    def pending_fits(self) -> int:
        """Live cold-fit queue depth (exported as a metrics gauge)."""
        return self._pending_fits

    def prestart_fit_plane(self) -> int:
        """Ready the remote fit plane now (0 in thread mode).

        Process workers otherwise spawn lazily on the first cold fits,
        which would bill each of the first ``fit_workers`` requests for
        an interpreter start plus a zoo hydration on top of its fit;
        blocks until every worker is up with the zoo hydrated.  A
        shared socket plane has no pool to spawn — its prestart reports
        the fleet's live worker count instead.
        """
        if self._fit_plane is None:
            return 0
        return self._fit_plane.prestart(zoo=self.service.zoo)

    def close(self) -> None:
        """Shut the executors down; idempotent.

        A shared socket fit plane (the gateway's fleet coordinator) is
        left running — other routers may still dispatch through it, and
        its owner closes it.
        """
        if not self._closed:
            self._closed = True
            self._fit_pool.shutdown(wait=True)
            self._predict_pool.shutdown(wait=True)
            if self._fit_plane is not None and self._owns_fit_plane:
                self._fit_plane.close()

    async def __aenter__(self) -> "AsyncSelectionRouter":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()
