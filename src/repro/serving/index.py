"""SQLite-backed artifact index for :class:`~repro.serving.registry.ArtifactRegistry`.

One ``registry.db`` per registry root (the gateway gives every namespace
shard its own root, hence one DB per shard).  The index holds a single
``registry_index`` table — (strategy fingerprint, target) → artifact
path, byte size, meta mtime, last-hit timestamp — so lookups and GC are
keyed queries instead of directory walks.  The npz/JSON artifact bytes
themselves stay on disk; the index is pure bookkeeping.

The filesystem remains the source of truth: every index hit is verified
against ``meta.json`` before it is trusted (rows whose artifact vanished
out-of-band are dropped), and artifacts written behind the index's back
are adopted on first sight.  A deleted or corrupt ``registry.db`` is
therefore never fatal — it rebuilds from disk.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.store.schema import Column, Schema
from repro.store.sqlite import SQLiteStore, SQLiteTable

__all__ = ["RegistryIndex", "INDEX_DB_NAME"]

#: index database filename, created inside the registry root
INDEX_DB_NAME = "registry.db"

_INDEX_SCHEMA = Schema(
    name="registry_index",
    columns=[
        Column("strategy_fp", "str"),
        Column("target", "str"),
        Column("path", "str"),
        Column("size", "int"),
        Column("mtime", "float"),
        Column("last_hit", "float", required=False, default=0.0),
    ],
    primary_key=("strategy_fp", "target"),
)


class RegistryIndex:
    """Keyed artifact bookkeeping over a :class:`SQLiteStore`."""

    def __init__(self, db_path: str | Path):
        self.db_path = Path(db_path)
        self.store = SQLiteStore(self.db_path)
        self.table: SQLiteTable = self.store.table(_INDEX_SCHEMA)
        self.table.add_index("strategy_fp")

    # ------------------------------------------------------------------ #
    def record(self, strategy_fp: str, target: str, path: Path,
               size: int, mtime: float, last_hit: float | None = None) -> None:
        """Upsert one artifact row (``last_hit`` preserved unless given)."""
        if last_hit is None:
            prev = self.table.get_or_none(strategy_fp, target)
            last_hit = prev["last_hit"] if prev else 0.0
        self.table.insert(
            {"strategy_fp": strategy_fp, "target": target, "path": str(path),
             "size": int(size), "mtime": float(mtime),
             "last_hit": float(last_hit)},
            upsert=True,
        )

    def touch(self, strategy_fp: str, target: str,
              when: float | None = None) -> None:
        """Bump ``last_hit`` (no-op when the row is missing)."""
        row = self.table.get_or_none(strategy_fp, target)
        if row is None:
            return
        row["last_hit"] = time.time() if when is None else float(when)
        self.table.insert(row, upsert=True)

    def get(self, strategy_fp: str, target: str) -> dict | None:
        return self.table.get_or_none(strategy_fp, target)

    def rows(self, strategy_fp: str | None = None) -> list[dict]:
        if strategy_fp is None:
            return self.table.to_records()
        return self.table.filter(strategy_fp=strategy_fp)

    def drop(self, strategy_fp: str, target: str) -> None:
        if self.table.get_or_none(strategy_fp, target) is not None:
            self.table.delete(strategy_fp, target)

    def drop_fingerprint(self, strategy_fp: str) -> None:
        for row in self.table.filter(strategy_fp=strategy_fp):
            self.table.delete(row["strategy_fp"], row["target"])

    def fingerprints(self) -> list[str]:
        return self.table.distinct("strategy_fp")

    def close(self) -> None:
        self.store.close()
