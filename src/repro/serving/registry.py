"""Versioned on-disk registry of fitted selection artifacts.

Layout (one namespace directory per strategy fingerprint)::

    <root>/<strategy_fp>/<target>/meta.json    fingerprints, states, names
    <root>/<strategy_fp>/<target>/arrays.npz   embeddings + model arrays

Artifacts are keyed by *strategy*: anything accepted by
:func:`repro.strategies.resolve_strategy` — a
:class:`~repro.strategies.SelectionStrategy`, a spec string, or (the
pre-redesign signature, still the common test idiom) a bare
:class:`~repro.core.TransferGraphConfig`, whose fingerprint is unchanged
so existing TG artifacts keep loading.  The strategy also owns the
artifact *format*: ``save`` packs through ``strategy.pack`` and ``load``
revives through ``strategy.unpack``, so a TG pipeline and a LogME score
table live behind the same registry API.

``arrays.npz`` is written before ``meta.json``, so a directory with a
``meta.json`` is always a complete artifact; a crash mid-save leaves at
worst an ignorable partial directory.  Every load validates the stored
fingerprints against the live strategy and catalog — a stale artifact
raises :class:`~repro.serving.artifacts.StaleArtifactError` instead of
being silently served.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from repro.strategies.artifacts import (
    ArtifactError,
    ArtifactNotFoundError,
)
from repro.strategies.fingerprint import catalog_fingerprint
from repro.strategies import resolve_strategy

__all__ = ["ArtifactRegistry"]

_META = "meta.json"
_ARRAYS = "arrays.npz"


class ArtifactRegistry:
    """Persists fitted artifacts keyed by (strategy fingerprint, target)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    def _path(self, strategy, target: str) -> Path:
        """THE layout rule (``strategy`` already resolved):
        ``<root>/<strategy fingerprint>/<target>``."""
        return self.root / strategy.fingerprint() / target

    def path_for(self, target: str, strategy) -> Path:
        return self._path(resolve_strategy(strategy), target)

    def contains(self, target: str, strategy) -> bool:
        return (self.path_for(target, strategy) / _META).exists()

    def targets(self, strategy) -> list[str]:
        """Targets with a complete artifact under this strategy."""
        namespace = self.root / resolve_strategy(strategy).fingerprint()
        if not namespace.is_dir():
            return []
        return sorted(p.name for p in namespace.iterdir() if (p / _META).exists())

    # ------------------------------------------------------------------ #
    def save(self, fitted, strategy, zoo) -> Path:
        """Write one artifact; returns its directory."""
        strategy = resolve_strategy(strategy)
        meta, arrays = strategy.pack(fitted, zoo)
        return self.save_packed(meta, arrays, strategy, fitted.target)

    def save_packed(self, meta: dict, arrays: dict, strategy, target: str) -> Path:
        """Write one *already-packed* artifact; returns its directory.

        The process fit plane persists the worker's exact ``(meta,
        arrays)`` payload through this, so a process-fitted artifact is
        byte-identical to the thread path packing in-process.
        """
        strategy = resolve_strategy(strategy)
        out = self._path(strategy, target)
        out.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(out / _ARRAYS, **arrays)
        (out / _META).write_text(json.dumps(meta, indent=1, sort_keys=True))
        return out

    def load(self, target: str, strategy, zoo):
        """Revive one artifact, validating fingerprints.

        Raises :class:`ArtifactNotFoundError` when absent and
        :class:`StaleArtifactError` when present but out of date.
        """
        strategy = resolve_strategy(strategy)
        path = self._path(strategy, target)
        if not (path / _META).exists():
            raise ArtifactNotFoundError(
                f"no artifact for target {target!r} under strategy "
                f"{strategy.fingerprint()}"
            )
        try:
            meta = json.loads((path / _META).read_text())
            with np.load(path / _ARRAYS) as npz:
                arrays = {key: npz[key] for key in npz.files}
        except (OSError, ValueError) as exc:
            # Truncated JSON, missing/corrupt npz (BadZipFile is an
            # OSError): a broken artifact must degrade to a refit, not
            # poison every query for the target.
            raise ArtifactError(
                f"corrupt artifact for target {target!r} at {path}: {exc}"
            ) from exc
        try:
            return strategy.unpack(meta, arrays, zoo)
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                f"malformed artifact for target {target!r} at {path}: {exc}"
            ) from exc

    def gc(
        self,
        live_strategies: list,
        zoo=None,
        dry_run: bool = False,
        layout: str = "flat",
    ) -> dict[str, int]:
        """Sweep artifacts that no live strategy/catalog can serve.

        ``layout`` selects the directory shape being swept:

        - ``"flat"`` (the single-service default): fingerprint
          directories live directly under ``root``;
        - ``"namespaces"`` (the gateway's shard layout,
          ``<root>/<namespace>/<strategy_fp>/<target>``): every
          namespace directory is swept as its own flat registry and the
          reports are summed.  Namespace directories themselves are
          never removed — their names are operator-chosen slugs, not
          fingerprints, so "no live strategy matches" does not apply.
          Only pass ``zoo`` here when *every* shard serves that zoo:
          the catalog-staleness rule compares each artifact against it,
          so a shard serving a different zoo (heterogeneous
          ``--namespace`` modalities/scales) would have its perfectly
          live artifacts swept as stale.  ``zoo=None`` limits the sweep
          to dead fingerprints and crash partials.

        Removal rules, applied per fingerprint directory:

        - a fingerprint matching no strategy in ``live_strategies``
          (strategies, specs, or configs) is removed whole;
        - inside live fingerprints, partial artifact directories (no
          ``meta.json`` — a crash mid-save) are removed;
        - when ``zoo`` is given, artifacts whose stored catalog
          fingerprint differs from the live catalog are removed too —
          they would raise ``StaleArtifactError`` on every load anyway.

        ``dry_run=True`` reports what *would* be reclaimed without
        touching disk.  Returns counts plus reclaimed bytes.
        """
        if layout not in ("flat", "namespaces"):
            raise ValueError(f"layout must be 'flat' or 'namespaces', got {layout!r}")
        report = {
            "namespaces_removed": 0,
            "artifacts_removed": 0,
            "artifacts_kept": 0,
            "bytes_reclaimed": 0,
        }
        if not self.root.is_dir():
            return report
        if layout == "namespaces":
            for shard in sorted(p for p in self.root.iterdir() if p.is_dir()):
                sub = ArtifactRegistry(shard).gc(live_strategies, zoo, dry_run=dry_run)
                for key in report:
                    report[key] += sub[key]
            return report

        live_fps = {resolve_strategy(s).fingerprint() for s in live_strategies}
        live_catalog = catalog_fingerprint(zoo.catalog) if zoo is not None else None

        def dir_bytes(path: Path) -> int:
            return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())

        def remove(path: Path) -> None:
            report["bytes_reclaimed"] += dir_bytes(path)
            if not dry_run:
                shutil.rmtree(path)

        for namespace in sorted(p for p in self.root.iterdir() if p.is_dir()):
            if namespace.name not in live_fps:
                report["artifacts_removed"] += sum(
                    1 for p in namespace.iterdir() if p.is_dir()
                )
                report["namespaces_removed"] += 1
                remove(namespace)
                continue
            for artifact in sorted(p for p in namespace.iterdir() if p.is_dir()):
                meta_path = artifact / _META
                stale = not meta_path.exists()
                if not stale and live_catalog is not None:
                    try:
                        meta = json.loads(meta_path.read_text())
                        stale = meta.get("catalog_fingerprint") != live_catalog
                    except (OSError, ValueError):
                        stale = True  # unreadable meta can never be served
                if stale:
                    report["artifacts_removed"] += 1
                    remove(artifact)
                else:
                    report["artifacts_kept"] += 1
        return report

    def delete(self, target: str, strategy) -> bool:
        """Remove one artifact; returns whether anything was deleted."""
        path = self.path_for(target, strategy)
        if not path.is_dir():
            return False
        for name in (_META, _ARRAYS):
            file = path / name
            if file.exists():
                file.unlink()
        try:
            path.rmdir()
        except OSError:  # pragma: no cover - unexpected extra files
            pass
        return True
