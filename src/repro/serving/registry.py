"""Versioned on-disk registry of fitted selection artifacts.

Layout (one namespace directory per strategy fingerprint)::

    <root>/registry.db                         SQLite artifact index
    <root>/<strategy_fp>/<target>/meta.json    fingerprints, states, names
    <root>/<strategy_fp>/<target>/arrays.npz   embeddings + model arrays

Artifacts are keyed by *strategy*: anything accepted by
:func:`repro.strategies.resolve_strategy` — a
:class:`~repro.strategies.SelectionStrategy`, a spec string, or (the
pre-redesign signature, still the common test idiom) a bare
:class:`~repro.core.TransferGraphConfig`, whose fingerprint is unchanged
so existing TG artifacts keep loading.  The strategy also owns the
artifact *format*: ``save`` packs through ``strategy.pack`` and ``load``
revives through ``strategy.unpack``, so a TG pipeline and a LogME score
table live behind the same registry API.

Lookups and GC go through the ``registry.db`` index
(:class:`~repro.serving.index.RegistryIndex`) — a keyed table of
(strategy fingerprint, target) → path, size, mtime, last-hit — rather
than walking artifact directories.  The filesystem stays the source of
truth: index hits are verified against ``meta.json`` before being
served, rows whose artifacts vanished out-of-band are dropped, and
pre-index (or externally written) artifact directories are adopted into
the index on first sight, so deleting ``registry.db`` merely rebuilds
it.

``arrays.npz`` is written before ``meta.json``, so a directory with a
``meta.json`` is always a complete artifact; a crash mid-save leaves at
worst an ignorable partial directory.  Every load validates the stored
fingerprints against the live strategy and catalog — a stale artifact
raises :class:`~repro.serving.artifacts.StaleArtifactError` instead of
being silently served.
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

import numpy as np

from repro.serving.index import INDEX_DB_NAME, RegistryIndex
from repro.strategies.artifacts import (
    ArtifactError,
    ArtifactNotFoundError,
)
from repro.strategies.fingerprint import catalog_fingerprint
from repro.strategies import resolve_strategy

__all__ = ["ArtifactRegistry"]

_META = "meta.json"
_ARRAYS = "arrays.npz"


class ArtifactRegistry:
    """Persists fitted artifacts keyed by (strategy fingerprint, target)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._index: RegistryIndex | None = None

    # ------------------------------------------------------------------ #
    # index plumbing
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> RegistryIndex:
        """The lazily opened artifact index (creates ``root`` on demand)."""
        if self._index is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._index = RegistryIndex(self.root / INDEX_DB_NAME)
        return self._index

    def close(self) -> None:
        """Release the index database handle (reopened on next use)."""
        if self._index is not None:
            self._index.close()
            self._index = None

    def __getstate__(self):
        # The open SQLite handle can't cross process boundaries; the
        # path is enough to reopen lazily on the far side.
        return {"root": self.root, "_index": None}

    def _artifact_stats(self, path: Path) -> tuple[int, float]:
        """(total bytes, meta mtime) for a complete artifact directory."""
        meta_stat = (path / _META).stat()
        size = meta_stat.st_size
        arrays = path / _ARRAYS
        if arrays.exists():
            size += arrays.stat().st_size
        return size, meta_stat.st_mtime

    def _index_record(self, strategy_fp: str, target: str, path: Path,
                      last_hit: float | None = None) -> None:
        size, mtime = self._artifact_stats(path)
        self.index.record(strategy_fp, target, path, size, mtime,
                          last_hit=last_hit)

    def _reconcile(self, strategy_fp: str) -> tuple[list[tuple[str, Path]],
                                                    list[Path]]:
        """Sync the index with disk for one fingerprint namespace.

        Returns ``(complete, partials)`` where ``complete`` is a sorted
        list of (target, path) artifacts with a ``meta.json`` and
        ``partials`` the crash leftovers without one.  Index rows whose
        artifact vanished are dropped; unindexed complete artifacts
        (pre-index layouts, external writers) are adopted.
        """
        namespace = self.root / strategy_fp
        complete: list[tuple[str, Path]] = []
        partials: list[Path] = []
        on_disk: set[str] = set()
        if namespace.is_dir():
            for path in sorted(p for p in namespace.iterdir() if p.is_dir()):
                if (path / _META).exists():
                    complete.append((path.name, path))
                    on_disk.add(path.name)
                else:
                    partials.append(path)
        indexed = {row["target"] for row in self.index.rows(strategy_fp)}
        for target in indexed - on_disk:
            self.index.drop(strategy_fp, target)
        for target, path in complete:
            if target not in indexed:
                self._index_record(strategy_fp, target, path)
        return complete, partials

    # ------------------------------------------------------------------ #
    def _path(self, strategy, target: str) -> Path:
        """THE layout rule (``strategy`` already resolved):
        ``<root>/<strategy fingerprint>/<target>``."""
        return self.root / strategy.fingerprint() / target

    def path_for(self, target: str, strategy) -> Path:
        return self._path(resolve_strategy(strategy), target)

    def contains(self, target: str, strategy) -> bool:
        """Index lookup, verified against disk before being trusted."""
        if not self.root.is_dir():
            return False
        strategy = resolve_strategy(strategy)
        fp = strategy.fingerprint()
        path = self._path(strategy, target)
        exists = (path / _META).exists()
        row = self.index.get(fp, target)
        if exists and row is None:
            self._index_record(fp, target, path)
        elif not exists and row is not None:
            self.index.drop(fp, target)
        return exists

    def targets(self, strategy) -> list[str]:
        """Targets with a complete artifact under this strategy."""
        if not self.root.is_dir():
            return []
        fp = resolve_strategy(strategy).fingerprint()
        complete, _ = self._reconcile(fp)
        return [target for target, _path in complete]

    def reindex(self) -> dict[str, int]:
        """Rebuild the index from disk (``repro migrate-store`` backfill).

        Reconciles every fingerprint namespace: complete artifact
        directories written before the index existed (or behind its
        back) are adopted, rows whose artifacts vanished are dropped.
        Idempotent — a second run changes nothing.
        """
        if not self.root.is_dir():
            return {"fingerprints": 0, "artifacts_indexed": 0}
        disk = {p.name for p in self.root.iterdir() if p.is_dir()}
        fingerprints = sorted(disk | set(self.index.fingerprints()))
        indexed = 0
        for fp in fingerprints:
            complete, _ = self._reconcile(fp)
            indexed += len(complete)
        return {"fingerprints": len(fingerprints),
                "artifacts_indexed": indexed}

    # ------------------------------------------------------------------ #
    def save(self, fitted, strategy, zoo) -> Path:
        """Write one artifact; returns its directory."""
        strategy = resolve_strategy(strategy)
        meta, arrays = strategy.pack(fitted, zoo)
        return self.save_packed(meta, arrays, strategy, fitted.target)

    def save_packed(self, meta: dict, arrays: dict, strategy, target: str) -> Path:
        """Write one *already-packed* artifact; returns its directory.

        The process fit plane persists the worker's exact ``(meta,
        arrays)`` payload through this, so a process-fitted artifact is
        byte-identical to the thread path packing in-process.  The
        artifact row is upserted into the index after the files land.
        """
        strategy = resolve_strategy(strategy)
        out = self._path(strategy, target)
        out.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(out / _ARRAYS, **arrays)
        (out / _META).write_text(json.dumps(meta, indent=1, sort_keys=True))
        self._index_record(strategy.fingerprint(), target, out)
        return out

    def load(self, target: str, strategy, zoo):
        """Revive one artifact, validating fingerprints.

        A successful load bumps the artifact's ``last_hit`` in the
        index (adopting it first if it was written out-of-band).

        Raises :class:`ArtifactNotFoundError` when absent and
        :class:`StaleArtifactError` when present but out of date.
        """
        strategy = resolve_strategy(strategy)
        path = self._path(strategy, target)
        if not (path / _META).exists():
            if self.root.is_dir():
                self.index.drop(strategy.fingerprint(), target)
            raise ArtifactNotFoundError(
                f"no artifact for target {target!r} under strategy "
                f"{strategy.fingerprint()}"
            )
        try:
            meta = json.loads((path / _META).read_text())
            with np.load(path / _ARRAYS) as npz:
                arrays = {key: npz[key] for key in npz.files}
        except (OSError, ValueError) as exc:
            # Truncated JSON, missing/corrupt npz (BadZipFile is an
            # OSError): a broken artifact must degrade to a refit, not
            # poison every query for the target.
            raise ArtifactError(
                f"corrupt artifact for target {target!r} at {path}: {exc}"
            ) from exc
        try:
            revived = strategy.unpack(meta, arrays, zoo)
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                f"malformed artifact for target {target!r} at {path}: {exc}"
            ) from exc
        self._index_record(strategy.fingerprint(), target, path,
                           last_hit=time.time())
        return revived

    def gc(
        self,
        live_strategies: list,
        zoo=None,
        dry_run: bool = False,
        layout: str = "flat",
    ) -> dict[str, int]:
        """Sweep artifacts that no live strategy/catalog can serve.

        The sweep is driven by the artifact index: each live
        fingerprint is reconciled against disk once (dropping dead
        rows, adopting unindexed artifacts), then keep/remove decisions
        walk the reconciled rows instead of re-scanning directories.

        ``layout`` selects the directory shape being swept:

        - ``"flat"`` (the single-service default): fingerprint
          directories live directly under ``root``;
        - ``"namespaces"`` (the gateway's shard layout,
          ``<root>/<namespace>/<strategy_fp>/<target>``): every
          namespace directory is swept as its own flat registry — each
          shard owns its own ``registry.db`` — and the reports are
          summed.  Namespace directories themselves are never removed —
          their names are operator-chosen slugs, not fingerprints, so
          "no live strategy matches" does not apply.  Only pass ``zoo``
          here when *every* shard serves that zoo: the
          catalog-staleness rule compares each artifact against it, so
          a shard serving a different zoo (heterogeneous
          ``--namespace`` modalities/scales) would have its perfectly
          live artifacts swept as stale.  ``zoo=None`` limits the sweep
          to dead fingerprints and crash partials.

        Removal rules, applied per fingerprint:

        - a fingerprint matching no strategy in ``live_strategies``
          (strategies, specs, or configs) is removed whole, files and
          index rows both;
        - inside live fingerprints, partial artifact directories (no
          ``meta.json`` — a crash mid-save) are removed;
        - when ``zoo`` is given, artifacts whose stored catalog
          fingerprint differs from the live catalog are removed too —
          they would raise ``StaleArtifactError`` on every load anyway.

        ``dry_run=True`` reports what *would* be reclaimed without
        touching artifacts or index rows.  Returns counts plus
        reclaimed bytes.
        """
        if layout not in ("flat", "namespaces"):
            raise ValueError(f"layout must be 'flat' or 'namespaces', got {layout!r}")
        report = {
            "namespaces_removed": 0,
            "artifacts_removed": 0,
            "artifacts_kept": 0,
            "bytes_reclaimed": 0,
        }
        if not self.root.is_dir():
            return report
        if layout == "namespaces":
            for shard in sorted(p for p in self.root.iterdir() if p.is_dir()):
                sub = ArtifactRegistry(shard).gc(live_strategies, zoo, dry_run=dry_run)
                for key in report:
                    report[key] += sub[key]
            return report

        live_fps = {resolve_strategy(s).fingerprint() for s in live_strategies}
        live_catalog = catalog_fingerprint(zoo.catalog) if zoo is not None else None

        def dir_bytes(path: Path) -> int:
            return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())

        def remove(path: Path) -> None:
            report["bytes_reclaimed"] += dir_bytes(path)
            if not dry_run:
                shutil.rmtree(path)

        disk_fps = sorted(p.name for p in self.root.iterdir()
                          if p.is_dir() and p.name != INDEX_DB_NAME)
        for fp in sorted(set(disk_fps) | set(self.index.fingerprints())):
            namespace = self.root / fp
            if fp not in live_fps:
                if namespace.is_dir():
                    report["artifacts_removed"] += sum(
                        1 for p in namespace.iterdir() if p.is_dir()
                    )
                    report["namespaces_removed"] += 1
                    remove(namespace)
                if not dry_run:
                    self.index.drop_fingerprint(fp)
                continue
            complete, partials = self._reconcile(fp)
            for partial in partials:
                report["artifacts_removed"] += 1
                remove(partial)
            for target, artifact in complete:
                stale = False
                if live_catalog is not None:
                    try:
                        meta = json.loads((artifact / _META).read_text())
                        stale = meta.get("catalog_fingerprint") != live_catalog
                    except (OSError, ValueError):
                        stale = True  # unreadable meta can never be served
                if stale:
                    report["artifacts_removed"] += 1
                    remove(artifact)
                    if not dry_run:
                        self.index.drop(fp, target)
                else:
                    report["artifacts_kept"] += 1
        return report

    def delete(self, target: str, strategy) -> bool:
        """Remove one artifact (files and index row); returns whether
        anything was deleted."""
        strategy = resolve_strategy(strategy)
        if self.root.is_dir():
            self.index.drop(strategy.fingerprint(), target)
        path = self._path(strategy, target)
        if not path.is_dir():
            return False
        for name in (_META, _ARRAYS):
            file = path / name
            if file.exists():
                file.unlink()
        try:
            path.rmdir()
        except OSError:  # pragma: no cover - unexpected extra files
            pass
        return True
