"""Versioned on-disk registry of fitted TransferGraph artifacts.

Layout (one namespace directory per config fingerprint)::

    <root>/<config_fp>/<target>/meta.json    fingerprints, states, names
    <root>/<config_fp>/<target>/arrays.npz   embeddings + predictor arrays

``arrays.npz`` is written before ``meta.json``, so a directory with a
``meta.json`` is always a complete artifact; a crash mid-save leaves at
worst an ignorable partial directory.  Every load validates the stored
fingerprints against the live config and catalog — a stale artifact
raises :class:`~repro.serving.artifacts.StaleArtifactError` instead of
being silently served.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.config import TransferGraphConfig
from repro.core.framework import FittedTransferGraph
from repro.serving.artifacts import (
    ArtifactError,
    ArtifactNotFoundError,
    pack_fitted,
    unpack_fitted,
)
from repro.serving.fingerprint import config_fingerprint

__all__ = ["ArtifactRegistry"]

_META = "meta.json"
_ARRAYS = "arrays.npz"


class ArtifactRegistry:
    """Persists fitted artifacts keyed by (config fingerprint, target)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    def path_for(self, target: str, config: TransferGraphConfig) -> Path:
        return self.root / config_fingerprint(config) / target

    def contains(self, target: str, config: TransferGraphConfig) -> bool:
        return (self.path_for(target, config) / _META).exists()

    def targets(self, config: TransferGraphConfig) -> list[str]:
        """Targets with a complete artifact under this config."""
        namespace = self.root / config_fingerprint(config)
        if not namespace.is_dir():
            return []
        return sorted(p.name for p in namespace.iterdir()
                      if (p / _META).exists())

    # ------------------------------------------------------------------ #
    def save(self, fitted: FittedTransferGraph, config: TransferGraphConfig,
             zoo) -> Path:
        """Write one artifact; returns its directory."""
        meta, arrays = pack_fitted(fitted, config, zoo)
        out = self.path_for(fitted.target, config)
        out.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(out / _ARRAYS, **arrays)
        (out / _META).write_text(json.dumps(meta, indent=1, sort_keys=True))
        return out

    def load(self, target: str, config: TransferGraphConfig,
             zoo) -> FittedTransferGraph:
        """Revive one artifact, validating fingerprints.

        Raises :class:`ArtifactNotFoundError` when absent and
        :class:`StaleArtifactError` when present but out of date.
        """
        path = self.path_for(target, config)
        if not (path / _META).exists():
            raise ArtifactNotFoundError(
                f"no artifact for target {target!r} under config "
                f"{config_fingerprint(config)}")
        try:
            meta = json.loads((path / _META).read_text())
            with np.load(path / _ARRAYS) as npz:
                arrays = {key: npz[key] for key in npz.files}
        except (OSError, ValueError) as exc:
            # Truncated JSON, missing/corrupt npz (BadZipFile is an
            # OSError): a broken artifact must degrade to a refit, not
            # poison every query for the target.
            raise ArtifactError(
                f"corrupt artifact for target {target!r} at {path}: {exc}"
            ) from exc
        try:
            return unpack_fitted(meta, arrays, zoo, config)
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                f"malformed artifact for target {target!r} at {path}: {exc}"
            ) from exc

    def delete(self, target: str, config: TransferGraphConfig) -> bool:
        """Remove one artifact; returns whether anything was deleted."""
        path = self.path_for(target, config)
        if not path.is_dir():
            return False
        for name in (_META, _ARRAYS):
            file = path / name
            if file.exists():
                file.unlink()
        try:
            path.rmdir()
        except OSError:  # pragma: no cover - unexpected extra files
            pass
        return True
