"""Versioned on-disk registry of fitted TransferGraph artifacts.

Layout (one namespace directory per config fingerprint)::

    <root>/<config_fp>/<target>/meta.json    fingerprints, states, names
    <root>/<config_fp>/<target>/arrays.npz   embeddings + predictor arrays

``arrays.npz`` is written before ``meta.json``, so a directory with a
``meta.json`` is always a complete artifact; a crash mid-save leaves at
worst an ignorable partial directory.  Every load validates the stored
fingerprints against the live config and catalog — a stale artifact
raises :class:`~repro.serving.artifacts.StaleArtifactError` instead of
being silently served.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from repro.core.config import TransferGraphConfig
from repro.core.framework import FittedTransferGraph
from repro.serving.artifacts import (
    ArtifactError,
    ArtifactNotFoundError,
    pack_fitted,
    unpack_fitted,
)
from repro.serving.fingerprint import catalog_fingerprint, config_fingerprint

__all__ = ["ArtifactRegistry"]

_META = "meta.json"
_ARRAYS = "arrays.npz"


class ArtifactRegistry:
    """Persists fitted artifacts keyed by (config fingerprint, target)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    def path_for(self, target: str, config: TransferGraphConfig) -> Path:
        return self.root / config_fingerprint(config) / target

    def contains(self, target: str, config: TransferGraphConfig) -> bool:
        return (self.path_for(target, config) / _META).exists()

    def targets(self, config: TransferGraphConfig) -> list[str]:
        """Targets with a complete artifact under this config."""
        namespace = self.root / config_fingerprint(config)
        if not namespace.is_dir():
            return []
        return sorted(p.name for p in namespace.iterdir()
                      if (p / _META).exists())

    # ------------------------------------------------------------------ #
    def save(self, fitted: FittedTransferGraph, config: TransferGraphConfig,
             zoo) -> Path:
        """Write one artifact; returns its directory."""
        meta, arrays = pack_fitted(fitted, config, zoo)
        out = self.path_for(fitted.target, config)
        out.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(out / _ARRAYS, **arrays)
        (out / _META).write_text(json.dumps(meta, indent=1, sort_keys=True))
        return out

    def load(self, target: str, config: TransferGraphConfig,
             zoo) -> FittedTransferGraph:
        """Revive one artifact, validating fingerprints.

        Raises :class:`ArtifactNotFoundError` when absent and
        :class:`StaleArtifactError` when present but out of date.
        """
        path = self.path_for(target, config)
        if not (path / _META).exists():
            raise ArtifactNotFoundError(
                f"no artifact for target {target!r} under config "
                f"{config_fingerprint(config)}")
        try:
            meta = json.loads((path / _META).read_text())
            with np.load(path / _ARRAYS) as npz:
                arrays = {key: npz[key] for key in npz.files}
        except (OSError, ValueError) as exc:
            # Truncated JSON, missing/corrupt npz (BadZipFile is an
            # OSError): a broken artifact must degrade to a refit, not
            # poison every query for the target.
            raise ArtifactError(
                f"corrupt artifact for target {target!r} at {path}: {exc}"
            ) from exc
        try:
            return unpack_fitted(meta, arrays, zoo, config)
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                f"malformed artifact for target {target!r} at {path}: {exc}"
            ) from exc

    def gc(self, live_configs: list[TransferGraphConfig], zoo=None,
           dry_run: bool = False) -> dict[str, int]:
        """Sweep artifacts that no live configuration/catalog can serve.

        Removal rules, applied per namespace directory:

        - a namespace whose fingerprint matches no config in
          ``live_configs`` is removed whole (nothing can ever load it);
        - inside live namespaces, partial artifact directories (no
          ``meta.json`` — a crash mid-save) are removed;
        - when ``zoo`` is given, artifacts whose stored catalog
          fingerprint differs from the live catalog are removed too —
          they would raise ``StaleArtifactError`` on every load anyway.

        ``dry_run=True`` reports what *would* be reclaimed without
        touching disk.  Returns counts plus reclaimed bytes.
        """
        live_fps = {config_fingerprint(c) for c in live_configs}
        live_catalog = catalog_fingerprint(zoo.catalog) if zoo is not None \
            else None
        report = {"namespaces_removed": 0, "artifacts_removed": 0,
                  "artifacts_kept": 0, "bytes_reclaimed": 0}
        if not self.root.is_dir():
            return report

        def dir_bytes(path: Path) -> int:
            return sum(f.stat().st_size
                       for f in path.rglob("*") if f.is_file())

        def remove(path: Path) -> None:
            report["bytes_reclaimed"] += dir_bytes(path)
            if not dry_run:
                shutil.rmtree(path)

        for namespace in sorted(p for p in self.root.iterdir() if p.is_dir()):
            if namespace.name not in live_fps:
                report["artifacts_removed"] += sum(
                    1 for p in namespace.iterdir() if p.is_dir())
                report["namespaces_removed"] += 1
                remove(namespace)
                continue
            for artifact in sorted(p for p in namespace.iterdir()
                                   if p.is_dir()):
                meta_path = artifact / _META
                stale = not meta_path.exists()
                if not stale and live_catalog is not None:
                    try:
                        meta = json.loads(meta_path.read_text())
                        stale = meta.get("catalog_fingerprint") != live_catalog
                    except (OSError, ValueError):
                        stale = True  # unreadable meta can never be served
                if stale:
                    report["artifacts_removed"] += 1
                    remove(artifact)
                else:
                    report["artifacts_kept"] += 1
        return report

    def delete(self, target: str, config: TransferGraphConfig) -> bool:
        """Remove one artifact; returns whether anything was deleted."""
        path = self.path_for(target, config)
        if not path.is_dir():
            return False
        for name in (_META, _ARRAYS):
            file = path / name
            if file.exists():
                file.unlink()
        try:
            path.rmdir()
        except OSError:  # pragma: no cover - unexpected extra files
            pass
        return True
