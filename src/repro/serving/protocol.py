"""The v1 wire protocol: typed request/response messages for selection.

Every way into the serving layer — the in-process Python API
(:meth:`SelectionService.handle`), the async router, the multi-tenant
:class:`~repro.serving.gateway.SelectionGateway`, the CLI, and the HTTP
front door — speaks these message types, so the paths cannot diverge:
a response is *constructed* in exactly one place (the ``build``
classmethods here) regardless of how the request arrived.

Messages are frozen dataclasses with strict ``to_json``/``from_json``
round-trips:

- unknown fields, missing required fields, and wrong types all raise
  :class:`ProtocolError`;
- validation messages are written for clients: they name the offending
  field and the expectation, never internal state, stack frames, or
  server paths;
- ``to_json(from_json(text))`` is byte-stable for every valid message
  (keys are sorted, floats use Python's shortest round-trip repr), so
  rankings served over the wire compare byte-identical to in-process
  ones.

Versioning rule: the ``v1`` protocol is *additive-only* — new optional
fields may appear in responses, but existing fields never change type or
meaning, and requests never grow new required fields.  Breaking changes
get a ``/v2`` prefix and a new module.

The optional ``strategy`` field on :class:`RankRequest` /
:class:`ScoreBatchRequest` (and echoed on their responses) is the
protocol's first additive growth under that rule: omitted, requests
route to the endpoint's default strategy and the serialised bytes are
identical to the pre-strategy protocol; present, it names a strategy
spec (``"tg:lr,n2v,all"``, ``"lr:all+logme"``, ``"logme"``, ...) in the
serving namespace's strategy map.  Responses carry the field only when
the request did, so default-strategy traffic stays byte-stable.

The second additive growth is the :class:`CompareRequest` /
:class:`CompareResponse` pair behind ``POST /v1/compare``: one target
fanned concurrently across a namespace's whole strategy map, answered
with per-strategy rankings, rank correlations and top-k overlap against
a reference strategy, and live per-strategy latency percentiles.  A
strategy shed by its router's backpressure is *marked* shed in the
response (with its ``retry_after_s`` hint) instead of failing the whole
comparison — partial answers are the point of a fleet-wide probe.

The third additive growth (this PR) is observability-facing: an
optional ``request_id`` on every request, echoed on the response *only
when the request carried one* (the ``strategy`` rule again — omitted
requests stay byte-stable), correlating a wire exchange with the
server's trace of it; and an optional ``strategies`` block on
:class:`StatsResponse` carrying measured per-strategy fit cost
(``fit_ms_p50``/``fit_ms_p95``), closing the declared-``fit_weight``
vs. measured-``fit_ms`` gap.

The additive-only rule is machine-enforced: the ``wire-schema`` rule of
``repro analyze`` extracts this module's dataclass fields and compares
them against the committed snapshot at
``benchmarks/baselines/protocol_schema.json`` — removing a field,
retyping it, or adding a new *required* field fails the analysis suite
(and CI).  Adding an optional field is allowed; regenerate the snapshot
with ``repro analyze --update-schema`` in the same commit.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, TypeVar, cast

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_NAMESPACE",
    "DEFAULT_COMPARE_TOP_K",
    "ERROR_CODES",
    "ProtocolError",
    "RankRequest",
    "RankResponse",
    "ScoreBatchRequest",
    "ScoreBatchResponse",
    "CompareRequest",
    "CompareResponse",
    "StrategyComparison",
    "StatsResponse",
    "ErrorResponse",
    "MESSAGE_TYPES",
    "message_from_json",
]

PROTOCOL_VERSION = "v1"

#: namespace used by single-tenant entry points (one service, no gateway)
DEFAULT_NAMESPACE = "default"

#: overlap depth a compare uses when the request leaves ``top_k`` null —
#: the paper's top-k transfer-accuracy tables report small k, and 3 keeps
#: the metric meaningful even on tiny evaluation zoos
DEFAULT_COMPARE_TOP_K = 3

#: machine-readable error discriminants a client may rely on
ERROR_CODES = frozenset(
    {
        "bad_request",  # malformed JSON / failed validation
        "unknown_namespace",  # no such namespace behind the gateway
        "unknown_target",  # namespace exists, target dataset does not
        "unknown_model",  # a score_batch pair names no zoo model
        "unknown_strategy",  # namespace serves no strategy under that spec
        "queue_full",  # cold-fit queue saturated; carries retry_after_s
        "not_found",  # no such route
        "method_not_allowed",  # route exists, wrong HTTP method
        "payload_too_large",  # request body over the server's byte cap
        "internal",  # unexpected server error (no details leaked)
    }
)


class ProtocolError(ValueError):
    """A message failed wire-protocol validation.

    The message text is client-safe by construction: it names fields and
    expectations only, never server internals.
    """


# ---------------------------------------------------------------------- #
# validation primitives
# ---------------------------------------------------------------------- #
def _type_name(value: object) -> str:
    return type(value).__name__


def _check_str(kind: str, name: str, value: object) -> str:
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            f"{kind}.{name} must be a non-empty string, got {_type_name(value)}"
        )
    return value


def _check_float(kind: str, name: str, value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{kind}.{name} must be a number, got {_type_name(value)}")
    out = float(value)
    if not math.isfinite(out):
        # json.dumps would emit bare NaN/Infinity — not RFC JSON, and
        # strict clients would choke on an otherwise-200 body.
        raise ProtocolError(f"{kind}.{name} must be a finite number")
    return out


def _check_optional_str(kind: str, name: str, value: object) -> str | None:
    if value is None:
        return None
    return _check_str(kind, name, value)


def _check_optional_top_k(kind: str, value: object) -> int | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ProtocolError(f"{kind}.top_k must be null or a positive integer")
    return value


def _check_payload(
    kind: str, payload: object, allowed: set[str], required: set[str]
) -> dict[str, Any]:
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"{kind} payload must be a JSON object, got {_type_name(payload)}"
        )
    declared = payload.get("kind")
    if declared is not None and declared != kind:
        raise ProtocolError(
            f"payload kind {declared!r} does not match expected {kind!r}"
        )
    unknown = set(payload) - allowed - {"kind"}
    if unknown:
        raise ProtocolError(f"{kind} has unknown field(s): {sorted(unknown)}")
    missing = required - set(payload)
    if missing:
        raise ProtocolError(f"{kind} is missing required field(s): {sorted(missing)}")
    return payload


def _check_pairs(kind: str, name: str, value: object) -> tuple[tuple[str, str], ...]:
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(f"{kind}.{name} must be a list of [model_id, target] pairs")
    out: list[tuple[str, str]] = []
    for i, pair in enumerate(value):
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ProtocolError(f"{kind}.{name}[{i}] must be a [model_id, target] pair")
        out.append(
            (
                _check_str(kind, f"{name}[{i}][0]", pair[0]),
                _check_str(kind, f"{name}[{i}][1]", pair[1]),
            )
        )
    return tuple(out)


def _check_summary(kind: str, name: str, value: object) -> dict[str, float]:
    if not isinstance(value, dict):
        raise ProtocolError(f"{kind}.{name} must be an object of metric name -> number")
    return {
        _check_str(kind, f"{name} key", k): _check_float(kind, f"{name}[{k}]", v)
        for k, v in value.items()
    }


def _json_loads(kind: str, text: str | bytes) -> Any:
    try:
        return json.loads(text)
    except (ValueError, TypeError, UnicodeDecodeError):
        raise ProtocolError(f"{kind} body is not valid JSON") from None


# ---------------------------------------------------------------------- #
# message base
# ---------------------------------------------------------------------- #
_M = TypeVar("_M", bound="_Message")


class _Message:
    """Shared wire behaviour; subclasses define ``kind`` + ``from_dict``."""

    kind: ClassVar[str]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):  # type: ignore[arg-type]
            out[f.name] = getattr(self, f.name)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: object) -> "_Message":
        raise NotImplementedError

    @classmethod
    def from_json(cls: type[_M], text: str | bytes) -> _M:
        return cast(_M, cls.from_dict(_json_loads(cls.kind, text)))


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RankRequest(_Message):
    """Rank every model of a namespace's zoo for one target dataset.

    ``strategy`` (optional, additive) selects a ranker from the
    namespace's strategy map; omitted requests serve the namespace
    default and serialise byte-identically to the pre-strategy protocol.
    """

    kind: ClassVar[str] = "rank"

    target: str
    namespace: str = DEFAULT_NAMESPACE
    top_k: int | None = None
    strategy: str | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        _check_str(self.kind, "target", self.target)
        _check_str(self.kind, "namespace", self.namespace)
        _check_optional_top_k(self.kind, self.top_k)
        _check_optional_str(self.kind, "strategy", self.strategy)
        _check_optional_str(self.kind, "request_id", self.request_id)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "target": self.target,
            "namespace": self.namespace,
            "top_k": self.top_k,
        }
        if self.strategy is not None:  # omitted stays byte-stable
            out["strategy"] = self.strategy
        if self.request_id is not None:  # omitted stays byte-stable
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "RankRequest":
        data = _check_payload(
            cls.kind,
            payload,
            {"target", "namespace", "top_k", "strategy", "request_id"},
            {"target"},
        )
        return cls(
            target=data["target"],
            namespace=data.get("namespace", DEFAULT_NAMESPACE),
            top_k=data.get("top_k"),
            strategy=data.get("strategy"),
            request_id=data.get("request_id"),
        )


@dataclass(frozen=True)
class ScoreBatchRequest(_Message):
    """Score explicit (model_id, target) pairs; aligned to input order."""

    kind: ClassVar[str] = "score_batch"

    pairs: tuple[tuple[str, str], ...]
    namespace: str = DEFAULT_NAMESPACE
    strategy: str | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", _check_pairs(self.kind, "pairs", self.pairs))
        _check_str(self.kind, "namespace", self.namespace)
        _check_optional_str(self.kind, "strategy", self.strategy)
        _check_optional_str(self.kind, "request_id", self.request_id)

    @property
    def target(self) -> str:
        """First pair's target (workload-replay convenience, '' if empty)."""
        return self.pairs[0][1] if self.pairs else ""

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "namespace": self.namespace,
            "pairs": [list(p) for p in self.pairs],
        }
        if self.strategy is not None:  # omitted stays byte-stable
            out["strategy"] = self.strategy
        if self.request_id is not None:  # omitted stays byte-stable
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "ScoreBatchRequest":
        data = _check_payload(
            cls.kind,
            payload,
            {"pairs", "namespace", "strategy", "request_id"},
            {"pairs"},
        )
        return cls(
            pairs=data["pairs"],  # __post_init__ validates
            namespace=data.get("namespace", DEFAULT_NAMESPACE),
            strategy=data.get("strategy"),
            request_id=data.get("request_id"),
        )


@dataclass(frozen=True)
class CompareRequest(_Message):
    """Fan one target across a namespace's strategy map and compare.

    ``strategies`` (optional) restricts the fan-out to those specs; a
    null field means *the namespace's whole strategy map* — every
    registered ranker answers.  An explicitly empty list is a protocol
    error: a comparison over nothing is a client bug, not an empty
    answer.  ``reference`` names the strategy correlations and top-k
    overlap are computed against (null = the namespace default); it
    joins the fan-out set implicitly when a subset omits it.  ``top_k``
    is the overlap depth (null = server default,
    :data:`DEFAULT_COMPARE_TOP_K`, clamped to the zoo's model count).
    """

    kind: ClassVar[str] = "compare"

    target: str
    namespace: str = DEFAULT_NAMESPACE
    strategies: tuple[str, ...] | None = None
    reference: str | None = None
    top_k: int | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        _check_str(self.kind, "target", self.target)
        _check_str(self.kind, "namespace", self.namespace)
        _check_optional_str(self.kind, "reference", self.reference)
        _check_optional_str(self.kind, "request_id", self.request_id)
        _check_optional_top_k(self.kind, self.top_k)
        if self.strategies is not None:
            if not isinstance(self.strategies, (list, tuple)) or not self.strategies:
                raise ProtocolError(
                    f"{self.kind}.strategies must be null or a non-empty "
                    f"list of strategy specs"
                )
            specs = tuple(
                _check_str(self.kind, f"strategies[{i}]", spec)
                for i, spec in enumerate(self.strategies)
            )
            object.__setattr__(self, "strategies", specs)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "target": self.target,
            "namespace": self.namespace,
            "top_k": self.top_k,
        }
        if self.strategies is not None:  # null = whole strategy map
            out["strategies"] = list(self.strategies)
        if self.reference is not None:  # null = namespace default
            out["reference"] = self.reference
        if self.request_id is not None:  # omitted stays byte-stable
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "CompareRequest":
        data = _check_payload(
            cls.kind,
            payload,
            {"target", "namespace", "strategies", "reference", "top_k", "request_id"},
            {"target"},
        )
        return cls(
            target=data["target"],
            namespace=data.get("namespace", DEFAULT_NAMESPACE),
            strategies=data.get("strategies"),
            reference=data.get("reference"),
            top_k=data.get("top_k"),
            request_id=data.get("request_id"),
        )


# ---------------------------------------------------------------------- #
# responses
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RankResponse(_Message):
    """Models ranked best-first with their predicted scores."""

    kind: ClassVar[str] = "rank_response"

    namespace: str
    target: str
    ranking: tuple[tuple[str, float], ...]
    strategy: str | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        _check_str(self.kind, "namespace", self.namespace)
        _check_str(self.kind, "target", self.target)
        _check_optional_str(self.kind, "strategy", self.strategy)
        _check_optional_str(self.kind, "request_id", self.request_id)
        if not isinstance(self.ranking, (list, tuple)):
            raise ProtocolError(
                f"{self.kind}.ranking must be a list of [model_id, score] pairs"
            )
        ranking: list[tuple[str, float]] = []
        for i, entry in enumerate(self.ranking):
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ProtocolError(
                    f"{self.kind}.ranking[{i}] must be a [model_id, score] pair"
                )
            ranking.append(
                (
                    _check_str(self.kind, f"ranking[{i}][0]", entry[0]),
                    _check_float(self.kind, f"ranking[{i}][1]", entry[1]),
                )
            )
        object.__setattr__(self, "ranking", tuple(ranking))

    @classmethod
    def build(
        cls, request: RankRequest, ranking: list[tuple[str, float]]
    ) -> "RankResponse":
        """THE constructor every serving path funnels through."""
        return cls(
            namespace=request.namespace,
            target=request.target,
            ranking=tuple((m, float(s)) for m, s in ranking),
            strategy=request.strategy,
            request_id=request.request_id,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "namespace": self.namespace,
            "target": self.target,
            "ranking": [[m, s] for m, s in self.ranking],
        }
        if self.strategy is not None:  # echoed only when requested
            out["strategy"] = self.strategy
        if self.request_id is not None:  # echoed only when requested
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "RankResponse":
        data = _check_payload(
            cls.kind,
            payload,
            {"namespace", "target", "ranking", "strategy", "request_id"},
            {"namespace", "target", "ranking"},
        )
        return cls(
            namespace=data["namespace"],
            target=data["target"],
            ranking=data["ranking"],
            strategy=data.get("strategy"),
            request_id=data.get("request_id"),
        )


@dataclass(frozen=True)
class ScoreBatchResponse(_Message):
    """Predicted scores aligned one-to-one with the request's pairs."""

    kind: ClassVar[str] = "score_batch_response"

    namespace: str
    pairs: tuple[tuple[str, str], ...]
    scores: tuple[float, ...]
    strategy: str | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        _check_str(self.kind, "namespace", self.namespace)
        _check_optional_str(self.kind, "strategy", self.strategy)
        _check_optional_str(self.kind, "request_id", self.request_id)
        object.__setattr__(self, "pairs", _check_pairs(self.kind, "pairs", self.pairs))
        if not isinstance(self.scores, (list, tuple)):
            raise ProtocolError(f"{self.kind}.scores must be a list of numbers")
        scores = tuple(
            _check_float(self.kind, f"scores[{i}]", s)
            for i, s in enumerate(self.scores)
        )
        object.__setattr__(self, "scores", scores)
        if len(self.scores) != len(self.pairs):
            raise ProtocolError(
                f"{self.kind}.scores length {len(self.scores)} does not "
                f"match pairs length {len(self.pairs)}"
            )

    @classmethod
    def build(
        cls, request: ScoreBatchRequest, scores: Iterable[float]
    ) -> "ScoreBatchResponse":
        """THE constructor every serving path funnels through."""
        return cls(
            namespace=request.namespace,
            pairs=request.pairs,
            scores=tuple(float(s) for s in scores),
            strategy=request.strategy,
            request_id=request.request_id,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "namespace": self.namespace,
            "pairs": [list(p) for p in self.pairs],
            "scores": list(self.scores),
        }
        if self.strategy is not None:  # echoed only when requested
            out["strategy"] = self.strategy
        if self.request_id is not None:  # echoed only when requested
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "ScoreBatchResponse":
        data = _check_payload(
            cls.kind,
            payload,
            {"namespace", "pairs", "scores", "strategy", "request_id"},
            {"namespace", "pairs", "scores"},
        )
        return cls(
            namespace=data["namespace"],
            pairs=data["pairs"],
            scores=data["scores"],
            strategy=data.get("strategy"),
            request_id=data.get("request_id"),
        )


#: allowed ``StrategyComparison.status`` values
_COMPARISON_STATUSES = ("ok", "shed")


@dataclass(frozen=True)
class StrategyComparison:
    """One strategy's slice of a :class:`CompareResponse`.

    Not a wire message itself (no ``kind``): it nests inside
    ``CompareResponse.results`` keyed by the strategy's canonical spec.

    - ``status == "ok"`` carries the full best-first ``ranking`` plus —
      when the reference strategy answered — ``pearson`` / ``spearman``
      rank correlations against the reference's scores and the
      ``top_k_overlap`` fraction of the reference's top-k set it shares;
    - ``status == "shed"`` means this strategy's router shed the fan-out
      under backpressure: no ranking, a ``retry_after_s`` hint instead
      (the rest of the comparison still answers — partial failure never
      fails the whole compare);
    - ``latency`` is the strategy's *live* serving summary (rolling
      stats-window percentiles from its router), present either way.
    """

    status: str
    ranking: tuple[tuple[str, float], ...] = ()
    pearson: float | None = None
    spearman: float | None = None
    top_k_overlap: float | None = None
    latency: dict[str, float] = field(default_factory=dict)
    retry_after_s: float | None = None

    _kind: ClassVar[str] = "compare_response.results"

    def __post_init__(self) -> None:
        kind = self._kind
        if self.status not in _COMPARISON_STATUSES:
            raise ProtocolError(
                f"{kind}.status must be one of {list(_COMPARISON_STATUSES)}"
            )
        if not isinstance(self.ranking, (list, tuple)):
            raise ProtocolError(
                f"{kind}.ranking must be a list of [model_id, score] pairs"
            )
        ranking: list[tuple[str, float]] = []
        for i, entry in enumerate(self.ranking):
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ProtocolError(
                    f"{kind}.ranking[{i}] must be a [model_id, score] pair"
                )
            ranking.append(
                (
                    _check_str(kind, f"ranking[{i}][0]", entry[0]),
                    _check_float(kind, f"ranking[{i}][1]", entry[1]),
                )
            )
        object.__setattr__(self, "ranking", tuple(ranking))
        object.__setattr__(
            self, "latency", _check_summary(kind, "latency", self.latency)
        )
        for name in ("pearson", "spearman"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, _check_float(kind, name, value))
        if self.top_k_overlap is not None:
            overlap = _check_float(kind, "top_k_overlap", self.top_k_overlap)
            if not (0.0 <= overlap <= 1.0):
                raise ProtocolError(f"{kind}.top_k_overlap must be in [0, 1]")
            object.__setattr__(self, "top_k_overlap", overlap)
        if self.status == "ok":
            if not self.ranking:
                raise ProtocolError(
                    f"{kind}.ranking is required for an 'ok' comparison"
                )
            if self.retry_after_s is not None:
                raise ProtocolError(
                    f"{kind}.retry_after_s is only valid for a 'shed' comparison"
                )
        else:  # shed
            if self.ranking:
                raise ProtocolError(
                    f"{kind}.ranking must be empty for a 'shed' comparison"
                )
            if (
                self.pearson is not None
                or self.spearman is not None
                or self.top_k_overlap is not None
            ):
                raise ProtocolError(
                    f"{kind} correlations must be null for a 'shed' comparison"
                )
            if self.retry_after_s is None:
                raise ProtocolError(
                    f"{kind}.retry_after_s is required for a 'shed' comparison"
                )
            retry = _check_float(kind, "retry_after_s", self.retry_after_s)
            if retry < 0:
                raise ProtocolError(f"{kind}.retry_after_s must be >= 0")
            object.__setattr__(self, "retry_after_s", retry)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"status": self.status, "latency": dict(self.latency)}
        if self.status == "ok":
            out["ranking"] = [[m, s] for m, s in self.ranking]
            # correlations are omitted (not null) when the reference shed
            for name in ("pearson", "spearman", "top_k_overlap"):
                value = getattr(self, name)
                if value is not None:
                    out[name] = value
        else:
            out["retry_after_s"] = self.retry_after_s
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "StrategyComparison":
        data = _check_payload(
            cls._kind,
            payload,
            {
                "status",
                "ranking",
                "pearson",
                "spearman",
                "top_k_overlap",
                "latency",
                "retry_after_s",
            },
            {"status"},
        )
        return cls(
            status=data["status"],
            ranking=data.get("ranking", ()),
            pearson=data.get("pearson"),
            spearman=data.get("spearman"),
            top_k_overlap=data.get("top_k_overlap"),
            latency=data.get("latency", {}),
            retry_after_s=data.get("retry_after_s"),
        )


@dataclass(frozen=True)
class CompareResponse(_Message):
    """Every strategy's answer for one target, side by side.

    ``results`` maps each fanned-out strategy's canonical spec to its
    :class:`StrategyComparison`; ``reference`` names the spec the
    correlations were computed against (always itself a key of
    ``results``) and ``top_k`` is the resolved overlap depth.
    """

    kind: ClassVar[str] = "compare_response"

    namespace: str
    target: str
    reference: str
    top_k: int
    results: dict[str, StrategyComparison] = field(default_factory=dict)
    request_id: str | None = None

    def __post_init__(self) -> None:
        _check_str(self.kind, "namespace", self.namespace)
        _check_str(self.kind, "target", self.target)
        _check_str(self.kind, "reference", self.reference)
        _check_optional_str(self.kind, "request_id", self.request_id)
        if (
            isinstance(self.top_k, bool)
            or not isinstance(self.top_k, int)
            or self.top_k < 1
        ):
            raise ProtocolError(f"{self.kind}.top_k must be a positive integer")
        if not isinstance(self.results, dict) or not self.results:
            raise ProtocolError(
                f"{self.kind}.results must be a non-empty object of "
                f"strategy spec -> comparison"
            )
        results: dict[str, StrategyComparison] = {}
        for spec, comparison in self.results.items():
            _check_str(self.kind, "results key", spec)
            if isinstance(comparison, dict):
                comparison = StrategyComparison.from_dict(comparison)
            elif not isinstance(comparison, StrategyComparison):
                raise ProtocolError(
                    f"{self.kind}.results[{spec}] must be a comparison "
                    f"object, got {_type_name(comparison)}"
                )
            results[spec] = comparison
        object.__setattr__(self, "results", results)
        if self.reference not in self.results:
            raise ProtocolError(
                f"{self.kind}.reference must name one of the compared "
                f"strategies"
            )

    @classmethod
    def build(
        cls,
        request: CompareRequest,
        reference: str,
        top_k: int,
        results: dict[str, StrategyComparison],
    ) -> "CompareResponse":
        """THE constructor every serving path funnels through."""
        return cls(
            namespace=request.namespace,
            target=request.target,
            reference=reference,
            top_k=top_k,
            results=results,
            request_id=request.request_id,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "namespace": self.namespace,
            "target": self.target,
            "reference": self.reference,
            "top_k": self.top_k,
            "results": {
                spec: comparison.to_dict() for spec, comparison in self.results.items()
            },
        }
        if self.request_id is not None:  # echoed only when requested
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "CompareResponse":
        data = _check_payload(
            cls.kind,
            payload,
            {"namespace", "target", "reference", "top_k", "results", "request_id"},
            {"namespace", "target", "reference", "top_k", "results"},
        )
        return cls(
            namespace=data["namespace"],
            target=data["target"],
            reference=data["reference"],
            top_k=data["top_k"],
            results=data["results"],
            request_id=data.get("request_id"),
        )


@dataclass(frozen=True)
class StatsResponse(_Message):
    """Per-namespace serving summaries plus fleet-wide aggregates.

    ``strategies`` (optional, additive) breaks each namespace down by
    strategy spec with *measured* serving cost — ``fit_ms_p50`` /
    ``fit_ms_p95`` from the router's rolling fit-latency window — the
    numbers ROADMAP item 5's budget retuning reads.  Empty means the
    server predates the field (or has no routers); it is omitted from
    the wire form so pre-observability stats bodies stay byte-stable.
    """

    kind: ClassVar[str] = "stats_response"

    namespaces: dict[str, dict[str, float]] = field(default_factory=dict)
    fleet: dict[str, float] = field(default_factory=dict)
    strategies: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.namespaces, dict):
            raise ProtocolError(f"{self.kind}.namespaces must be an object")
        namespaces = {
            _check_str(self.kind, "namespaces key", name): _check_summary(
                self.kind, f"namespaces[{name}]", summary
            )
            for name, summary in self.namespaces.items()
        }
        object.__setattr__(self, "namespaces", namespaces)
        object.__setattr__(
            self, "fleet", _check_summary(self.kind, "fleet", self.fleet)
        )
        if not isinstance(self.strategies, dict):
            raise ProtocolError(f"{self.kind}.strategies must be an object")
        strategies: dict[str, dict[str, dict[str, float]]] = {}
        for name, per_spec in self.strategies.items():
            _check_str(self.kind, "strategies key", name)
            if not isinstance(per_spec, dict):
                raise ProtocolError(
                    f"{self.kind}.strategies[{name}] must be an object of "
                    f"strategy spec -> summary"
                )
            strategies[name] = {
                _check_str(self.kind, f"strategies[{name}] key", spec): _check_summary(
                    self.kind, f"strategies[{name}][{spec}]", summary
                )
                for spec, summary in per_spec.items()
            }
        object.__setattr__(self, "strategies", strategies)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "namespaces": self.namespaces,
            "fleet": self.fleet,
        }
        if self.strategies:  # omitted stays byte-stable
            out["strategies"] = self.strategies
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "StatsResponse":
        data = _check_payload(
            cls.kind,
            payload,
            {"namespaces", "fleet", "strategies"},
            {"namespaces", "fleet"},
        )
        return cls(
            namespaces=data["namespaces"],
            fleet=data["fleet"],
            strategies=data.get("strategies", {}),
        )


@dataclass(frozen=True)
class ErrorResponse(_Message):
    """A typed failure: machine-readable code, client-safe message.

    ``retry_after_s`` is populated for ``queue_full`` errors with the
    router's adaptive backpressure hint (stats-window p95 fit latency
    scaled by queue depth); clients should wait that long before
    retrying.
    """

    kind: ClassVar[str] = "error"

    code: str
    message: str
    retry_after_s: float | None = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ProtocolError(
                f"{self.kind}.code must be one of {sorted(ERROR_CODES)}"
            )
        _check_str(self.kind, "message", self.message)
        if self.retry_after_s is not None:
            value = _check_float(self.kind, "retry_after_s", self.retry_after_s)
            if value < 0:
                raise ProtocolError(f"{self.kind}.retry_after_s must be >= 0")
            object.__setattr__(self, "retry_after_s", value)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "code": self.code,
            "message": self.message,
        }
        if self.retry_after_s is not None:  # only queue_full carries it
            out["retry_after_s"] = self.retry_after_s
        return out

    @classmethod
    def from_dict(cls, payload: object) -> "ErrorResponse":
        data = _check_payload(
            cls.kind,
            payload,
            {"code", "message", "retry_after_s"},
            {"code", "message"},
        )
        return cls(
            code=data["code"],
            message=data["message"],
            retry_after_s=data.get("retry_after_s"),
        )


#: wire-kind -> message class, for kind-dispatched decoding
MESSAGE_TYPES: dict[str, type[_Message]] = {
    cls.kind: cls
    for cls in (
        RankRequest,
        ScoreBatchRequest,
        CompareRequest,
        RankResponse,
        ScoreBatchResponse,
        CompareResponse,
        StatsResponse,
        ErrorResponse,
    )
}


def message_from_json(text: str | bytes) -> _Message:
    """Decode any protocol message, dispatching on its ``kind`` field."""
    payload = _json_loads("message", text)
    if not isinstance(payload, dict):
        raise ProtocolError("message payload must be a JSON object")
    kind = payload.get("kind")
    # isinstance guard: an unhashable kind (list/object) must be a
    # validation error, not a TypeError out of dict.get
    cls = MESSAGE_TYPES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        shown = repr(kind) if isinstance(kind, str) else _type_name(kind)
        raise ProtocolError(
            f"unknown message kind {shown}; expected one of {sorted(MESSAGE_TYPES)}"
        )
    return cls.from_dict(payload)
