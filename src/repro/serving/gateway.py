"""Multi-tenant selection gateway: N named namespaces, one front door.

A *namespace* is an independently-served zoo under a *strategy map* —
one or more :class:`~repro.strategies.SelectionStrategy` instances, each
with its own warm cache and async router, all sharing the namespace's
registry shard.  The :class:`SelectionGateway` routes typed protocol
requests to the namespace they name and, within it, to the strategy
their optional ``strategy`` field selects:

- registry shards are keyed by ``(namespace, strategy fingerprint)`` —
  on disk, ``<root>/<namespace>/<strategy_fp>/<target>`` — so two
  namespaces never serve each other's artifacts even under identical
  strategies;
- an omitted ``strategy`` field serves the namespace's *default*
  strategy, keeping pre-strategy requests byte-identical; an unknown
  spec raises :class:`~repro.strategies.UnknownStrategyError` (the HTTP
  front door maps it to a typed 404 body), and unknown
  namespaces/targets/models keep their own typed errors;
- :meth:`SelectionGateway.stats` merges every namespace's raw counter
  snapshots — pooled across its strategies — into a fleet-wide summary
  (true percentiles over the pooled latency windows, not averages of
  per-namespace percentiles).

Serving several strategies over one namespace turns the paper's
Table-style comparison into a live workload: the same ``/v1/rank``
request with different ``strategy`` values answers a TG variant, an LR
baseline, and a transferability-only ranker head-to-head.

The gateway is the in-process seam the HTTP front door
(:mod:`repro.serving.http`) sits on: both speak only protocol types.
"""

from __future__ import annotations

import asyncio
import re
from pathlib import Path

from repro.obs import Observability
from repro.serving.compare import build_comparisons
from repro.serving.protocol import (
    DEFAULT_COMPARE_TOP_K,
    CompareRequest,
    CompareResponse,
    RankRequest,
    RankResponse,
    ScoreBatchRequest,
    ScoreBatchResponse,
    StatsResponse,
)
from repro.serving.registry import ArtifactRegistry
from repro.serving.router import (
    AsyncSelectionRouter,
    QueueFullError,
    RouterStats,
)
from repro.serving.service import SelectionService, ServiceStats
from repro.strategies import (
    UnknownStrategyError,
    canonical_spec,
    normalize_spec,
    resolve_strategy,
)

__all__ = [
    "SelectionGateway",
    "UnknownNamespaceError",
    "UnknownTargetError",
    "UnknownModelError",
    "UnknownStrategyError",
]

#: namespace names become registry path segments, so they must be plain
#: slugs — in particular '.'/'..' must not resolve outside the shard root
_NAMESPACE_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")


class UnknownNamespaceError(KeyError):
    """The request names a namespace this gateway does not serve."""

    def __init__(self, namespace: str, known: list[str]):
        super().__init__(f"unknown namespace {namespace!r}; serving {sorted(known)}")
        self.namespace = namespace

    def __str__(self) -> str:  # KeyError str() wraps args in quotes
        return self.args[0]


class UnknownTargetError(KeyError):
    """The namespace exists but its zoo has no such target dataset."""

    def __init__(self, target: str, namespace: str):
        super().__init__(f"unknown target {target!r} in namespace {namespace!r}")
        self.target = target
        self.namespace = namespace

    def __str__(self) -> str:
        return self.args[0]


class UnknownModelError(ValueError):
    """A score_batch pair names a model the namespace's zoo lacks."""

    def __init__(self, model_id: str, namespace: str):
        super().__init__(f"unknown model {model_id!r} in namespace {namespace!r}")
        self.model_id = model_id
        self.namespace = namespace


class _Entry:
    """One strategy of a namespace: its service + router pair."""

    __slots__ = ("service", "router")

    def __init__(self, service: SelectionService, router: AsyncSelectionRouter):
        self.service = service
        self.router = router


class _Namespace:
    """One tenant: a zoo behind a spec-keyed strategy map."""

    def __init__(self, name: str, zoo):
        self.name = name
        self.zoo = zoo
        #: canonical spec -> _Entry; insertion order is registration order
        self.entries: dict[str, _Entry] = {}
        self.default_spec: str | None = None
        # Frozen at registration so per-request validation costs two set
        # probes, not two sorted list rebuilds (zoos are immutable
        # between explicit invalidations).
        self.targets = frozenset(zoo.target_names())
        self.models = frozenset(zoo.model_ids())

    def resolve_spec(self, spec: str | None) -> str:
        """The strategy-map key a request's ``strategy`` field selects.

        Alias spellings route like their canonical form (``random:0`` →
        ``random``), exactly as :func:`repro.strategies.get_strategy`
        would accept them; custom strategies with non-lowercase specs
        match exactly (they have no alias spellings to normalise).
        """
        if spec is None:
            return self.default_spec
        if spec in self.entries:
            return spec
        for candidate in (canonical_spec(spec), normalize_spec(spec)):
            if candidate in self.entries:
                return candidate
        raise UnknownStrategyError(spec, list(self.entries))

    def entry_for(self, spec: str | None) -> _Entry:
        """The (service, router) pair a request's ``strategy`` selects."""
        return self.entries[self.resolve_spec(spec)]

    def specs(self) -> list[str]:
        """Served strategy specs, default first."""
        others = sorted(s for s in self.entries if s != self.default_spec)
        return [self.default_spec, *others]


def _weighted_budget(strategy, max_pending_fits: int) -> int:
    """The cold-fit queue bound a strategy's ``fit_weight`` implies."""
    weight = float(getattr(strategy, "fit_weight", 1.0))
    if weight <= 0:
        raise ValueError(
            f"strategy {strategy.spec!r} has non-positive fit_weight {weight}"
        )
    return max(1, round(max_pending_fits / weight))


def _strategy_budgets(resolved, max_pending_fits: int, fit_budgets) -> dict[str, int]:
    """Per-strategy cold-fit queue bounds for one namespace's routers."""
    if fit_budgets is None:
        return {strat.spec: max_pending_fits for strat in resolved}
    explicit: dict[str, int] = {}
    if fit_budgets != "weighted":
        by_spec = {strat.spec: strat for strat in resolved}
        for spec, bound in dict(fit_budgets).items():
            if spec in by_spec:
                resolved_spec = spec
            elif canonical_spec(spec) in by_spec:
                resolved_spec = canonical_spec(spec)
            else:
                resolved_spec = normalize_spec(spec)
            if resolved_spec not in by_spec:
                raise ValueError(
                    f"fit budget names unknown strategy {spec!r}; "
                    f"namespace serves {sorted(by_spec)}"
                )
            if isinstance(bound, bool) or not isinstance(bound, int) or bound < 1:
                raise ValueError(
                    f"fit budget for {spec!r} must be an integer >= 1, "
                    f"got {bound!r}"
                )
            if resolved_spec in explicit:
                # two alias spellings of one strategy must not silently
                # last-win (same rule add_namespace applies to the map)
                raise ValueError(
                    f"fit budget for {spec!r} duplicates the budget "
                    f"already set for {resolved_spec!r}"
                )
            explicit[resolved_spec] = bound
    return {
        strat.spec: explicit.get(strat.spec, _weighted_budget(strat, max_pending_fits))
        for strat in resolved
    }


class SelectionGateway:
    """Route protocol requests across named (zoo, strategy map) namespaces.

    Parameters
    ----------
    registry_root:
        When given, every namespace added without an explicit registry
        gets the shard ``registry_root / <namespace name>`` (the
        namespace's own fingerprint-keyed registry tree lives below
        that).  ``None`` means namespaces run memory-only unless they
        bring their own registry.
    obs:
        The :class:`~repro.obs.Observability` plane every request is
        traced into (and whose metrics ``GET /v1/metrics`` renders).
        Defaults to a fresh plane with no event log; pass a
        :class:`~repro.obs.NullObservability` to disable collection
        entirely (the overhead benchmark's control arm).
    fleet:
        A started :class:`~repro.fleet.FleetCoordinator` shared by
        every ``fit_executor="socket"`` router the gateway builds.  The
        gateway owns its shutdown: :meth:`close` closes it (dropping
        all registered ``repro fit-worker`` daemons), and
        ``/v1/healthz`` lists its live fleet.
    """

    def __init__(
        self,
        registry_root: str | Path | None = None,
        *,
        obs: Observability | None = None,
        fleet=None,
    ):
        self._registry_root = Path(registry_root) if registry_root is not None else None
        self.obs = obs if obs is not None else Observability()
        self.fleet = fleet
        self._namespaces: dict[str, _Namespace] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # namespace management
    # ------------------------------------------------------------------ #
    def add_namespace(self, name: str, zoo,
                      strategy=None, *,
                      strategies: tuple = (),
                      registry: ArtifactRegistry | None = None,
                      cache_size: int = 32,
                      max_pending_fits: int = 8,
                      fit_budgets=None,
                      overflow: str = "reject",
                      retry_after_s: float = 0.5,
                      fit_workers: int = 2,
                      predict_workers: int = 4,
                      shed_start: float = 1.0,
                      fit_executor: str | None = None,
                      fit_timeout_s: float | None = None
                      ) -> SelectionService:
        """Register one namespace; returns its *default* service.

        ``strategy`` is the namespace's default (anything
        :func:`repro.strategies.resolve_strategy` accepts — strategy
        instance, spec string, TG config, or ``None`` for TG defaults);
        ``strategies`` adds further rankers to the namespace's map, each
        served under its canonical spec.  Every strategy shares the
        namespace's registry shard — artifacts stay disjoint because
        the shard is keyed by strategy fingerprint below that.

        ``fit_budgets`` sets *per-strategy* cold-fit queue bounds so a
        storm of heavy fits (a TG variant during a compare fan-out)
        cannot starve the ~ms strategies behind the same namespace:

        - ``None`` (default) — every strategy's router gets
          ``max_pending_fits``, the pre-budget behaviour;
        - ``"weighted"`` — each router gets ``max(1, round(
          max_pending_fits / strategy.fit_weight))`` slots, so heavy
          strategies (``fit_weight > 1``) queue shallow and cheap ones
          (``fit_weight < 1``) queue deep;
        - a ``{spec: bound}`` mapping — explicit bounds for the named
          strategies (alias spellings accepted), weighted defaults for
          the rest; a spec naming no registered strategy is a
          :class:`ValueError` (an ignored typo would silently serve the
          wrong budget).

        ``fit_executor`` selects where every router in the namespace
        runs its cold fits: ``"thread"`` (in-process pool),
        ``"process"`` (the :mod:`repro.serving.fit_plane` worker pool —
        true multi-core fitting), ``"socket"`` (the gateway's shared
        :class:`~repro.fleet.FleetCoordinator` dispatching to
        ``repro fit-worker`` daemons; requires the gateway's ``fleet``),
        or ``None`` to follow the ``REPRO_FIT_EXECUTOR`` environment
        default.  ``fit_timeout_s`` bounds a process/socket-mode fit
        before its coalesced group is shed with a typed error.
        """
        if not _NAMESPACE_NAME.fullmatch(name):
            raise ValueError(
                f"namespace name {name!r} must match "
                f"{_NAMESPACE_NAME.pattern!r} (it becomes a registry "
                "path segment)"
            )
        if name in self._namespaces:
            raise ValueError(f"namespace {name!r} already registered")
        if registry is None and self._registry_root is not None:
            registry = ArtifactRegistry(self._registry_root / name)

        ns = _Namespace(name, zoo)
        resolved = [resolve_strategy(strategy)]
        resolved += [resolve_strategy(s) for s in strategies]
        budgets = _strategy_budgets(resolved, max_pending_fits, fit_budgets)
        for strat in resolved:
            if strat.spec in ns.entries:
                raise ValueError(
                    f"strategy {strat.spec!r} registered twice in "
                    f"namespace {name!r}"
                )
            service = SelectionService(
                zoo, strat, registry=registry, cache_size=cache_size
            )
            router = AsyncSelectionRouter(
                service,
                max_pending_fits=budgets[strat.spec],
                overflow=overflow,
                retry_after_s=retry_after_s,
                fit_workers=fit_workers,
                predict_workers=predict_workers,
                shed_start=shed_start,
                fit_executor=fit_executor,
                fit_timeout_s=fit_timeout_s,
                fleet=self.fleet,
            )
            ns.entries[strat.spec] = _Entry(service, router)
            self.obs.watch_queue_depth(
                name, strat.spec, lambda r=router: r.pending_fits
            )
        ns.default_spec = resolved[0].spec
        self._namespaces[name] = ns
        return ns.entries[ns.default_spec].service

    def namespaces(self) -> list[str]:
        return sorted(self._namespaces)

    def strategies(self, namespace: str) -> list[str]:
        """Strategy specs a namespace serves, default first."""
        return self._get(namespace).specs()

    def service(self, namespace: str, strategy: str | None = None) -> SelectionService:
        return self._get(namespace).entry_for(strategy).service

    def router(
        self, namespace: str, strategy: str | None = None
    ) -> AsyncSelectionRouter:
        return self._get(namespace).entry_for(strategy).router

    def _get(self, namespace: str) -> _Namespace:
        ns = self._namespaces.get(namespace)
        if ns is None:
            raise UnknownNamespaceError(namespace, list(self._namespaces))
        return ns

    # ------------------------------------------------------------------ #
    # protocol entry points
    # ------------------------------------------------------------------ #
    def _check_names(self, ns: _Namespace, targets: set[str], models: set[str]) -> None:
        """Typed 404/400-able errors instead of service KeyErrors.

        Targets are checked against the zoo's *target* roster (the same
        contract ``repro rank`` enforces) — source datasets are rankable
        in principle but not served, so clients cannot burn fit-queue
        capacity on them.
        """
        unknown_targets = targets - ns.targets
        if unknown_targets:
            raise UnknownTargetError(sorted(unknown_targets)[0], ns.name)
        unknown_models = models - ns.models
        if unknown_models:
            raise UnknownModelError(sorted(unknown_models)[0], ns.name)

    async def rank(
        self, request: RankRequest, *, request_id: str | None = None
    ) -> RankResponse:
        ns = self._get(request.namespace)
        spec = ns.resolve_spec(request.strategy)
        self._check_names(ns, {request.target}, set())
        # request_id kwarg: transport-level id (X-Request-Id header);
        # the body field wins so the response echo matches the request
        with self.obs.request(
            "rank",
            namespace=ns.name,
            strategy=spec,
            request_id=request.request_id or request_id,
        ):
            return await ns.entries[spec].router.handle(request)

    async def score_batch(
        self, request: ScoreBatchRequest, *, request_id: str | None = None
    ) -> ScoreBatchResponse:
        ns = self._get(request.namespace)
        spec = ns.resolve_spec(request.strategy)
        self._check_names(
            ns, {t for _, t in request.pairs}, {m for m, _ in request.pairs}
        )
        with self.obs.request(
            "score_batch",
            namespace=ns.name,
            strategy=spec,
            request_id=request.request_id or request_id,
        ):
            return await ns.entries[spec].router.handle(request)

    async def compare(
        self, request: CompareRequest, *, request_id: str | None = None
    ) -> CompareResponse:
        """Fan one target across a namespace's strategy map, concurrently.

        Every fanned-out strategy answers through its *own* router, so
        the per-strategy single-flight coalescing, queue bounds, and
        shedding semantics hold exactly as they would for independent
        ``/v1/rank`` traffic.  A strategy shed by its router's
        backpressure is marked ``"shed"`` in the response (with its
        ``retry_after_s`` hint) instead of failing the whole comparison;
        any other failure propagates — a broken strategy is a server
        bug, not a partial answer.
        """
        ns = self._get(request.namespace)
        self._check_names(ns, {request.target}, set())
        reference = ns.resolve_spec(request.reference)
        if request.strategies is None:
            specs = ns.specs()
        else:
            specs = []
            for spec in request.strategies:
                resolved = ns.resolve_spec(spec)
                if resolved not in specs:
                    specs.append(resolved)
            if reference not in specs:  # correlations need its ranking
                specs.insert(0, reference)
        top_k = min(request.top_k or DEFAULT_COMPARE_TOP_K, len(ns.models))

        async def fan_out(spec: str):
            try:
                return await ns.entries[spec].router.rank(request.target)
            except QueueFullError as exc:
                return exc

        # one trace covers the whole fan-out: gather's subtasks copy the
        # context at creation, so every strategy's fit/predict spans
        # attach to this compare request (outcome = most severe fanned)
        with self.obs.request(
            "compare",
            namespace=ns.name,
            strategy="map",
            request_id=request.request_id or request_id,
        ):
            answers = await asyncio.gather(*(fan_out(spec) for spec in specs))
        rankings: dict[str, list] = {}
        sheds: dict[str, float] = {}
        for spec, answer in zip(specs, answers):
            if isinstance(answer, QueueFullError):
                sheds[spec] = float(answer.retry_after_s)
            else:
                rankings[spec] = answer
        latencies = {spec: ns.entries[spec].router.latency_summary() for spec in specs}
        results = build_comparisons(
            rankings, sheds, reference=reference, top_k=top_k, latencies=latencies
        )
        return CompareResponse.build(request, reference, top_k, results)

    async def handle(self, request):
        """Dispatch one protocol request to its namespace's router(s)."""
        if isinstance(request, RankRequest):
            return await self.rank(request)
        if isinstance(request, ScoreBatchRequest):
            return await self.score_batch(request)
        if isinstance(request, CompareRequest):
            return await self.compare(request)
        raise TypeError(f"unsupported request type {type(request).__name__}")

    async def warmup(self, namespace: str | None = None) -> dict[str, dict[str, float]]:
        """Pre-fit targets — one namespace or all; seconds per target.

        Every strategy in a namespace's map is warmed; per-target
        seconds sum across strategies.
        """
        names = [namespace] if namespace is not None else self.namespaces()
        out: dict[str, dict[str, float]] = {}
        for name in names:
            ns = self._get(name)
            totals: dict[str, float] = {}
            for entry in ns.entries.values():
                for target, seconds in (await entry.router.warmup()).items():
                    totals[target] = totals.get(target, 0.0) + seconds
            out[name] = totals
        return out

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def stats(self) -> StatsResponse:
        """Per-namespace summaries + fleet-wide aggregate.

        Each namespace row pools its strategies' *raw* snapshots, and
        the fleet row pools every namespace — counters sum, latency
        windows extend — so all percentiles are computed over every
        query, not averaged from partial percentiles.  The additive
        ``strategies`` block breaks each namespace down by spec with its
        *measured* fit cost (``fit_ms_p50``/``fit_ms_p95``).
        """
        per_namespace: dict[str, dict[str, float]] = {}
        fleet_service, fleet_router = ServiceStats(), RouterStats()
        for name, ns in sorted(self._namespaces.items()):
            ns_service, ns_router = ServiceStats(), RouterStats()
            for entry in ns.entries.values():
                service_snap, router_snap = entry.router.stats_snapshot()
                ns_service.merge(service_snap)
                ns_router.merge(router_snap)
            per_namespace[name] = {**ns_service.summary(), **ns_router.summary()}
            fleet_service.merge(ns_service)
            fleet_router.merge(ns_router)
        fleet = {
            **fleet_service.summary(),
            **fleet_router.summary(),
            "namespaces": float(len(self._namespaces)),
        }
        return StatsResponse(
            namespaces=per_namespace, fleet=fleet, strategies=self.fit_costs()
        )

    def fit_costs(self) -> dict[str, dict[str, dict[str, float]]]:
        """Measured per-strategy fit cost: namespace -> spec -> summary.

        Embedded in ``/v1/stats`` (the ``strategies`` block) and the
        healthz listing, pairing every declared ``fit_weight`` with the
        fit latency its router actually observed.
        """
        return {
            name: {
                spec: ns.entries[spec].router.fit_cost_summary()
                for spec in ns.specs()
            }
            for name, ns in sorted(self._namespaces.items())
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def prestart_fit_planes(self) -> int:
        """Ready every remote fit plane now.

        Process-mode routers spawn their worker pools (otherwise lazily
        charged to an unlucky first request); the shared socket fleet —
        counted once, not per router — reports its live ``fit-worker``
        daemons.  Returns the number of workers confirmed live (0 when
        every router runs the thread executor).
        """
        started = 0
        for ns in self._namespaces.values():
            for entry in ns.entries.values():
                if entry.router.fit_executor != "socket":
                    started += entry.router.prestart_fit_plane()
        if self.fleet is not None:
            started += self.fleet.prestart()
        return started

    def fleet_summary(self) -> dict | None:
        """The fleet coordinator's live snapshot; None without a fleet."""
        return None if self.fleet is None else self.fleet.fleet_summary()

    def close(self) -> None:
        """Shut every namespace's routers (and the fleet) down; idempotent."""
        if not self._closed:
            self._closed = True
            for ns in self._namespaces.values():
                for entry in ns.entries.values():
                    entry.router.close()
            if self.fleet is not None:
                self.fleet.close()

    async def __aenter__(self) -> "SelectionGateway":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()
