"""Multi-tenant selection gateway: N named namespaces, one front door.

A *namespace* is an independently-served (zoo, config) pair — one
modality's zoo under one :class:`~repro.core.TransferGraphConfig` —
with its own registry shard, warm cache, and async router.  The
:class:`SelectionGateway` routes typed protocol requests to the
namespace they name:

- registry shards are keyed by ``(namespace, config fingerprint)`` —
  on disk, ``<root>/<namespace>/<config_fp>/<target>`` — so two
  namespaces never serve each other's artifacts even under identical
  configs;
- unknown namespaces raise :class:`UnknownNamespaceError` (the HTTP
  front door maps it to a typed 404 body), unknown targets/models get
  their own typed errors instead of leaking service internals;
- :meth:`SelectionGateway.stats` merges every namespace's raw counter
  snapshots into a fleet-wide summary (true percentiles over the pooled
  latency windows, not averages of per-namespace percentiles).

The gateway is the in-process seam the HTTP front door
(:mod:`repro.serving.http`) sits on: both speak only protocol types.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core import TransferGraphConfig
from repro.serving.protocol import (
    RankRequest,
    RankResponse,
    ScoreBatchRequest,
    ScoreBatchResponse,
    StatsResponse,
)
from repro.serving.registry import ArtifactRegistry
from repro.serving.router import AsyncSelectionRouter, RouterStats
from repro.serving.service import SelectionService, ServiceStats

__all__ = ["SelectionGateway", "UnknownNamespaceError", "UnknownTargetError",
           "UnknownModelError"]

#: namespace names become registry path segments, so they must be plain
#: slugs — in particular '.'/'..' must not resolve outside the shard root
_NAMESPACE_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")


class UnknownNamespaceError(KeyError):
    """The request names a namespace this gateway does not serve."""

    def __init__(self, namespace: str, known: list[str]):
        super().__init__(
            f"unknown namespace {namespace!r}; serving {sorted(known)}")
        self.namespace = namespace

    def __str__(self) -> str:  # KeyError str() wraps args in quotes
        return self.args[0]


class UnknownTargetError(KeyError):
    """The namespace exists but its zoo has no such target dataset."""

    def __init__(self, target: str, namespace: str):
        super().__init__(
            f"unknown target {target!r} in namespace {namespace!r}")
        self.target = target
        self.namespace = namespace

    def __str__(self) -> str:
        return self.args[0]


class UnknownModelError(ValueError):
    """A score_batch pair names a model the namespace's zoo lacks."""

    def __init__(self, model_id: str, namespace: str):
        super().__init__(
            f"unknown model {model_id!r} in namespace {namespace!r}")
        self.model_id = model_id
        self.namespace = namespace


class _Namespace:
    """One tenant: a service + router pair under a name."""

    def __init__(self, name: str, service: SelectionService,
                 router: AsyncSelectionRouter):
        self.name = name
        self.service = service
        self.router = router
        # Frozen at registration so per-request validation costs two set
        # probes, not two sorted list rebuilds (zoos are immutable
        # between explicit invalidations).
        self.targets = frozenset(service.zoo.target_names())
        self.models = frozenset(service.zoo.model_ids())


class SelectionGateway:
    """Route protocol requests across named (zoo, config) namespaces.

    Parameters
    ----------
    registry_root:
        When given, every namespace added without an explicit registry
        gets the shard ``registry_root / <namespace name>`` (the
        namespace's own fingerprint-keyed registry tree lives below
        that).  ``None`` means namespaces run memory-only unless they
        bring their own registry.
    """

    def __init__(self, registry_root: str | Path | None = None):
        self._registry_root = (
            Path(registry_root) if registry_root is not None else None)
        self._namespaces: dict[str, _Namespace] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # namespace management
    # ------------------------------------------------------------------ #
    def add_namespace(self, name: str, zoo,
                      config: TransferGraphConfig | None = None, *,
                      registry: ArtifactRegistry | None = None,
                      cache_size: int = 32,
                      max_pending_fits: int = 8,
                      overflow: str = "reject",
                      retry_after_s: float = 0.5,
                      fit_workers: int = 2,
                      predict_workers: int = 4) -> SelectionService:
        """Register one namespace; returns its service (e.g. for warmup)."""
        if not _NAMESPACE_NAME.fullmatch(name):
            raise ValueError(
                f"namespace name {name!r} must match "
                f"{_NAMESPACE_NAME.pattern!r} (it becomes a registry "
                "path segment)")
        if name in self._namespaces:
            raise ValueError(f"namespace {name!r} already registered")
        if registry is None and self._registry_root is not None:
            registry = ArtifactRegistry(self._registry_root / name)
        service = SelectionService(zoo, config, registry=registry,
                                   cache_size=cache_size)
        router = AsyncSelectionRouter(
            service, max_pending_fits=max_pending_fits, overflow=overflow,
            retry_after_s=retry_after_s, fit_workers=fit_workers,
            predict_workers=predict_workers)
        self._namespaces[name] = _Namespace(name, service, router)
        return service

    def namespaces(self) -> list[str]:
        return sorted(self._namespaces)

    def service(self, namespace: str) -> SelectionService:
        return self._get(namespace).service

    def router(self, namespace: str) -> AsyncSelectionRouter:
        return self._get(namespace).router

    def _get(self, namespace: str) -> _Namespace:
        ns = self._namespaces.get(namespace)
        if ns is None:
            raise UnknownNamespaceError(namespace, list(self._namespaces))
        return ns

    # ------------------------------------------------------------------ #
    # protocol entry points
    # ------------------------------------------------------------------ #
    def _check_names(self, ns: _Namespace, targets: set[str],
                     models: set[str]) -> None:
        """Typed 404/400-able errors instead of service KeyErrors.

        Targets are checked against the zoo's *target* roster (the same
        contract ``repro rank`` enforces) — source datasets are rankable
        in principle but not served, so clients cannot burn fit-queue
        capacity on them.
        """
        unknown_targets = targets - ns.targets
        if unknown_targets:
            raise UnknownTargetError(sorted(unknown_targets)[0], ns.name)
        unknown_models = models - ns.models
        if unknown_models:
            raise UnknownModelError(sorted(unknown_models)[0], ns.name)

    async def rank(self, request: RankRequest) -> RankResponse:
        ns = self._get(request.namespace)
        self._check_names(ns, {request.target}, set())
        return await ns.router.handle(request)

    async def score_batch(self, request: ScoreBatchRequest
                          ) -> ScoreBatchResponse:
        ns = self._get(request.namespace)
        self._check_names(ns, {t for _, t in request.pairs},
                          {m for m, _ in request.pairs})
        return await ns.router.handle(request)

    async def handle(self, request: RankRequest | ScoreBatchRequest):
        """Dispatch one protocol request to its namespace's router."""
        if isinstance(request, RankRequest):
            return await self.rank(request)
        if isinstance(request, ScoreBatchRequest):
            return await self.score_batch(request)
        raise TypeError(
            f"unsupported request type {type(request).__name__}")

    async def warmup(self, namespace: str | None = None
                     ) -> dict[str, dict[str, float]]:
        """Pre-fit targets — one namespace or all; seconds per target."""
        names = [namespace] if namespace is not None else self.namespaces()
        out: dict[str, dict[str, float]] = {}
        for name in names:
            out[name] = await self._get(name).router.warmup()
        return out

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def stats(self) -> StatsResponse:
        """Per-namespace summaries + fleet-wide aggregate.

        The fleet row merges *raw* snapshots — counters sum, latency
        windows pool — so fleet percentiles are computed over every
        query, not averaged from per-namespace percentiles.
        """
        per_namespace: dict[str, dict[str, float]] = {}
        fleet_service, fleet_router = ServiceStats(), RouterStats()
        for name, ns in sorted(self._namespaces.items()):
            service_snap, router_snap = ns.router.stats_snapshot()
            per_namespace[name] = {**service_snap.summary(),
                                   **router_snap.summary()}
            fleet_service.merge(service_snap)
            fleet_router.merge(router_snap)
        fleet = {**fleet_service.summary(), **fleet_router.summary(),
                 "namespaces": float(len(self._namespaces))}
        return StatsResponse(namespaces=per_namespace, fleet=fleet)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut every namespace's router down; idempotent."""
        if not self._closed:
            self._closed = True
            for ns in self._namespaces.values():
                ns.router.close()

    async def __aenter__(self) -> "SelectionGateway":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()
