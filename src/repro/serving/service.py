"""Warm-start selection serving: cached fitted pipelines behind one facade.

:class:`SelectionService` answers ranking and scoring queries without
refitting anything on the hot path:

- an in-memory LRU keyed by (target, config fingerprint) holds revived
  :class:`~repro.core.FittedTransferGraph` pipelines;
- on a cache miss the service tries the on-disk
  :class:`~repro.serving.ArtifactRegistry` (stale artifacts are refit,
  never served);
- on a registry miss it fits from scratch and writes the artifact
  through to the registry so the next process starts warm.

Every query is timed and counted; :meth:`SelectionService.stats` exposes
hit rates and latency percentiles.  The service is deliberately
single-threaded — the async request router is tracked in ROADMAP.md.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.core import FittedTransferGraph, TransferGraph, TransferGraphConfig
from repro.serving.artifacts import ArtifactError
from repro.serving.fingerprint import config_fingerprint
from repro.serving.registry import ArtifactRegistry

__all__ = ["SelectionService", "ServiceStats", "LATENCY_WINDOW"]

#: rolling window of per-query latencies kept for percentile reporting —
#: bounds the memory of a long-running service at ~0.8 MB
LATENCY_WINDOW = 100_000

_COUNTER_FIELDS = ("queries", "cache_hits", "cache_misses",
                   "registry_hits", "fits", "evictions", "invalidations")


@dataclass
class ServiceStats:
    """Counters and latencies accumulated by a :class:`SelectionService`."""

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    registry_hits: int = 0
    fits: int = 0
    evictions: int = 0
    invalidations: int = 0
    latencies_ms: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW), repr=False)

    def hit_rate(self) -> float:
        """Fraction of fitted-pipeline lookups served from memory."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def latency_percentile(self, q: float) -> float:
        """q-th percentile (0-100) of per-query latency in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def copy(self) -> "ServiceStats":
        out = ServiceStats(**{f: getattr(self, f) for f in _COUNTER_FIELDS})
        out.latencies_ms.extend(self.latencies_ms)
        return out

    def since(self, earlier: "ServiceStats") -> "ServiceStats":
        """Counters/latencies accumulated after the ``earlier`` snapshot.

        Each query appends exactly one latency, so the delta's latencies
        are the last ``queries`` entries (bounded by the rolling window).
        """
        out = ServiceStats(**{f: getattr(self, f) - getattr(earlier, f)
                              for f in _COUNTER_FIELDS})
        if out.queries > 0:
            out.latencies_ms.extend(list(self.latencies_ms)[-out.queries:])
        return out

    def summary(self) -> dict[str, float]:
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "registry_hits": self.registry_hits,
            "fits": self.fits,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate(),
            "p50_ms": self.latency_percentile(50),
            "p95_ms": self.latency_percentile(95),
            "max_ms": max(self.latencies_ms, default=0.0),
        }


class SelectionService:
    """Serve ``rank`` / ``score_batch`` queries from warm fitted artifacts."""

    def __init__(self, zoo, config: TransferGraphConfig | None = None,
                 registry: ArtifactRegistry | None = None,
                 cache_size: int = 32):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.zoo = zoo
        self.config = config or TransferGraphConfig()
        self.strategy = TransferGraph(self.config)
        self.registry = registry
        self.cache_size = cache_size
        self._config_fp = config_fingerprint(self.config)
        self._cache: OrderedDict[tuple[str, str], FittedTransferGraph] = \
            OrderedDict()
        self._stats = ServiceStats()

    # ------------------------------------------------------------------ #
    def _check_target(self, target: str) -> None:
        if target not in self.zoo.dataset_names():
            raise KeyError(f"unknown dataset {target!r}; known: "
                           f"{self.zoo.dataset_names()}")

    def _fitted(self, target: str) -> FittedTransferGraph:
        """Fitted pipeline for ``target``: memory → registry → fresh fit."""
        key = (target, self._config_fp)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._stats.cache_hits += 1
            return cached
        self._stats.cache_misses += 1
        self._check_target(target)

        fitted: FittedTransferGraph | None = None
        if self.registry is not None:
            try:
                fitted = self.registry.load(target, self.config, self.zoo)
                self._stats.registry_hits += 1
            except ArtifactError:
                fitted = None  # absent or stale: fall through to a fit
        if fitted is None:
            fitted = self.strategy.fit(self.zoo, target)
            self._stats.fits += 1
            if self.registry is not None:
                self.registry.save(fitted, self.config, self.zoo)

        self._cache[key] = fitted
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self._stats.evictions += 1
        return fitted

    def _record(self, started: float) -> None:
        self._stats.queries += 1
        self._stats.latencies_ms.append((time.perf_counter() - started) * 1e3)

    # ------------------------------------------------------------------ #
    def rank(self, target: str, top_k: int | None = None
             ) -> list[tuple[str, float]]:
        """Models ranked for ``target``, best first (optionally truncated)."""
        started = time.perf_counter()
        ranking = self._fitted(target).rank(self.zoo.model_ids())
        self._record(started)
        return ranking if top_k is None else ranking[:top_k]

    def score_batch(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Predicted scores for (model, target) pairs, aligned to input.

        Pairs are grouped by target so each target's pipeline is looked
        up once and predicts its models in a single batched call.
        """
        started = time.perf_counter()
        if not pairs:
            self._record(started)
            return np.empty(0)
        by_target: dict[str, list[int]] = {}
        for i, (_, target) in enumerate(pairs):
            by_target.setdefault(target, []).append(i)
        out = np.empty(len(pairs))
        for target, indices in by_target.items():
            fitted = self._fitted(target)
            out[indices] = fitted.predict([pairs[i][0] for i in indices])
        self._record(started)
        return out

    # ------------------------------------------------------------------ #
    def warmup(self, targets: list[str] | None = None) -> dict[str, float]:
        """Pre-fit pipelines (write-through to the registry if configured).

        Returns seconds spent per target.  Warmup populates the caches
        but does not count as query traffic.
        """
        out: dict[str, float] = {}
        for target in (targets if targets is not None
                       else self.zoo.target_names()):
            started = time.perf_counter()
            self._fitted(target)
            out[target] = time.perf_counter() - started
        return out

    def invalidate(self, target: str) -> None:
        """Drop ``target``'s pipeline from memory and the registry.

        Call after catalog updates (new history rows, new models) so the
        next query refits against fresh ground truth.
        """
        self._cache.pop((target, self._config_fp), None)
        if self.registry is not None:
            self.registry.delete(target, self.config)
        self._stats.invalidations += 1

    def stats(self) -> dict[str, float]:
        """Counter + latency summary since construction (or last reset)."""
        return self._stats.summary()

    def stats_snapshot(self) -> ServiceStats:
        """A copy of the raw counters, e.g. to diff around a workload."""
        return self._stats.copy()

    def reset_stats(self) -> None:
        self._stats = ServiceStats()
