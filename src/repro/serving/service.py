"""Warm-start selection serving: cached fitted pipelines behind one facade.

:class:`SelectionService` serves exactly one
:class:`~repro.strategies.SelectionStrategy` — any ranker behind the
unified fit/rank/pack API: a TransferGraph variant, an LR baseline, a
transferability-only scorer, ... — and answers ranking and scoring
queries without refitting anything on the hot path:

- an in-memory LRU keyed by (target, strategy fingerprint) holds
  revived fitted pipelines (:class:`~repro.core.FittedTransferGraph`,
  :class:`~repro.strategies.FittedScoreTable`, ...);
- on a cache miss the service tries the on-disk
  :class:`~repro.serving.ArtifactRegistry` (stale artifacts are refit,
  never served);
- on a registry miss it fits from scratch and writes the artifact
  through to the registry so the next process starts warm.

Every query is timed and counted; :meth:`SelectionService.stats` exposes
hit rates and latency percentiles.  The synchronous entry points stay
single-threaded, but the cache/stat primitives (:meth:`cache_get`,
:meth:`load_or_fit`, :meth:`record_query`) take an internal lock so the
async router in :mod:`repro.serving.router` can drive one service from a
thread pool: bookkeeping is serialised while the expensive fit itself
runs outside the lock (the router's single-flight coalescing guarantees
at most one in-flight fit per cache key).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.obs import record_cache, set_outcome, span
from repro.strategies.artifacts import ArtifactError
from repro.serving.protocol import (
    RankRequest,
    RankResponse,
    ScoreBatchRequest,
    ScoreBatchResponse,
)
from repro.serving.registry import ArtifactRegistry
from repro.strategies import (
    UnknownStrategyError,
    canonical_spec,
    normalize_spec,
    resolve_strategy,
)

__all__ = ["SelectionService", "ServiceStats", "LATENCY_WINDOW"]

#: rolling window of per-query latencies kept for percentile reporting —
#: bounds the memory of a long-running service at ~0.8 MB
LATENCY_WINDOW = 100_000

_COUNTER_FIELDS = (
    "queries",
    "cache_hits",
    "cache_misses",
    "registry_hits",
    "fits",
    "refreshes",
    "evictions",
    "invalidations",
)


@dataclass
class ServiceStats:
    """Counters and latencies accumulated by a :class:`SelectionService`."""

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    registry_hits: int = 0
    fits: int = 0
    refreshes: int = 0
    evictions: int = 0
    invalidations: int = 0
    latencies_ms: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW), repr=False
    )

    def hit_rate(self) -> float:
        """Fraction of fitted-pipeline lookups served from memory."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def latency_percentile(self, q: float) -> float:
        """q-th percentile (0-100) of per-query latency in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def copy(self) -> "ServiceStats":
        out = ServiceStats(**{f: getattr(self, f) for f in _COUNTER_FIELDS})
        out.latencies_ms.extend(self.latencies_ms)
        return out

    def since(self, earlier: "ServiceStats") -> "ServiceStats":
        """Counters/latencies accumulated after the ``earlier`` snapshot.

        Each query appends exactly one latency, so the delta's latencies
        are the last ``queries`` entries (bounded by the rolling window).
        """
        out = ServiceStats(
            **{f: getattr(self, f) - getattr(earlier, f) for f in _COUNTER_FIELDS}
        )
        if out.queries > 0:
            out.latencies_ms.extend(list(self.latencies_ms)[-out.queries:])
        return out

    def merge(self, other: "ServiceStats") -> "ServiceStats":
        """Pool another snapshot in: counters sum, latency windows extend.

        Used for fleet-wide aggregation across gateway namespaces —
        percentiles of the merged window are true pooled percentiles,
        not averages of per-namespace ones.
        """
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.latencies_ms.extend(other.latencies_ms)
        return self

    def latency_summary(self) -> dict[str, float]:
        """The per-query latency slice of :meth:`summary` alone.

        Compare responses embed this per strategy (the protocol's
        ``StrategyComparison.latency``), so it stays a flat name->float
        map of rolling stats-window percentiles — and it is computed in
        *one* pass over the window (a single ``np.percentile`` call),
        because ``/v1/compare`` recomputes it per strategy per request.
        """
        if not self.latencies_ms:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0}
        window = np.asarray(self.latencies_ms)
        p50, p95 = np.percentile(window, (50, 95))
        return {
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "max_ms": float(window.max()),
        }

    def summary(self) -> dict[str, float]:
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "registry_hits": self.registry_hits,
            "fits": self.fits,
            "refreshes": self.refreshes,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate(),
            **self.latency_summary(),
        }


class SelectionService:
    """Serve ``rank`` / ``score_batch`` queries from warm fitted artifacts.

    ``strategy`` is anything :func:`repro.strategies.resolve_strategy`
    accepts: a :class:`~repro.strategies.SelectionStrategy`, a spec
    string (``"logme"``, ``"tg:lr,n2v,all"``), a bare
    :class:`~repro.core.TransferGraphConfig` (the pre-redesign
    signature), or ``None`` for TG defaults.
    """

    def __init__(
        self,
        zoo,
        strategy=None,
        registry: ArtifactRegistry | None = None,
        cache_size: int = 32,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.zoo = zoo
        self.strategy = resolve_strategy(strategy)
        #: the underlying TransferGraphConfig for TG-family strategies,
        #: ``None`` for strategies without one (e.g. transferability)
        self.config = getattr(self.strategy, "config", None)
        self.registry = registry
        self.cache_size = cache_size
        self._config_fp = self.strategy.fingerprint()
        # guarded by: self._lock
        self._cache: OrderedDict[tuple[str, str], object] = OrderedDict()
        #: catalog mutation-seq snapshot per cache key, taken when the
        #: pipeline landed in the cache — the "since" for incremental
        #: refresh.  guarded by: self._lock
        self._fit_seqs: dict[tuple[str, str], int] = {}
        self._stats = ServiceStats()  # guarded by: self._lock
        #: guards cache order/content and stat counters; never held across
        #: a fit or registry I/O
        self._lock = threading.Lock()
        #: callables invoked (outside the lock) with the list of cache
        #: keys each LRU eviction / invalidation dropped — the router
        #: hangs per-key state (predict locks) off cache entries and must
        #: release it when the entry goes, or it leaks per target
        self._eviction_listeners: list = []

    def add_eviction_listener(self, listener) -> None:
        """Register ``listener(keys)`` to run after cache entries drop.

        Called with the ``(target, config_fp)`` keys removed by an LRU
        eviction or :meth:`invalidate`, after the service lock is
        released.  Listeners must be cheap and must not raise.
        """
        self._eviction_listeners.append(listener)

    def _notify_evicted(self, keys: list[tuple[str, str]]) -> None:
        if keys:
            for listener in self._eviction_listeners:
                listener(keys)

    @property
    def config_fp(self) -> str:
        """Fingerprint of this service's strategy (the cache-key suffix)."""
        return self._config_fp

    def check_strategy(self, spec: str | None) -> None:
        """Validate a request's optional ``strategy`` field.

        A single-strategy service answers only its own spec (or an
        omitted field); multi-strategy routing is the gateway's job.
        Alias spellings of the served spec pass (``random:0`` for
        ``random``), matching what ``get_strategy`` accepts; custom
        non-lowercase specs match exactly.
        """
        if (
            spec is None
            or spec == self.strategy.spec
            or canonical_spec(spec) == self.strategy.spec
        ):
            return
        if normalize_spec(spec) != self.strategy.spec:
            raise UnknownStrategyError(spec, [self.strategy.spec])

    # ------------------------------------------------------------------ #
    def _check_target(self, target: str) -> None:
        if target not in self.zoo.dataset_names():
            raise KeyError(
                f"unknown dataset {target!r}; known: {self.zoo.dataset_names()}"
            )

    def cache_get(self, target: str):
        """In-memory lookup with hit/miss accounting; ``None`` on a miss.

        Thread-safe.  Raises :class:`KeyError` for unknown targets (a hit
        is impossible for one, so the check only runs on the miss path).
        """
        key = (target, self._config_fp)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._stats.cache_hits += 1
            else:
                self._stats.cache_misses += 1
        record_cache(hit=cached is not None)  # no-op without a trace
        if cached is not None:
            return cached
        self._check_target(target)
        return None

    def load_or_fit(self, target: str, *, remote_fit=None):
        """Registry revive → fresh fit, then insert into the LRU.

        The caller is responsible for single-flight per cache key (the
        serial facade trivially is; the async router coalesces); stats
        and cache mutations are lock-guarded, the heavy work is not.

        ``remote_fit`` replaces the in-process ``strategy.fit`` with a
        callable returning the *packed* artifact —
        ``remote_fit(strategy, zoo, target) -> (meta, arrays)`` — which
        is how the router's process fit plane delivers a fit: the
        pipeline is revived here via ``strategy.unpack`` (against this
        process's zoo) and the worker's exact payload is written through
        to the registry, so thread- and process-fitted artifacts are
        byte-identical.
        """
        set_outcome("cold")  # cache miss path, revive or fresh fit
        fitted = None
        if self.registry is not None:
            try:
                with span("fit.registry_load"):
                    fitted = self.registry.load(target, self.strategy, self.zoo)
                with self._lock:
                    self._stats.registry_hits += 1
            except ArtifactError:
                fitted = None  # absent or stale: fall through to a fit
        if fitted is None:
            if remote_fit is None:
                fitted = self.strategy.fit(self.zoo, target)
                with self._lock:
                    self._stats.fits += 1
                if self.registry is not None:
                    with span("fit.artifact_pack"):
                        self.registry.save(fitted, self.strategy, self.zoo)
            else:
                meta, arrays = remote_fit(self.strategy, self.zoo, target)
                with span("fit.artifact_unpack"):
                    fitted = self.strategy.unpack(meta, arrays, self.zoo)
                with self._lock:
                    self._stats.fits += 1
                if self.registry is not None:
                    with span("fit.artifact_pack"):
                        self.registry.save_packed(meta, arrays, self.strategy, target)

        key = (target, self._config_fp)
        evicted: list[tuple[str, str]] = []
        # Snapshot *after* the fit: the fit itself records derived rows
        # (lazy similarity/transferability fills) which the pipeline
        # already consumed, so they must not look dirty at refresh time.
        seq = self._catalog_seq()
        with self._lock:
            self._cache[key] = fitted
            if seq is not None:
                self._fit_seqs[key] = seq
            while len(self._cache) > self.cache_size:
                evicted.append(self._cache.popitem(last=False)[0])
                self._stats.evictions += 1
            for gone in evicted:
                self._fit_seqs.pop(gone, None)
        self._notify_evicted(evicted)
        return fitted

    def _catalog_seq(self) -> int | None:
        """Current catalog mutation seq, ``None`` for catalog-less zoos."""
        catalog = getattr(self.zoo, "catalog", None)
        seq = getattr(catalog, "mutation_seq", None)
        return seq if isinstance(seq, int) else None

    def _fitted(self, target: str):
        """Fitted pipeline for ``target``: memory → registry → fresh fit."""
        cached = self.cache_get(target)
        if cached is not None:
            return cached
        return self.load_or_fit(target)

    def cached_targets(self) -> list[str]:
        """Targets currently in memory, least → most recently used."""
        with self._lock:
            return [target for target, _ in self._cache]

    def record_query(self, started: float) -> None:
        """Count one query whose wall-clock began at ``started``.

        Public so the async router can attribute traffic it served
        directly from coalesced futures; thread-safe.
        """
        elapsed_ms = (time.perf_counter() - started) * 1e3
        with self._lock:
            self._stats.queries += 1
            self._stats.latencies_ms.append(elapsed_ms)

    _record = record_query

    # ------------------------------------------------------------------ #
    def rank(self, target: str, top_k: int | None = None) -> list[tuple[str, float]]:
        """Models ranked for ``target``, best first (optionally truncated)."""
        started = time.perf_counter()
        ranking = self._fitted(target).rank(self.zoo.model_ids())
        self._record(started)
        return ranking if top_k is None else ranking[:top_k]

    def score_batch(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Predicted scores for (model, target) pairs, aligned to input.

        Pairs are grouped by target so each target's pipeline is looked
        up once and predicts its models in a single batched call.
        """
        started = time.perf_counter()
        if not pairs:
            self._record(started)
            return np.empty(0)
        by_target: dict[str, list[int]] = {}
        for i, (_, target) in enumerate(pairs):
            by_target.setdefault(target, []).append(i)
        out = np.empty(len(pairs))
        for target, indices in by_target.items():
            fitted = self._fitted(target)
            out[indices] = fitted.predict([pairs[i][0] for i in indices])
        self._record(started)
        return out

    def handle(self, request: RankRequest | ScoreBatchRequest):
        """Answer one protocol request with its typed protocol response.

        This is the in-process face of the v1 wire protocol: the gateway,
        the HTTP front door, and workload replay all funnel through the
        same ``build`` constructors, so a response served over the wire
        is byte-identical to one built here.
        """
        self.check_strategy(getattr(request, "strategy", None))
        if isinstance(request, RankRequest):
            return RankResponse.build(
                request, self.rank(request.target, top_k=request.top_k)
            )
        if isinstance(request, ScoreBatchRequest):
            return ScoreBatchResponse.build(
                request, self.score_batch(list(request.pairs))
            )
        raise TypeError(f"unsupported request type {type(request).__name__}")

    # ------------------------------------------------------------------ #
    def warmup(self, targets: list[str] | None = None) -> dict[str, float]:
        """Pre-fit pipelines (write-through to the registry if configured).

        Returns seconds spent per target.  Warmup populates the caches
        but does not count as query traffic.
        """
        out: dict[str, float] = {}
        for target in targets if targets is not None else self.zoo.target_names():
            started = time.perf_counter()
            self._fitted(target)
            out[target] = time.perf_counter() - started
        return out

    def refresh(self, target: str):
        """Incrementally update ``target``'s pipeline after catalog writes.

        The cheap path — a warm pipeline is in memory and the catalog's
        mutation log still reaches back to its fit — hands the dirty
        node set to :meth:`SelectionStrategy.refresh` (for TG
        strategies: localized re-walks + warm-started SGNS over the
        dirty neighborhood, O(changed-edges) instead of a full refit)
        and writes the refreshed artifact through to the registry.
        When nothing changed, the warm pipeline is returned untouched.

        Falls back to drop-and-refit when there is no warm pipeline, no
        catalog mutation log (stub zoos), or the log was trimmed past
        the fit snapshot — the honest full-refit path.

        Returns the (refreshed or refit) fitted pipeline.
        """
        self._check_target(target)
        key = (target, self._config_fp)
        with self._lock:
            fitted = self._cache.get(key)
            since = self._fit_seqs.get(key)
        dirty: set[str] | None = None
        catalog = getattr(self.zoo, "catalog", None)
        if fitted is not None and since is not None and catalog is not None:
            dirty = catalog.dirty_nodes(since)
        if dirty is not None and not dirty:
            return fitted  # no catalog writes since the fit
        if fitted is None or dirty is None:
            self.invalidate(target)
            return self.load_or_fit(target)

        with span("refresh.strategy"):
            refreshed = self.strategy.refresh(self.zoo, target, fitted, dirty)
        seq = self._catalog_seq()
        with self._lock:
            self._cache[key] = refreshed
            self._cache.move_to_end(key)
            if seq is not None:
                self._fit_seqs[key] = seq
            self._stats.refreshes += 1
        if self.registry is not None:
            with span("refresh.artifact_pack"):
                self.registry.save(refreshed, self.strategy, self.zoo)
        return refreshed

    def invalidate(self, target: str, refresh: bool = False) -> None:
        """Drop ``target``'s pipeline from memory and the registry.

        Call after catalog updates (new history rows, new models) so the
        next query serves fresh ground truth.  With ``refresh=True`` the
        stale pipeline is *updated in place* via :meth:`refresh` —
        localized re-walks over the dirty neighborhood instead of
        throwing the whole fitted graph away — falling back to
        drop-and-refit when no warm state exists.
        """
        if refresh:
            # Counted as a refresh (or, on the fallback path, as the
            # invalidation the drop-and-refit performs) — not both.
            self.refresh(target)
            return
        key = (target, self._config_fp)
        with self._lock:
            dropped = self._cache.pop(key, None) is not None
            self._fit_seqs.pop(key, None)
        if dropped:
            self._notify_evicted([key])
        if self.registry is not None:
            self.registry.delete(target, self.strategy)
        with self._lock:
            self._stats.invalidations += 1

    def stats(self) -> dict[str, float]:
        """Counter + latency summary since construction (or last reset)."""
        return self.stats_snapshot().summary()

    def latency_summary(self) -> dict[str, float]:
        """Live per-query latency percentiles, without a window copy.

        The compare fan-out calls this per strategy per request, so it
        summarises under the stats lock instead of snapshotting the
        whole rolling window first.
        """
        with self._lock:
            return self._stats.latency_summary()

    def stats_snapshot(self) -> ServiceStats:
        """A copy of the raw counters, e.g. to diff around a workload."""
        with self._lock:
            return self._stats.copy()

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = ServiceStats()
