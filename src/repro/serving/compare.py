"""The served evaluation engine behind ``/v1/compare``.

The paper's central claim is comparative — TransferGraph against LogME /
LEEP / Amazon-LR on rank correlation and top-k transfer accuracy — and
PR 4 put every one of those rankers behind the same serving stack.  This
module turns the comparison itself into a served workload:

- :func:`build_comparisons` — the response-side math: given every
  strategy's full ranking for one target (and which strategies were shed
  by their router's backpressure), compute pairwise Pearson/Spearman
  rank correlations and top-k overlap against a reference strategy and
  assemble the protocol's :class:`~repro.serving.protocol
  .StrategyComparison` map.  The gateway's ``compare`` entry point is
  the only caller on the serving path, so wire and offline results
  cannot diverge;
- :func:`served_evaluation` — the offline face (``repro evaluate
  --served``): warm a namespace, replay a target list through
  :meth:`SelectionGateway.compare`, and aggregate a machine-readable
  benchmark report (``BENCH_compare.json``) with per-strategy mean
  correlations, mean top-k overlap, warm-rank latency percentiles from
  the live router stats, and each strategy's fit-queue budget.  The CI
  benchmark gate (``benchmarks/compare_gate.py``) consumes exactly this
  schema.

Scores, not rank positions, feed the Pearson correlation (matching the
offline :func:`repro.core.evaluate_strategy` harness); Spearman is the
same computation over rank vectors.  Overlap is the fraction of the
reference's top-k model *set* the strategy reproduces — order inside the
top-k does not matter, matching the paper's top-k transfer-accuracy
framing where any of the truly-best models is a good answer.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.serving.protocol import (
    PROTOCOL_VERSION,
    CompareRequest,
    StrategyComparison,
)
from repro.utils import pearson_correlation, spearman_correlation

__all__ = [
    "build_comparisons",
    "ranking_metrics",
    "served_evaluation",
    "run_served_evaluation",
    "write_report",
    "REPORT_BENCHMARK",
]

#: the ``benchmark`` discriminant of a BENCH_compare.json report
REPORT_BENCHMARK = "compare_served"


def ranking_metrics(
    reference: list[tuple[str, float]],
    ranking: list[tuple[str, float]],
    top_k: int,
) -> tuple[float, float, float]:
    """(pearson, spearman, top-k overlap) of one ranking vs the reference.

    Both rankings must cover the same model set (every strategy of a
    namespace ranks the namespace zoo's full roster).  Scores are
    aligned by model id; overlap compares top-k *sets*.
    """
    ref_scores = dict(reference)
    scores = dict(ranking)
    if set(ref_scores) != set(scores):
        raise ValueError(
            "rankings cover different model sets: "
            f"{sorted(set(ref_scores) ^ set(scores))[:3]}"
        )
    model_ids = sorted(ref_scores)
    ref_vec = [ref_scores[m] for m in model_ids]
    vec = [scores[m] for m in model_ids]
    k = min(top_k, len(model_ids))
    ref_top = {m for m, _ in reference[:k]}
    top = {m for m, _ in ranking[:k]}
    return (
        pearson_correlation(ref_vec, vec),
        spearman_correlation(ref_vec, vec),
        len(ref_top & top) / k,
    )


def build_comparisons(rankings: dict[str, list[tuple[str, float]]],
                      sheds: dict[str, float],
                      *,
                      reference: str,
                      top_k: int,
                      latencies: dict[str, dict[str, float]] | None = None,
                      ) -> dict[str, StrategyComparison]:
    """Assemble the per-strategy comparison map of a compare response.

    ``rankings`` holds each answering strategy's full best-first ranking;
    ``sheds`` maps strategies whose router shed the fan-out to their
    ``retry_after_s`` hints.  When the *reference* itself was shed there
    is nothing to correlate against, so the ok entries carry rankings
    and latencies but no correlation fields.
    """
    if reference not in rankings and reference not in sheds:
        raise ValueError(
            f"reference {reference!r} is not among the compared strategies"
        )
    overlap = set(rankings) & set(sheds)
    if overlap:
        raise ValueError(f"strategies marked both ok and shed: {sorted(overlap)}")
    latencies = latencies or {}
    ref_ranking = rankings.get(reference)
    results: dict[str, StrategyComparison] = {}
    for spec, ranking in rankings.items():
        pearson = spearman = shared = None
        if ref_ranking is not None:
            pearson, spearman, shared = ranking_metrics(ref_ranking, ranking, top_k)
        results[spec] = StrategyComparison(
            status="ok",
            ranking=tuple(ranking),
            pearson=pearson,
            spearman=spearman,
            top_k_overlap=shared,
            latency=latencies.get(spec, {}),
        )
    for spec, retry_after_s in sheds.items():
        results[spec] = StrategyComparison(
            status="shed",
            retry_after_s=float(retry_after_s),
            latency=latencies.get(spec, {}),
        )
    return results


def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


async def served_evaluation(
    gateway,
    namespace: str,
    *,
    targets: list[str] | None = None,
    strategies: list[str] | None = None,
    reference: str | None = None,
    top_k: int | None = None,
    warm: bool = True,
) -> dict:
    """Replay a target list through ``/v1/compare``; return the report.

    The namespace is warmed first (``warm=False`` skips it, turning the
    pass into a cold-fit benchmark where sheds are expected), then each
    target is compared in sequence — the per-target strategy fan-out
    stays the unit of concurrency, so warm-rank latencies are clean.
    The report aggregates per strategy: mean correlations and top-k
    overlap vs the reference, shed counts, warm-rank latency
    percentiles (stats-window delta over this pass only), and the
    strategy's fit-queue budget.
    """
    if targets is None:
        targets = gateway.service(namespace).zoo.target_names()
    if not targets:
        raise ValueError("no targets to compare")
    if warm:
        await gateway.warmup(namespace)

    all_specs = gateway.strategies(namespace)
    before = {
        spec: gateway.router(namespace, spec).stats_snapshot() for spec in all_specs
    }
    started = time.perf_counter()
    responses = [
        await gateway.compare(
            CompareRequest(
                target=target,
                namespace=namespace,
                strategies=tuple(strategies) if strategies else None,
                reference=reference,
                top_k=top_k,
            )
        )
        for target in targets
    ]
    wall_s = time.perf_counter() - started

    per_strategy: dict[str, dict] = {}
    for response in responses:
        for spec, comparison in response.results.items():
            row = per_strategy.setdefault(
                spec,
                {
                    "pearson": [],
                    "spearman": [],
                    "top_k_overlap": [],
                    "targets_ok": 0,
                    "targets_shed": 0,
                },
            )
            if comparison.status == "shed":
                row["targets_shed"] += 1
                continue
            row["targets_ok"] += 1
            for metric in ("pearson", "spearman", "top_k_overlap"):
                value = getattr(comparison, metric)
                if value is not None:
                    row[metric].append(value)

    strategies_out: dict[str, dict] = {}
    for spec, row in sorted(per_strategy.items()):
        service_b, _ = before[spec]
        service_a, _ = gateway.router(namespace, spec).stats_snapshot()
        warm_window = service_a.since(service_b)
        strategies_out[spec] = {
            "mean_pearson": _mean(row["pearson"]),
            "mean_spearman": _mean(row["spearman"]),
            "mean_top_k_overlap": _mean(row["top_k_overlap"]),
            "targets_ok": row["targets_ok"],
            "targets_shed": row["targets_shed"],
            "warm_rank_p50_ms": warm_window.latency_percentile(50),
            "warm_rank_p95_ms": warm_window.latency_percentile(95),
            "fit_budget": gateway.router(namespace, spec).max_pending_fits,
        }

    return {
        "benchmark": REPORT_BENCHMARK,
        "protocol": PROTOCOL_VERSION,
        "namespace": namespace,
        "reference": responses[0].reference,
        "top_k": responses[0].top_k,
        "targets": list(targets),
        "wall_s": wall_s,
        "strategies": strategies_out,
    }


def run_served_evaluation(gateway, namespace: str, **kwargs) -> dict:
    """Synchronous wrapper: run :func:`served_evaluation` in a fresh loop."""
    import asyncio

    return asyncio.run(served_evaluation(gateway, namespace, **kwargs))


def write_report(path: str | Path, report: dict) -> Path:
    """Write a benchmark report as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
