"""The serving subsystem: persistent artifacts + warm-start selection.

The paper's premise is that fine-tuning evidence is amortised into a
learned graph so that *selection* is cheap — this package makes that
true operationally:

- :mod:`repro.serving.fingerprint` — config/catalog content hashes that
  detect stale artifacts;
- :mod:`repro.serving.artifacts` — pack/unpack a fitted pipeline into
  JSON metadata + ``.npz`` arrays;
- :mod:`repro.serving.registry` — the versioned on-disk artifact store;
- :mod:`repro.serving.service` — :class:`SelectionService`, the LRU
  warm-start facade with per-query latency/hit-rate counters;
- :mod:`repro.serving.router` — :class:`AsyncSelectionRouter`, the
  asyncio front-end with single-flight fit coalescing and a bounded
  cold-fit queue;
- :mod:`repro.serving.workload` — synthetic query streams and serial or
  concurrent replay for the ``repro serve-sim`` command.
"""

from repro.serving.fingerprint import (
    catalog_fingerprint,
    config_fingerprint,
    config_from_dict,
)
from repro.serving.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactNotFoundError,
    StaleArtifactError,
    pack_fitted,
    unpack_fitted,
)
from repro.serving.registry import ArtifactRegistry
from repro.serving.router import (
    AsyncSelectionRouter,
    QueueFullError,
    RouterStats,
)
from repro.serving.service import SelectionService, ServiceStats
from repro.serving.workload import (
    Query,
    WorkloadConfig,
    generate_workload,
    replay,
    replay_async,
    replay_concurrent,
)

__all__ = [
    "catalog_fingerprint",
    "config_fingerprint",
    "config_from_dict",
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactNotFoundError",
    "StaleArtifactError",
    "pack_fitted",
    "unpack_fitted",
    "ArtifactRegistry",
    "AsyncSelectionRouter",
    "QueueFullError",
    "RouterStats",
    "SelectionService",
    "ServiceStats",
    "Query",
    "WorkloadConfig",
    "generate_workload",
    "replay",
    "replay_async",
    "replay_concurrent",
]
