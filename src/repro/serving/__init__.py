"""The serving subsystem: persistent artifacts + warm-start selection.

The paper's premise is that fine-tuning evidence is amortised into a
learned graph so that *selection* is cheap — this package makes that
true operationally:

- :mod:`repro.serving.registry` — the versioned on-disk artifact store
  (fingerprints and pack/unpack live one layer down, in
  :mod:`repro.strategies.fingerprint` / :mod:`repro.strategies.artifacts`;
  ``repro.serving.fingerprint`` and ``repro.serving.artifacts`` remain
  as compatibility re-exports);
- :mod:`repro.serving.protocol` — the typed v1 wire protocol every
  entry point (Python, CLI, HTTP) speaks;
- :mod:`repro.serving.service` — :class:`SelectionService`, the LRU
  warm-start facade (one per served
  :class:`~repro.strategies.SelectionStrategy`) with per-query
  latency/hit-rate counters;
- :mod:`repro.serving.router` — :class:`AsyncSelectionRouter`, the
  asyncio front-end with single-flight fit coalescing, parallel cold
  fits, and a bounded cold-fit queue with adaptive backpressure;
- :mod:`repro.serving.fit_plane` — the process fit plane
  (``fit_executor="process"``): cold fits run in worker processes over
  the strategy pack/unpack boundary for true multi-core fitting;
- :mod:`repro.serving.gateway` — :class:`SelectionGateway`, routing
  protocol requests across named namespaces (each a zoo behind a
  spec-keyed strategy map) with per-namespace registry shards;
- :mod:`repro.serving.http` — the dependency-free asyncio HTTP front
  door (``repro serve``): ``/v1/rank``, ``/v1/score_batch``,
  ``/v1/compare``, ``/v1/stats``, ``/v1/healthz``;
- :mod:`repro.serving.compare` — the served evaluation engine behind
  ``/v1/compare`` and ``repro evaluate --served``: per-strategy rank
  correlations, top-k overlap, and the ``BENCH_compare.json`` report
  the CI benchmark gate consumes;
- :mod:`repro.serving.workload` — synthetic protocol-request streams
  and serial or concurrent replay for ``repro serve-sim``.

Cross-cutting observability (metrics at ``/v1/metrics``, per-request
traces with fit-stage spans, structured events) lives in
:mod:`repro.obs`; the gateway owns an
:class:`~repro.obs.Observability` plane and every layer below it
reports through ambient trace context.
"""

from repro.strategies.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactNotFoundError,
    StaleArtifactError,
    pack_fitted,
    unpack_fitted,
)
from repro.strategies.fingerprint import (
    catalog_fingerprint,
    config_fingerprint,
    config_from_dict,
)
from repro.serving.protocol import (
    DEFAULT_COMPARE_TOP_K,
    DEFAULT_NAMESPACE,
    ERROR_CODES,
    PROTOCOL_VERSION,
    CompareRequest,
    CompareResponse,
    ErrorResponse,
    ProtocolError,
    RankRequest,
    RankResponse,
    ScoreBatchRequest,
    ScoreBatchResponse,
    StatsResponse,
    StrategyComparison,
    message_from_json,
)
from repro.serving.compare import (
    build_comparisons,
    ranking_metrics,
    run_served_evaluation,
    served_evaluation,
    write_report,
)
from repro.serving.registry import ArtifactRegistry
from repro.serving.fit_plane import (
    FitPlaneError,
    FitTimeoutError,
    FitWorkerCrashError,
    ProcessFitExecutor,
)
from repro.serving.router import (
    AsyncSelectionRouter,
    QueueFullError,
    RouterStats,
)
from repro.serving.service import SelectionService, ServiceStats
from repro.serving.gateway import (
    SelectionGateway,
    UnknownModelError,
    UnknownNamespaceError,
    UnknownStrategyError,
    UnknownTargetError,
)
from repro.serving.http import GatewayHTTPServer
from repro.serving.workload import (
    WorkloadConfig,
    generate_workload,
    replay,
    replay_async,
    replay_concurrent,
)

__all__ = [
    "catalog_fingerprint",
    "config_fingerprint",
    "config_from_dict",
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactNotFoundError",
    "StaleArtifactError",
    "pack_fitted",
    "unpack_fitted",
    "DEFAULT_COMPARE_TOP_K",
    "DEFAULT_NAMESPACE",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "CompareRequest",
    "CompareResponse",
    "ErrorResponse",
    "ProtocolError",
    "RankRequest",
    "RankResponse",
    "ScoreBatchRequest",
    "ScoreBatchResponse",
    "StatsResponse",
    "StrategyComparison",
    "message_from_json",
    "build_comparisons",
    "ranking_metrics",
    "run_served_evaluation",
    "served_evaluation",
    "write_report",
    "ArtifactRegistry",
    "FitPlaneError",
    "FitTimeoutError",
    "FitWorkerCrashError",
    "ProcessFitExecutor",
    "AsyncSelectionRouter",
    "QueueFullError",
    "RouterStats",
    "SelectionService",
    "ServiceStats",
    "SelectionGateway",
    "UnknownModelError",
    "UnknownNamespaceError",
    "UnknownStrategyError",
    "UnknownTargetError",
    "GatewayHTTPServer",
    "WorkloadConfig",
    "generate_workload",
    "replay",
    "replay_async",
    "replay_concurrent",
]
