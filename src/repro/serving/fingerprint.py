"""Compatibility re-export: fingerprints moved to the strategies layer.

Fingerprints are part of the strategy contract
(:meth:`~repro.strategies.SelectionStrategy.fingerprint`), so the
canonical module is :mod:`repro.strategies.fingerprint` — keeping the
import-layering rule's DAG honest (strategies must not import serving).
This shim preserves the historical ``repro.serving.fingerprint`` import
path for external callers.
"""

from repro.strategies.fingerprint import (
    CATALOG_FINGERPRINT_TABLES,
    catalog_fingerprint,
    config_fingerprint,
    config_from_dict,
    stable_digest,
)

__all__ = [
    "config_fingerprint",
    "catalog_fingerprint",
    "config_from_dict",
    "stable_digest",
    "CATALOG_FINGERPRINT_TABLES",
]
