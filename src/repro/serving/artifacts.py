"""Compatibility re-export: artifact pack/unpack moved to strategies.

Pack/unpack is the
:class:`~repro.strategies.SelectionStrategy` artifact contract (and the
process-boundary wire form), so the canonical module is
:mod:`repro.strategies.artifacts` — keeping the import-layering rule's
DAG honest (strategies must not import serving).  This shim preserves
the historical ``repro.serving.artifacts`` import path for external
callers.
"""

from repro.strategies.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactNotFoundError,
    StaleArtifactError,
    pack_fitted,
    unpack_fitted,
)

__all__ = [
    "ArtifactError",
    "ArtifactNotFoundError",
    "StaleArtifactError",
    "ARTIFACT_FORMAT_VERSION",
    "pack_fitted",
    "unpack_fitted",
]
