"""Pack/unpack a :class:`FittedTransferGraph` into portable artifacts.

An artifact is a pair ``(meta, arrays)``:

- ``meta`` is a JSON-able dict: format version, target, the full config,
  both fingerprints, feature names, graph statistics, and the predictor
  and assembler states with every numpy array replaced by an
  ``{"__array__": key}`` reference;
- ``arrays`` maps those keys to the actual ``np.ndarray`` values, stored
  losslessly in one ``.npz`` file by the registry.

Splitting this way keeps the metadata human-inspectable while arrays
round-trip bit-for-bit.  The LOO graph itself is *not* stored: it is
rebuilt deterministically from the catalog at load time, which both keeps
artifacts small and guarantees the graph can never drift from the catalog
it claims to match.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro.core.config import TransferGraphConfig
from repro.core.features import FeatureAssembler
from repro.core.framework import FittedTransferGraph
from repro.graph import GraphBuilder
from repro.predictors import get_predictor
from repro.serving.fingerprint import catalog_fingerprint, config_fingerprint

__all__ = ["ArtifactError", "ArtifactNotFoundError", "StaleArtifactError",
           "ARTIFACT_FORMAT_VERSION", "pack_fitted", "unpack_fitted"]

#: bump when the artifact layout changes; older artifacts refuse to load
ARTIFACT_FORMAT_VERSION = 1

#: separator inside ``.npz`` keys (same idiom as the zoo weight cache)
_SEP = "::"

_ARRAY_REF = "__array__"


class ArtifactError(RuntimeError):
    """Base class for registry/artifact failures."""


class ArtifactNotFoundError(ArtifactError):
    """No artifact stored for the requested (target, config)."""


class StaleArtifactError(ArtifactError):
    """A stored artifact no longer matches the live catalog or config."""


# ---------------------------------------------------------------------- #
# generic state <-> (json, arrays) flattening
# ---------------------------------------------------------------------- #
def _pack_value(value, arrays: dict, path: str):
    if isinstance(value, np.ndarray):
        arrays[path] = value
        return {_ARRAY_REF: path}
    if isinstance(value, dict):
        return {key: _pack_value(v, arrays, f"{path}{_SEP}{key}")
                for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_pack_value(v, arrays, f"{path}{_SEP}{i}")
                for i, v in enumerate(value)]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value


def _unpack_value(value, arrays: dict):
    if isinstance(value, dict):
        if set(value) == {_ARRAY_REF}:
            return arrays[value[_ARRAY_REF]]
        return {key: _unpack_value(v, arrays) for key, v in value.items()}
    if isinstance(value, list):
        return [_unpack_value(v, arrays) for v in value]
    return value


# ---------------------------------------------------------------------- #
def pack_fitted(fitted: FittedTransferGraph, config: TransferGraphConfig,
                zoo) -> tuple[dict, dict[str, np.ndarray]]:
    """Serialise a fitted pipeline into ``(meta, arrays)``."""
    arrays: dict[str, np.ndarray] = {}

    embedding_nodes = sorted(fitted.embeddings)
    for node in embedding_nodes:
        arrays[f"embeddings{_SEP}{node}"] = np.asarray(
            fitted.embeddings[node], dtype=np.float64)

    meta = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "target": fitted.target,
        "config": asdict(config),
        "config_fingerprint": config_fingerprint(config),
        "catalog_fingerprint": catalog_fingerprint(zoo.catalog),
        "feature_names": list(fitted.feature_names),
        "graph_stats": {k: _pack_value(v, arrays, f"graph_stats{_SEP}{k}")
                        for k, v in fitted.graph_stats.items()},
        "embedding_nodes": embedding_nodes,
        "predictor_state": _pack_value(fitted.predictor.get_state(), arrays,
                                       "predictor"),
        "assembler_state": _pack_value(fitted.assembler.get_state(), arrays,
                                       "assembler"),
    }
    return meta, arrays


def unpack_fitted(meta: dict, arrays: dict, zoo,
                  config: TransferGraphConfig) -> FittedTransferGraph:
    """Revive a fitted pipeline, validating freshness first.

    Raises :class:`StaleArtifactError` when the artifact was written for
    a different config, a different catalog, or an older artifact format.
    """
    version = meta.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise StaleArtifactError(
            f"artifact format v{version} != supported v{ARTIFACT_FORMAT_VERSION}")
    if meta["config_fingerprint"] != config_fingerprint(config):
        raise StaleArtifactError(
            f"artifact for target {meta['target']!r} was fitted under a "
            "different TransferGraph configuration")
    live = catalog_fingerprint(zoo.catalog)
    if meta["catalog_fingerprint"] != live:
        raise StaleArtifactError(
            f"artifact for target {meta['target']!r} is stale: catalog "
            f"fingerprint {meta['catalog_fingerprint']} != live {live}")

    target = meta["target"]
    embeddings = {node: np.asarray(arrays[f"embeddings{_SEP}{node}"],
                                   dtype=np.float64)
                  for node in meta["embedding_nodes"]}

    graph = None
    if config.features.graph_features:
        # Deterministic rebuild of the LOO graph (cheap: no learner).
        graph, _ = GraphBuilder(zoo, config.graph).build(exclude_target=target)

    assembler = FeatureAssembler(
        zoo=zoo,
        features=config.features,
        embeddings=embeddings if config.features.graph_features else None,
        transferability_metric=config.graph.transferability_metric,
        similarity_method=config.graph.similarity_method,
        graph=graph,
    )
    assembler.set_state(_unpack_value(meta["assembler_state"], arrays))

    predictor = get_predictor(config.predictor)
    predictor.set_state(_unpack_value(meta["predictor_state"], arrays))

    return FittedTransferGraph(
        target=target,
        assembler=assembler,
        predictor=predictor,
        embeddings=embeddings,
        graph_stats=_unpack_value(meta["graph_stats"], arrays),
        feature_names=list(meta["feature_names"]),
    )
