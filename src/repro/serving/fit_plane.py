"""Process fit plane: cold fits in worker processes, artifacts on the wire.

The router's thread pool only overlaps the GIL-released stretches of a
fit; walk generation and SGNS are pure Python, so one box serves cold
traffic at roughly one core.  This module runs the fit itself in a
``ProcessPoolExecutor`` worker and ships back the *strategy-packed*
artifact — the same ``(meta, arrays)`` pair the registry persists — so

- nothing unpicklable ever crosses the process boundary (no fitted
  pipelines, no live catalogs, no locks): the task is
  ``(pickled strategy, zoo reference, target)`` and the result is JSON
  meta + numpy arrays + a span-record list;
- the parent revives the pipeline with ``strategy.unpack`` against its
  own zoo, exactly as a registry-warm load would, and writes the
  worker's packed payload through to the registry byte-for-byte;
- derived scores the worker recorded into *its* catalog copy travel
  inside the packed assembler state (the per-dataset transferability
  normalisation cache) — children never mutate the parent's catalog.

The worker-side task itself — zoo hydration (cached per zoo
fingerprint), the fit, the warm predict, the pack — lives in
:mod:`repro.fleet.work` since the socket fleet (ISSUE 9) runs the very
same function in its ``repro fit-worker`` daemons; this module re-exports
the typed error family and :func:`zoo_ref_for` from
:mod:`repro.fleet` for compatibility with pre-fleet imports.

Failure semantics: a worker that dies mid-fit (OOM kill, segfault)
surfaces as :class:`FitWorkerCrashError` and a fit exceeding
``fit_timeout_s`` as :class:`FitTimeoutError` — both typed
:class:`FitPlaneError` subclasses that shed the router's coalesced group
for that target.  A crash permanently breaks the underlying pool, so the
executor discards and lazily rebuilds it; the router stays serviceable.
Ordinary exceptions raised by ``strategy.fit`` propagate with their
original type, matching the thread path.  The pool uses the ``spawn``
start method: forking a multi-threaded server can inherit held locks
into the child, and the per-worker interpreter startup is paid once per
(long-lived) worker.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context

from repro.fleet.errors import (
    FitPlaneError,
    FitTimeoutError,
    FitWorkerCrashError,
)
from repro.fleet.work import run_fit, warm_worker, zoo_ref_for

__all__ = [
    "ProcessFitExecutor",
    "FitPlaneError",
    "FitWorkerCrashError",
    "FitTimeoutError",
    "zoo_ref_for",
]


class ProcessFitExecutor:
    """A crash-tolerant ``ProcessPoolExecutor`` for cold fits.

    ``submit_fit`` is *blocking* — the router calls it from its fit
    threads, which keeps every queueing/coalescing/stats mechanism
    identical between executors while the actual CPU work runs in
    ``workers`` separate processes.

    A :class:`BrokenProcessPool` (worker killed mid-fit) permanently
    poisons a pool, so the executor drops it and rebuilds lazily on the
    next submit; concurrent fits that were in flight on the broken pool
    all surface :class:`FitWorkerCrashError`.
    """

    def __init__(self, workers: int = 2, *, fit_timeout_s: float | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.fit_timeout_s = fit_timeout_s
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None  # guarded by: self._lock
        self._closed = False  # guarded by: self._lock

    # -- pool lifecycle ------------------------------------------------- #
    def _get_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise FitPlaneError("fit executor is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=get_context("spawn")
                )
            return self._pool

    def _discard(self, broken: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._pool is broken:
                self._pool = None
        broken.shutdown(wait=False)

    def prestart(self, zoo=None, hold_s: float = 0.25) -> int:
        """Spawn every worker now (optionally hydrating ``zoo`` in each).

        Without this, workers spawn lazily on the first cold fits and
        the first ``workers`` requests each pay interpreter start + zoo
        hydration on top of their fit.  Returns the worker count.
        """
        ref = None if zoo is None else zoo_ref_for(zoo)
        pool = self._get_pool()
        futures = [pool.submit(warm_worker, ref, hold_s) for _ in range(self.workers)]
        for future in futures:
            future.result()
        return self.workers

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- fits ----------------------------------------------------------- #
    def submit_fit(self, strategy, zoo, target: str, *, timeout_s=None):
        """Fit ``target`` in a worker; returns ``(meta, arrays, spans)``.

        Blocks until the worker finishes (the caller is a router fit
        thread).  ``timeout_s`` overrides the executor-level
        ``fit_timeout_s`` for this fit.  Raises
        :class:`FitWorkerCrashError` / :class:`FitTimeoutError` for
        plane failures, re-raises the original exception for an
        ordinary fit failure, and raises :class:`FitPlaneError` when
        the strategy cannot cross the process boundary at all (e.g. a
        test-patched fit closure).
        """
        try:
            blob = pickle.dumps(strategy)
        except Exception as exc:
            raise FitPlaneError(
                f"strategy {getattr(strategy, 'spec', strategy)!r} is not "
                f"picklable and cannot fit in a worker process (use "
                f"fit_executor='thread'): {exc}"
            ) from exc
        ref = zoo_ref_for(zoo)
        pool = self._get_pool()
        future = pool.submit(run_fit, blob, ref, target)
        timeout = timeout_s if timeout_s is not None else self.fit_timeout_s
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()  # drops it if still queued; running fits
            # finish as orphans — their result is simply discarded
            raise FitTimeoutError(
                f"fit for target {target!r} exceeded "
                f"{timeout:.1f}s in the worker pool"
            ) from None
        except BrokenProcessPool as exc:
            self._discard(pool)
            raise FitWorkerCrashError(
                f"fit worker died while fitting target {target!r} "
                f"(pool discarded; it will be rebuilt on the next fit)"
            ) from exc
