"""Process fit plane: cold fits in worker processes, artifacts on the wire.

The router's thread pool only overlaps the GIL-released stretches of a
fit; walk generation and SGNS are pure Python, so one box serves cold
traffic at roughly one core.  This module runs the fit itself in a
``ProcessPoolExecutor`` worker and ships back the *strategy-packed*
artifact — the same ``(meta, arrays)`` pair the registry persists — so

- nothing unpicklable ever crosses the process boundary (no fitted
  pipelines, no live catalogs, no locks): the task is
  ``(pickled strategy, zoo reference, target)`` and the result is JSON
  meta + numpy arrays + a span-record list;
- the parent revives the pipeline with ``strategy.unpack`` against its
  own zoo, exactly as a registry-warm load would, and writes the
  worker's packed payload through to the registry byte-for-byte;
- derived scores the worker recorded into *its* catalog copy travel
  inside the packed assembler state (the per-dataset transferability
  normalisation cache) — children never mutate the parent's catalog.

Workers re-hydrate the zoo once and cache it in a module global keyed by
the zoo fingerprint (:func:`repro.zoo.zoo_cache_key`): the first fit in
a worker pays a disk load (or a deterministic rebuild when the zoo was
never cached to disk — see :func:`_hydrate_zoo`), every later fit
reuses it.  The pool uses the ``spawn`` start method: forking a
multi-threaded server can inherit held locks into the child, and the
per-worker interpreter startup is paid once per (long-lived) worker.

Failure semantics: a worker that dies mid-fit (OOM kill, segfault)
surfaces as :class:`FitWorkerCrashError` and a fit exceeding
``fit_timeout_s`` as :class:`FitTimeoutError` — both typed
:class:`FitPlaneError` subclasses that shed the router's coalesced group
for that target.  A crash permanently breaks the underlying pool, so the
executor discards and lazily rebuilds it; the router stays serviceable.
Ordinary exceptions raised by ``strategy.fit`` propagate with their
original type, matching the thread path.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context

from repro.obs.trace import Trace, activate, deactivate, span
from repro.zoo.cache import load_zoo, zoo_cache_key
from repro.zoo.zoo import ZooConfig, build_zoo

__all__ = [
    "ProcessFitExecutor",
    "FitPlaneError",
    "FitWorkerCrashError",
    "FitTimeoutError",
    "zoo_ref_for",
]


class FitPlaneError(RuntimeError):
    """Base class for process-fit-plane failures (not fit exceptions)."""


class FitWorkerCrashError(FitPlaneError):
    """A worker process died mid-fit; the pool was discarded for rebuild."""


class FitTimeoutError(FitPlaneError):
    """A fit exceeded ``fit_timeout_s``; its coalesced group is shed."""


# ---------------------------------------------------------------------- #
# zoo references: what crosses the boundary instead of a live zoo
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ConfigZooRef:
    """Re-hydrate from a :class:`ZooConfig`: disk cache, else rebuild."""

    config: ZooConfig
    cache_dir: str | None

    @property
    def key(self) -> str:
        return zoo_cache_key(self.config)


@dataclass(frozen=True)
class _PickleZooRef:
    """A directly-pickled zoo (test stubs without a ZooConfig)."""

    payload: bytes
    key: str


def zoo_ref_for(zoo, cache_dir=None):
    """The picklable reference a worker re-hydrates ``zoo`` from.

    Zoos built through :func:`repro.zoo.get_or_build_zoo` carry a
    :class:`ZooConfig` and re-hydrate from the disk cache (or a
    deterministic rebuild); anything else — stub zoos in tests — must
    itself be picklable and ships whole.
    """
    config = getattr(zoo, "config", None)
    if isinstance(config, ZooConfig):
        return _ConfigZooRef(
            config=config, cache_dir=None if cache_dir is None else str(cache_dir)
        )
    try:
        payload = pickle.dumps(zoo)
    except Exception as exc:
        raise FitPlaneError(
            f"zoo {type(zoo).__name__} has no ZooConfig and cannot be "
            f"pickled for a fit worker: {exc}"
        ) from exc
    digest = hashlib.blake2b(payload, digest_size=10).hexdigest()
    return _PickleZooRef(payload=payload, key=f"pickled-{digest}")


# ---------------------------------------------------------------------- #
# worker side (top-level functions: spawn pickles them by reference)
# ---------------------------------------------------------------------- #
#: per-worker-process zoo cache, keyed by zoo fingerprint — hydration
#: (disk load or rebuild) is paid once per worker, not once per fit
_ZOO_CACHE: dict[str, object] = {}


def _hydrate_zoo(ref):
    zoo = _ZOO_CACHE.get(ref.key)
    if zoo is not None:
        return zoo
    if isinstance(ref, _PickleZooRef):
        zoo = pickle.loads(ref.payload)
    else:
        # Mirrors get_or_build_zoo WITHOUT the cache write: concurrent
        # workers racing identical np.savez calls onto one cache path
        # could tear it for a later loader, and the rebuild is
        # deterministic in the config anyway.
        zoo = load_zoo(ref.config, ref.cache_dir)
        if zoo is None:
            zoo = build_zoo(ref.config)
        if ref.config.include_lora:
            zoo.ensure_lora_history()
    _ZOO_CACHE[ref.key] = zoo
    return zoo


def _fit_in_worker(strategy_blob: bytes, zoo_ref, target: str):
    """Worker entrypoint: hydrate, fit, warm, pack.

    The warm predict materialises the target's lazy transferability
    normalisation *before* packing, so the derived scores the fit
    recorded into this process's catalog copy fold back to the parent
    inside the assembler state.  Spans are collected on a local trace
    and returned as records; the parent grafts them onto the live
    request trace (:func:`repro.obs.trace.graft_spans`).
    """
    strategy = pickle.loads(strategy_blob)
    with span("fit.zoo_hydrate"):
        zoo = _hydrate_zoo(zoo_ref)
    fitted = strategy.fit(zoo, target)
    with span("fit.warm_predict"):
        fitted.predict(zoo.model_ids())
    with span("fit.artifact_pack"):
        meta, arrays = strategy.pack(fitted, zoo)
    return meta, arrays


def _fit_task(strategy_blob: bytes, zoo_ref, target: str):
    trace = Trace("fit-worker", "fit_worker")
    tokens = activate(trace)
    try:
        meta, arrays = _fit_in_worker(strategy_blob, zoo_ref, target)
    finally:
        deactivate(tokens)
        trace.finish()
    return meta, arrays, trace.span_tree()


def _warm_worker(zoo_ref, hold_s: float):
    """Pool warmup task: hydrate the zoo, then hold the worker briefly.

    The hold makes N concurrently-submitted warmup tasks land on N
    *distinct* workers with high probability, so every worker pays its
    interpreter start + zoo hydration before traffic arrives instead of
    on its first cold fit.
    """
    if zoo_ref is not None:
        _hydrate_zoo(zoo_ref)
    if hold_s > 0:
        time.sleep(hold_s)
    return True


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #
class ProcessFitExecutor:
    """A crash-tolerant ``ProcessPoolExecutor`` for cold fits.

    ``submit_fit`` is *blocking* — the router calls it from its fit
    threads, which keeps every queueing/coalescing/stats mechanism
    identical between executors while the actual CPU work runs in
    ``workers`` separate processes.

    A :class:`BrokenProcessPool` (worker killed mid-fit) permanently
    poisons a pool, so the executor drops it and rebuilds lazily on the
    next submit; concurrent fits that were in flight on the broken pool
    all surface :class:`FitWorkerCrashError`.
    """

    def __init__(self, workers: int = 2, *, fit_timeout_s: float | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.fit_timeout_s = fit_timeout_s
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None  # guarded by: self._lock
        self._closed = False  # guarded by: self._lock

    # -- pool lifecycle ------------------------------------------------- #
    def _get_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise FitPlaneError("fit executor is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=get_context("spawn")
                )
            return self._pool

    def _discard(self, broken: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._pool is broken:
                self._pool = None
        broken.shutdown(wait=False)

    def prestart(self, zoo=None, hold_s: float = 0.25) -> int:
        """Spawn every worker now (optionally hydrating ``zoo`` in each).

        Without this, workers spawn lazily on the first cold fits and
        the first ``workers`` requests each pay interpreter start + zoo
        hydration on top of their fit.  Returns the worker count.
        """
        ref = None if zoo is None else zoo_ref_for(zoo)
        pool = self._get_pool()
        futures = [pool.submit(_warm_worker, ref, hold_s) for _ in range(self.workers)]
        for future in futures:
            future.result()
        return self.workers

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- fits ----------------------------------------------------------- #
    def submit_fit(self, strategy, zoo, target: str):
        """Fit ``target`` in a worker; returns ``(meta, arrays, spans)``.

        Blocks until the worker finishes (the caller is a router fit
        thread).  Raises :class:`FitWorkerCrashError` /
        :class:`FitTimeoutError` for plane failures, re-raises the
        original exception for an ordinary fit failure, and raises
        :class:`FitPlaneError` when the strategy cannot cross the
        process boundary at all (e.g. a test-patched fit closure).
        """
        try:
            blob = pickle.dumps(strategy)
        except Exception as exc:
            raise FitPlaneError(
                f"strategy {getattr(strategy, 'spec', strategy)!r} is not "
                f"picklable and cannot fit in a worker process (use "
                f"fit_executor='thread'): {exc}"
            ) from exc
        ref = zoo_ref_for(zoo)
        pool = self._get_pool()
        future = pool.submit(_fit_task, blob, ref, target)
        try:
            return future.result(timeout=self.fit_timeout_s)
        except FutureTimeoutError:
            future.cancel()  # drops it if still queued; running fits
            # finish as orphans — their result is simply discarded
            raise FitTimeoutError(
                f"fit for target {target!r} exceeded "
                f"{self.fit_timeout_s:.1f}s in the worker pool"
            ) from None
        except BrokenProcessPool as exc:
            self._discard(pool)
            raise FitWorkerCrashError(
                f"fit worker died while fitting target {target!r} "
                f"(pool discarded; it will be rebuilt on the next fit)"
            ) from exc
