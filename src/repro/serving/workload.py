"""Synthetic query workloads for serving experiments (``repro serve-sim``).

Real selection traffic is skewed: a few popular target datasets receive
most queries.  The generator draws targets from a Zipf-like popularity
distribution over the zoo's targets and mixes two query shapes —
full rankings (``rank``) and batched pair scoring (``score_batch``) —
then :func:`replay` runs the sequence against a service and reports the
latency/hit-rate summary.

The async mode (:func:`replay_async` / :func:`replay_concurrent`)
replays the same stream through an
:class:`~repro.serving.router.AsyncSelectionRouter` with N concurrent
clients.  Each client replays the full sequence (N users asking the same
popular questions — the scenario coalescing exists for) unless
``partition=True`` splits the stream round-robin instead.  Requests shed
by the router's backpressure are retried after the suggested
``retry_after_s``, and the summary counts those retries.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.serving.service import SelectionService

__all__ = ["WorkloadConfig", "Query", "generate_workload", "replay",
           "replay_async", "replay_concurrent"]

#: retry ceiling per shed query before the rejection is re-raised
_MAX_RETRIES = 100


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic query stream."""

    num_queries: int = 200
    #: fraction of queries that are batched pair-scoring calls
    batch_fraction: float = 0.25
    #: (model, target) pairs per score_batch query
    batch_size: int = 8
    #: Zipf exponent of target popularity (0 = uniform)
    zipf_alpha: float = 1.2
    top_k: int = 5
    seed: int = 0

    def __post_init__(self):
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if not (0.0 <= self.batch_fraction <= 1.0):
            raise ValueError("batch_fraction must be in [0, 1]")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")


@dataclass(frozen=True)
class Query:
    """One serving request: ``kind`` is ``"rank"`` or ``"score_batch"``."""

    kind: str
    target: str
    top_k: int = 5
    pairs: tuple[tuple[str, str], ...] = ()


def generate_workload(zoo, config: WorkloadConfig | None = None) -> list[Query]:
    """A reproducible query sequence over the zoo's target datasets."""
    config = config or WorkloadConfig()
    rng = np.random.default_rng(config.seed)
    targets = list(zoo.target_names())
    models = zoo.model_ids()

    # Zipf-like popularity over a randomly assigned target order.
    order = rng.permutation(len(targets))
    weights = 1.0 / (1.0 + order.astype(np.float64)) ** config.zipf_alpha
    weights /= weights.sum()

    queries: list[Query] = []
    for _ in range(config.num_queries):
        target = targets[rng.choice(len(targets), p=weights)]
        if rng.random() < config.batch_fraction:
            chosen = rng.choice(len(models), size=min(config.batch_size,
                                                      len(models)),
                                replace=False)
            pairs = tuple((models[i], target) for i in chosen)
            queries.append(Query(kind="score_batch", target=target,
                                 pairs=pairs))
        else:
            queries.append(Query(kind="rank", target=target,
                                 top_k=config.top_k))
    return queries


def replay(service: SelectionService, queries: list[Query]) -> dict[str, float]:
    """Run a workload; returns the stats summary *of this replay only*.

    Counters are diffed against a snapshot taken at entry, so traffic
    served before the replay (e.g. a warmup) is not misattributed to it.
    """
    before = service.stats_snapshot()
    started = time.perf_counter()
    for query in queries:
        if query.kind == "rank":
            service.rank(query.target, top_k=query.top_k)
        elif query.kind == "score_batch":
            service.score_batch(list(query.pairs))
        else:
            raise ValueError(f"unknown query kind {query.kind!r}")
    elapsed = time.perf_counter() - started
    summary = service.stats_snapshot().since(before).summary()
    summary["wall_s"] = elapsed
    summary["qps"] = len(queries) / elapsed if elapsed > 0 else float("inf")
    return summary


async def replay_async(router, queries: list[Query], *, clients: int = 1,
                       partition: bool = False) -> dict[str, float]:
    """Replay a workload through an async router with concurrent clients.

    By default every client replays the *full* query list concurrently
    (total traffic = ``clients * len(queries)``); ``partition=True``
    deals the list round-robin so total traffic stays ``len(queries)``.
    Shed queries (:class:`~repro.serving.router.QueueFullError`) sleep
    the router's ``retry_after_s`` hint and retry.  Returns the merged
    service+router stats delta for this replay only, plus ``wall_s``,
    ``qps``, and ``retries``.
    """
    from repro.serving.router import QueueFullError

    if clients < 1:
        raise ValueError("clients must be >= 1")
    if partition:
        assignments = [queries[i::clients] for i in range(clients)]
    else:
        assignments = [list(queries) for _ in range(clients)]
    retries = 0

    async def run_one(query: Query) -> None:
        nonlocal retries
        for _ in range(_MAX_RETRIES):
            try:
                if query.kind == "rank":
                    await router.rank(query.target, top_k=query.top_k)
                elif query.kind == "score_batch":
                    await router.score_batch(list(query.pairs))
                else:
                    raise ValueError(f"unknown query kind {query.kind!r}")
                return
            except QueueFullError as exc:
                retries += 1
                await asyncio.sleep(exc.retry_after_s)
        raise QueueFullError(
            f"query for {query.target!r} shed {_MAX_RETRIES} times",
            retry_after_s=0.0)

    async def client(assigned: list[Query]) -> None:
        for query in assigned:
            await run_one(query)

    service_before, router_before = router.stats_snapshot()
    started = time.perf_counter()
    await asyncio.gather(*(client(a) for a in assignments))
    elapsed = time.perf_counter() - started

    service_after, router_after = router.stats_snapshot()
    summary = service_after.since(service_before).summary()
    summary.update(router_after.since(router_before).summary())
    total = sum(len(a) for a in assignments)
    summary["wall_s"] = elapsed
    summary["qps"] = total / elapsed if elapsed > 0 else float("inf")
    summary["clients"] = clients
    summary["retries"] = retries
    return summary


def replay_concurrent(router, queries: list[Query], *, clients: int = 1,
                      partition: bool = False) -> dict[str, float]:
    """Synchronous wrapper: run :func:`replay_async` in a fresh loop."""
    return asyncio.run(replay_async(router, queries, clients=clients,
                                    partition=partition))
