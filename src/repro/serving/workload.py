"""Synthetic query workloads for serving experiments (``repro serve-sim``).

Real selection traffic is skewed: a few popular target datasets receive
most queries.  The generator draws targets from a Zipf-like popularity
distribution over the zoo's targets and mixes three query shapes — full
rankings (:class:`~repro.serving.protocol.RankRequest`), batched pair
scoring (:class:`~repro.serving.protocol.ScoreBatchRequest`), and — for
gateway replays — strategy-map fan-outs
(:class:`~repro.serving.protocol.CompareRequest`) — then
:func:`replay` runs the sequence against a service and reports the
latency/hit-rate summary.  Workloads are lists of *protocol* messages,
so the same stream replays unchanged against the serial facade, the
async router, a multi-namespace gateway, or the HTTP front door.

The async mode (:func:`replay_async` / :func:`replay_concurrent`)
replays the same stream through anything with an async ``handle``
(an :class:`~repro.serving.router.AsyncSelectionRouter` or a
:class:`~repro.serving.gateway.SelectionGateway`) with N concurrent
clients.  Each client replays the full sequence (N users asking the same
popular questions — the scenario coalescing exists for) unless
``partition=True`` splits the stream round-robin instead.  Requests shed
by the router's backpressure are retried after the suggested
``retry_after_s``, and the summary counts those retries.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.serving.protocol import (
    DEFAULT_NAMESPACE,
    CompareRequest,
    RankRequest,
    ScoreBatchRequest,
)
from repro.serving.router import QueueFullError, RouterStats
from repro.serving.service import SelectionService, ServiceStats

__all__ = [
    "WorkloadConfig",
    "generate_workload",
    "replay",
    "replay_async",
    "replay_concurrent",
]

#: retry ceiling per shed query before the rejection is re-raised
_MAX_RETRIES = 100


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic query stream."""

    num_queries: int = 200
    #: fraction of queries that are batched pair-scoring calls
    batch_fraction: float = 0.25
    #: fraction of queries that fan the target across the whole strategy
    #: map (:class:`~repro.serving.protocol.CompareRequest`); compare
    #: traffic only replays against a gateway — routers and the serial
    #: service serve one strategy and reject the request type
    compare_fraction: float = 0.0
    #: (model, target) pairs per score_batch query
    batch_size: int = 8
    #: Zipf exponent of target popularity (0 = uniform)
    zipf_alpha: float = 1.2
    top_k: int = 5
    seed: int = 0

    def __post_init__(self):
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if not (0.0 <= self.batch_fraction <= 1.0):
            raise ValueError("batch_fraction must be in [0, 1]")
        if not (0.0 <= self.compare_fraction <= 1.0):
            raise ValueError("compare_fraction must be in [0, 1]")
        if self.batch_fraction + self.compare_fraction > 1.0:
            raise ValueError("batch_fraction + compare_fraction must not exceed 1")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")


def generate_workload(
    zoo, config: WorkloadConfig | None = None, namespace: str = DEFAULT_NAMESPACE
) -> list[RankRequest | ScoreBatchRequest]:
    """A reproducible protocol-request sequence over the zoo's targets."""
    config = config or WorkloadConfig()
    rng = np.random.default_rng(config.seed)
    targets = list(zoo.target_names())
    models = zoo.model_ids()

    # Zipf-like popularity over a randomly assigned target order.
    order = rng.permutation(len(targets))
    weights = 1.0 / (1.0 + order.astype(np.float64)) ** config.zipf_alpha
    weights /= weights.sum()

    requests: list[RankRequest | ScoreBatchRequest | CompareRequest] = []
    for _ in range(config.num_queries):
        target = targets[rng.choice(len(targets), p=weights)]
        draw = rng.random()
        if draw < config.batch_fraction:
            chosen = rng.choice(
                len(models), size=min(config.batch_size, len(models)), replace=False
            )
            pairs = tuple((models[i], target) for i in chosen)
            requests.append(ScoreBatchRequest(pairs=pairs, namespace=namespace))
        elif draw < config.batch_fraction + config.compare_fraction:
            requests.append(
                CompareRequest(target=target, namespace=namespace, top_k=config.top_k)
            )
        else:
            requests.append(
                RankRequest(target=target, top_k=config.top_k, namespace=namespace)
            )
    return requests


def _trace_request(obs, request, default_strategy: str = "-"):
    """Per-request trace context for replays; inert when ``obs`` is None.

    A gateway handler traces its own requests — the nested context then
    reuses the outer trace, so replay-level tracing never double-counts.
    """
    if obs is None:
        return nullcontext()
    strategy = getattr(request, "strategy", None) or default_strategy
    return obs.request(
        request.kind,
        namespace=request.namespace,
        strategy=strategy,
        request_id=request.request_id,
    )


def replay(
    service: SelectionService,
    requests: list[RankRequest | ScoreBatchRequest],
    *,
    obs=None,
) -> dict[str, float]:
    """Run a workload; returns the stats summary *of this replay only*.

    Counters are diffed against a snapshot taken at entry, so traffic
    served before the replay (e.g. a warmup) is not misattributed to it.
    ``obs`` (an :class:`~repro.obs.Observability`) traces every replayed
    request — how offline replays produce the same per-request records
    as live serving.
    """
    spec = service.strategy.spec
    before = service.stats_snapshot()
    started = time.perf_counter()
    for request in requests:
        with _trace_request(obs, request, spec):
            service.handle(request)
    elapsed = time.perf_counter() - started
    summary = service.stats_snapshot().since(before).summary()
    summary["wall_s"] = elapsed
    summary["qps"] = len(requests) / elapsed if elapsed > 0 else float("inf")
    return summary


def _stats_snapshots(handler):
    """(service, router) snapshot pairs for a router or a gateway."""
    if hasattr(handler, "stats_snapshot"):  # AsyncSelectionRouter
        return [handler.stats_snapshot()]
    return [
        handler.router(name, spec).stats_snapshot()  # SelectionGateway
        for name in handler.namespaces()
        for spec in handler.strategies(name)
    ]


def _merged_summary(handler, before) -> dict[str, float]:
    """Pool per-namespace deltas into one summary (true percentiles)."""
    service_total, router_total = ServiceStats(), RouterStats()
    snapshots = zip(before, _stats_snapshots(handler))
    for (service_b, router_b), (service_a, router_a) in snapshots:
        service_total.merge(service_a.since(service_b))
        router_total.merge(router_a.since(router_b))
    return {**service_total.summary(), **router_total.summary()}


async def replay_async(
    handler,
    requests: list[RankRequest | ScoreBatchRequest],
    *,
    clients: int = 1,
    partition: bool = False,
    obs=None,
) -> dict[str, float]:
    """Replay a workload through an async handler with concurrent clients.

    ``handler`` is anything with an async ``handle(request)`` — a router
    or a gateway.  By default every client replays the *full* request
    list concurrently (total traffic = ``clients * len(requests)``);
    ``partition=True`` deals the list round-robin so total traffic stays
    ``len(requests)``.  Shed requests
    (:class:`~repro.serving.router.QueueFullError`) sleep the adaptive
    ``retry_after_s`` hint and retry.  Returns the merged service+router
    stats delta for this replay only, plus ``wall_s``, ``qps``, and
    ``retries``.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if partition:
        assignments = [requests[i::clients] for i in range(clients)]
    else:
        assignments = [list(requests) for _ in range(clients)]
    retries = 0

    async def run_one(request) -> None:
        nonlocal retries
        for _ in range(_MAX_RETRIES):
            try:
                with _trace_request(obs, request):
                    await handler.handle(request)
                return
            except QueueFullError as exc:
                retries += 1
                await asyncio.sleep(exc.retry_after_s)
        raise QueueFullError(
            f"request for {request.target!r} shed {_MAX_RETRIES} times",
            retry_after_s=0.0,
        )

    async def client(assigned) -> None:
        for request in assigned:
            await run_one(request)

    before = _stats_snapshots(handler)
    started = time.perf_counter()
    await asyncio.gather(*(client(a) for a in assignments))
    elapsed = time.perf_counter() - started

    summary = _merged_summary(handler, before)
    total = sum(len(a) for a in assignments)
    summary["wall_s"] = elapsed
    summary["qps"] = total / elapsed if elapsed > 0 else float("inf")
    summary["clients"] = clients
    summary["retries"] = retries
    return summary


def replay_concurrent(
    handler,
    requests: list[RankRequest | ScoreBatchRequest],
    *,
    clients: int = 1,
    partition: bool = False,
    obs=None,
) -> dict[str, float]:
    """Synchronous wrapper: run :func:`replay_async` in a fresh loop."""
    return asyncio.run(
        replay_async(handler, requests, clients=clients, partition=partition, obs=obs)
    )
