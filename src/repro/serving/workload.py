"""Synthetic query workloads for serving experiments (``repro serve-sim``).

Real selection traffic is skewed: a few popular target datasets receive
most queries.  The generator draws targets from a Zipf-like popularity
distribution over the zoo's targets and mixes two query shapes —
full rankings (``rank``) and batched pair scoring (``score_batch``) —
then :func:`replay` runs the sequence against a service and reports the
latency/hit-rate summary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.serving.service import SelectionService

__all__ = ["WorkloadConfig", "Query", "generate_workload", "replay"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic query stream."""

    num_queries: int = 200
    #: fraction of queries that are batched pair-scoring calls
    batch_fraction: float = 0.25
    #: (model, target) pairs per score_batch query
    batch_size: int = 8
    #: Zipf exponent of target popularity (0 = uniform)
    zipf_alpha: float = 1.2
    top_k: int = 5
    seed: int = 0

    def __post_init__(self):
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if not (0.0 <= self.batch_fraction <= 1.0):
            raise ValueError("batch_fraction must be in [0, 1]")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")


@dataclass(frozen=True)
class Query:
    """One serving request: ``kind`` is ``"rank"`` or ``"score_batch"``."""

    kind: str
    target: str
    top_k: int = 5
    pairs: tuple[tuple[str, str], ...] = ()


def generate_workload(zoo, config: WorkloadConfig | None = None) -> list[Query]:
    """A reproducible query sequence over the zoo's target datasets."""
    config = config or WorkloadConfig()
    rng = np.random.default_rng(config.seed)
    targets = list(zoo.target_names())
    models = zoo.model_ids()

    # Zipf-like popularity over a randomly assigned target order.
    order = rng.permutation(len(targets))
    weights = 1.0 / (1.0 + order.astype(np.float64)) ** config.zipf_alpha
    weights /= weights.sum()

    queries: list[Query] = []
    for _ in range(config.num_queries):
        target = targets[rng.choice(len(targets), p=weights)]
        if rng.random() < config.batch_fraction:
            chosen = rng.choice(len(models), size=min(config.batch_size,
                                                      len(models)),
                                replace=False)
            pairs = tuple((models[i], target) for i in chosen)
            queries.append(Query(kind="score_batch", target=target,
                                 pairs=pairs))
        else:
            queries.append(Query(kind="rank", target=target,
                                 top_k=config.top_k))
    return queries


def replay(service: SelectionService, queries: list[Query]) -> dict[str, float]:
    """Run a workload; returns the stats summary *of this replay only*.

    Counters are diffed against a snapshot taken at entry, so traffic
    served before the replay (e.g. a warmup) is not misattributed to it.
    """
    before = service.stats_snapshot()
    started = time.perf_counter()
    for query in queries:
        if query.kind == "rank":
            service.rank(query.target, top_k=query.top_k)
        elif query.kind == "score_batch":
            service.score_batch(list(query.pairs))
        else:
            raise ValueError(f"unknown query kind {query.kind!r}")
    elapsed = time.perf_counter() - started
    summary = service.stats_snapshot().since(before).summary()
    summary["wall_s"] = elapsed
    summary["qps"] = len(queries) / elapsed if elapsed > 0 else float("inf")
    return summary
