"""Dependency-free asyncio HTTP front door over a SelectionGateway.

A deliberately small HTTP/1.1 server — ``asyncio.start_server`` plus a
hand-rolled request parser — so the repo keeps its numpy-only runtime
footprint while still being curl-able:

- ``POST /v1/rank``         body: :class:`~repro.serving.protocol.RankRequest`
- ``POST /v1/score_batch``  body: :class:`~repro.serving.protocol.ScoreBatchRequest`
- ``POST /v1/compare``      body: :class:`~repro.serving.protocol.CompareRequest`
- ``GET  /v1/stats``        :class:`~repro.serving.protocol.StatsResponse`
- ``GET  /v1/healthz``      liveness + served namespaces + measured fit cost
- ``GET  /v1/metrics``      Prometheus text exposition of the obs plane

Request correlation: every POST is traced under a ``request_id`` — the
body's optional ``request_id`` field if present, else an
``X-Request-Id`` header, else a server-minted id.  The id used is
echoed in the ``X-Request-Id`` response header; the response *body*
carries ``request_id`` only when the request body did (the protocol's
additive byte-stability rule).

A ``/v1/compare`` never answers 429: a strategy shed during the fan-out
is marked ``"shed"`` inside the 200 response (with its ``retry_after_s``
hint) while the rest of the strategy map still answers.

Every response body is a protocol message; every failure is a typed
:class:`~repro.serving.protocol.ErrorResponse`:

====================================  ======  =======================
condition                             status  error code
====================================  ======  =======================
malformed JSON / failed validation    400     ``bad_request``
unknown model in a pair               400     ``unknown_model``
unknown namespace                     404     ``unknown_namespace``
unknown target dataset                404     ``unknown_target``
unknown strategy spec                 404     ``unknown_strategy``
unknown route                         404     ``not_found``
wrong method on a route               405     ``method_not_allowed``
body over the byte cap                413     ``payload_too_large``
cold-fit queue saturated              429     ``queue_full`` (+
                                              ``Retry-After`` header)
anything else                         500     ``internal``
====================================  ======  =======================

The 429 carries the router's adaptive backpressure hint twice: machine-
readable in ``ErrorResponse.retry_after_s`` (fractional seconds) and as
the integral ``Retry-After`` header HTTP clients already understand.
Connections are single-request (``Connection: close``): the server
optimises for correctness and testability, not keep-alive throughput.

Handlers never block the event loop: fits, artifact I/O, and the
registry's SQLite index all run behind the router's executor (the
``async-blocking`` analysis rule enforces it, inline ``sqlite3`` work
included).
"""

from __future__ import annotations

import asyncio
import json
import math

from repro.obs import EXPOSITION_CONTENT_TYPE
from repro.serving.gateway import (
    SelectionGateway,
    UnknownModelError,
    UnknownNamespaceError,
    UnknownStrategyError,
    UnknownTargetError,
)
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    CompareRequest,
    ErrorResponse,
    ProtocolError,
    RankRequest,
    ScoreBatchRequest,
)
from repro.serving.router import QueueFullError

__all__ = ["GatewayHTTPServer", "MAX_BODY_BYTES"]

#: request-body cap; a selection request has no business being bigger
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}

#: keep header parsing bounded: request line + each header line
_MAX_LINE_BYTES = 8 * 1024
_MAX_HEADERS = 64


class _HTTPError(Exception):
    """Internal: carries a ready-to-send (status, ErrorResponse)."""

    def __init__(
        self,
        status: int,
        error: ErrorResponse,
        headers: tuple[tuple[str, str], ...] = (),
    ):
        super().__init__(error.message)
        self.status = status
        self.error = error
        self.headers = headers


def _error_for(exc: Exception) -> _HTTPError:
    """Map a serving-layer exception to its typed HTTP failure."""
    if isinstance(exc, QueueFullError):
        hint = float(exc.retry_after_s)
        return _HTTPError(
            429,
            ErrorResponse(
                code="queue_full",
                message="cold-fit queue is full; retry later",
                retry_after_s=hint,
            ),
            headers=(("Retry-After", str(max(1, math.ceil(hint)))),),
        )
    if isinstance(exc, UnknownNamespaceError):
        return _HTTPError(
            404, ErrorResponse(code="unknown_namespace", message=str(exc))
        )
    if isinstance(exc, UnknownTargetError):
        return _HTTPError(404, ErrorResponse(code="unknown_target", message=str(exc)))
    if isinstance(exc, UnknownStrategyError):
        return _HTTPError(404, ErrorResponse(code="unknown_strategy", message=str(exc)))
    if isinstance(exc, UnknownModelError):
        return _HTTPError(400, ErrorResponse(code="unknown_model", message=str(exc)))
    if isinstance(exc, ProtocolError):
        return _HTTPError(400, ErrorResponse(code="bad_request", message=str(exc)))
    # Anything else is a server bug: report the class of failure only,
    # never internals (messages/tracebacks stay in server logs).
    return _HTTPError(
        500, ErrorResponse(code="internal", message="internal server error")
    )


class GatewayHTTPServer:
    """Serve one :class:`SelectionGateway` over loopback (or any host).

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start` to learn it (how the tests and the benchmark run).
    """

    def __init__(
        self,
        gateway: SelectionGateway,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        max_body_bytes: int = MAX_BODY_BYTES,
        read_timeout_s: float = 30.0,
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.read_timeout_s = read_timeout_s
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "GatewayHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        async def read_request():
            method, path, headers = await self._read_head(reader)
            if headers.get("expect", "").lower() == "100-continue":
                # curl sends Expect for bodies over ~1 KB and waits up
                # to a second for this interim reply before proceeding.
                writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                await writer.drain()
            body = await self._read_body(reader, headers)
            return method, path, headers, body

        path = "-"  # for the response counter when parsing fails early
        try:
            try:
                # The timeout bounds the *read* phase only: a connection
                # that never sends a full request (port scanner,
                # slowloris) must not pin a task and fd forever.
                method, path, headers, body = await asyncio.wait_for(
                    read_request(), timeout=self.read_timeout_s
                )
                status, payload, extra = await self._route(method, path, headers, body)
            except _HTTPError as exc:
                status, payload, extra = exc.status, exc.error, exc.headers
            except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
                # Client went away or never finished the request
                # (probe, reset, half-close, slowloris): nothing to
                # answer — and emphatically not a 500.
                return
            except Exception as exc:  # noqa: BLE001 - typed 500 boundary
                mapped = _error_for(exc)
                status, payload, extra = (mapped.status, mapped.error, mapped.headers)
            self.gateway.obs.record_http_response(path, status)
            await self._write_response(writer, status, payload, extra)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away while we wrote the response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - teardown race
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str]]:
        request_line = await self._read_line(reader)
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HTTPError(
                400,
                ErrorResponse(
                    code="bad_request", message="malformed HTTP request line"
                ),
            )
        method, raw_path = parts[0].upper(), parts[1]
        path = raw_path.split("?", 1)[0]

        headers: dict[str, str] = {}
        # +1: the terminating blank line needs its own iteration, so a
        # request with exactly _MAX_HEADERS headers is still accepted
        for _ in range(_MAX_HEADERS + 1):
            line = await self._read_line(reader)
            if not line:
                return method, path, headers
            name, sep, value = line.partition(":")
            if not sep:
                raise _HTTPError(
                    400,
                    ErrorResponse(code="bad_request", message="malformed HTTP header"),
                )
            headers[name.strip().lower()] = value.strip()
        raise _HTTPError(
            400, ErrorResponse(code="bad_request", message="too many HTTP headers")
        )

    @staticmethod
    async def _read_line(reader: asyncio.StreamReader) -> str:
        try:
            raw = await reader.readuntil(b"\n")
        except asyncio.LimitOverrunError:
            raise _HTTPError(
                400, ErrorResponse(code="bad_request", message="HTTP line too long")
            ) from None
        if len(raw) > _MAX_LINE_BYTES:
            raise _HTTPError(
                400, ErrorResponse(code="bad_request", message="HTTP line too long")
            )
        return raw.decode("latin-1").rstrip("\r\n")

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes:
        raw_length = headers.get("content-length")
        if raw_length is None:
            return b""
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            raise _HTTPError(
                400,
                ErrorResponse(
                    code="bad_request",
                    message="Content-Length must be a non-negative integer",
                ),
            ) from None
        if length > self.max_body_bytes:
            raise _HTTPError(
                413,
                ErrorResponse(
                    code="payload_too_large",
                    message=f"request body exceeds {self.max_body_bytes} bytes",
                ),
            )
        return await reader.readexactly(length) if length else b""

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _route(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ):
        routes = {
            "/v1/rank": ("POST", self._post_rank),
            "/v1/score_batch": ("POST", self._post_score_batch),
            "/v1/compare": ("POST", self._post_compare),
            "/v1/stats": ("GET", self._get_stats),
            "/v1/healthz": ("GET", self._get_healthz),
            "/v1/metrics": ("GET", self._get_metrics),
        }
        entry = routes.get(path)
        if entry is None:
            raise _HTTPError(
                404, ErrorResponse(code="not_found", message=f"no route {path!r}")
            )
        expected_method, handler = entry
        if method != expected_method:
            raise _HTTPError(
                405,
                ErrorResponse(
                    code="method_not_allowed",
                    message=f"{path} expects {expected_method}",
                ),
                headers=(("Allow", expected_method),),
            )
        return await handler(headers, body)

    def _request_id(self, request, headers: dict[str, str]) -> str:
        """Body field > X-Request-Id header > server-minted id."""
        return (
            request.request_id
            or headers.get("x-request-id")
            or self.gateway.obs.new_request_id()
        )

    async def _post_rank(self, headers: dict[str, str], body: bytes):
        request = RankRequest.from_json(body)  # ProtocolError here -> 400
        rid = self._request_id(request, headers)
        response = await self._dispatch(self.gateway.rank(request, request_id=rid))
        return 200, response, (("X-Request-Id", rid),)

    async def _post_score_batch(self, headers: dict[str, str], body: bytes):
        request = ScoreBatchRequest.from_json(body)
        rid = self._request_id(request, headers)
        response = await self._dispatch(
            self.gateway.score_batch(request, request_id=rid)
        )
        return 200, response, (("X-Request-Id", rid),)

    async def _post_compare(self, headers: dict[str, str], body: bytes):
        request = CompareRequest.from_json(body)
        rid = self._request_id(request, headers)
        response = await self._dispatch(self.gateway.compare(request, request_id=rid))
        return 200, response, (("X-Request-Id", rid),)

    @staticmethod
    async def _dispatch(coro):
        """A ProtocolError *after* parsing means the server built an
        invalid response (e.g. a non-finite score) — that's a 500, not
        the client's fault."""
        try:
            return await coro
        except ProtocolError as exc:
            raise _HTTPError(
                500, ErrorResponse(code="internal", message="internal server error")
            ) from exc

    async def _get_stats(self, headers: dict[str, str], body: bytes):
        return 200, self.gateway.stats(), ()

    async def _get_healthz(self, headers: dict[str, str], body: bytes):
        payload = {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "namespaces": self.gateway.namespaces(),
            "strategies": {
                name: self.gateway.strategies(name)
                for name in self.gateway.namespaces()
            },
            "fit_ms": self.gateway.fit_costs(),
        }
        fleet = self.gateway.fleet_summary()
        if fleet is not None:
            payload["fleet"] = fleet
        return 200, payload, ()

    async def _get_metrics(self, headers: dict[str, str], body: bytes):
        # str payloads are written verbatim as Prometheus exposition text
        return 200, self.gateway.obs.render_metrics(), ()

    # ------------------------------------------------------------------ #
    # response writing
    # ------------------------------------------------------------------ #
    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        extra: tuple[tuple[str, str], ...],
    ) -> None:
        if isinstance(payload, str):  # /v1/metrics exposition text
            body = payload.encode()
            content_type = EXPOSITION_CONTENT_TYPE
        else:
            if hasattr(payload, "to_json"):
                body = payload.to_json().encode()
            else:
                body = json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                ).encode()
            content_type = "application/json"
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in extra)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()
