"""Tabular feature encoding for the prediction-model training set (Stage 3).

The paper's Stage 3 turns (model, dataset) pairs into rows of a table:
categorical metadata (architecture family, pre-train dataset, ...) become
one-hot columns, numeric metadata are passed through (optionally
standardised), and graph/node embeddings are appended as dense blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_2d

__all__ = ["OneHotEncoder", "StandardScaler", "FeatureMatrixBuilder"]


class OneHotEncoder:
    """One-hot encode a categorical column with a stable category order.

    Unknown categories at transform time map to the all-zero vector (the
    leave-one-out evaluation routinely encounters a target dataset whose
    name was never seen during training).
    """

    def __init__(self):
        self.categories_: list[str] = []
        self._index: dict[str, int] = {}

    @property
    def is_fitted(self) -> bool:
        return bool(self._index)

    def fit(self, values) -> "OneHotEncoder":
        self.categories_ = sorted({str(v) for v in values})
        self._index = {c: i for i, c in enumerate(self.categories_)}
        return self

    def transform(self, values) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("OneHotEncoder.transform called before fit")
        out = np.zeros((len(values), len(self.categories_)), dtype=np.float64)
        for row, value in enumerate(values):
            col = self._index.get(str(value))
            if col is not None:
                out[row, col] = 1.0
        return out

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)

    def feature_names(self, prefix: str) -> list[str]:
        return [f"{prefix}={c}" for c in self.categories_]

    # ------------------------------------------------------------------ #
    def get_state(self) -> dict:
        """JSON-able snapshot of the fitted encoder (artifact round-trip)."""
        if not self.is_fitted:
            raise RuntimeError("get_state() called before fit()")
        return {"categories": list(self.categories_)}

    def set_state(self, state: dict) -> "OneHotEncoder":
        """Restore from :meth:`get_state`, preserving the category order."""
        self.categories_ = [str(c) for c in state["categories"]]
        self._index = {c: i for i, c in enumerate(self.categories_)}
        return self


class StandardScaler:
    """Standardise columns to zero mean / unit variance (constant cols → 0)."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, matrix) -> "StandardScaler":
        m = np.asarray(matrix, dtype=np.float64)
        check_2d(m, "matrix")
        self.mean_ = m.mean(axis=0)
        std = m.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, matrix) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        m = np.asarray(matrix, dtype=np.float64)
        check_2d(m, "matrix")
        if m.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"matrix has {m.shape[1]} columns, scaler was fit on "
                f"{self.mean_.shape[0]}"
            )
        return (m - self.mean_) / self.scale_

    def fit_transform(self, matrix) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


@dataclass
class _Column:
    name: str
    kind: str  # "numeric" | "categorical" | "embedding"
    encoder: OneHotEncoder | None = None
    width: int = 1


@dataclass
class FeatureMatrixBuilder:
    """Assemble a dense feature matrix from heterogeneous columns.

    Usage::

        builder = FeatureMatrixBuilder()
        builder.add_numeric("num_params", [1e6, 2e6, ...])
        builder.add_categorical("architecture", ["vit", "resnet", ...])
        builder.add_embedding("model_emb", np.zeros((n, 128)))
        X, names = builder.build()

    The builder records per-column encoders so a *second* builder (for the
    prediction set) can reuse them via :meth:`like`, guaranteeing aligned
    columns between training and prediction matrices.
    """

    n_rows: int | None = None
    _columns: list[_Column] = field(default_factory=list)
    _blocks: list[np.ndarray] = field(default_factory=list)

    def _check_rows(self, n: int, name: str) -> None:
        if self.n_rows is None:
            self.n_rows = n
        elif self.n_rows != n:
            raise ValueError(
                f"column {name!r} has {n} rows, builder expects {self.n_rows}"
            )

    def add_numeric(self, name: str, values) -> "FeatureMatrixBuilder":
        v = np.asarray(values, dtype=np.float64).reshape(-1, 1)
        self._check_rows(v.shape[0], name)
        self._columns.append(_Column(name=name, kind="numeric"))
        self._blocks.append(v)
        return self

    def add_categorical(
        self, name: str, values, encoder: OneHotEncoder | None = None
    ) -> "FeatureMatrixBuilder":
        if encoder is None:
            encoder = OneHotEncoder().fit(values)
        block = encoder.transform(values)
        self._check_rows(block.shape[0], name)
        self._columns.append(
            _Column(name=name, kind="categorical", encoder=encoder, width=block.shape[1])
        )
        self._blocks.append(block)
        return self

    def add_embedding(self, name: str, matrix) -> "FeatureMatrixBuilder":
        m = np.asarray(matrix, dtype=np.float64)
        check_2d(m, name)
        self._check_rows(m.shape[0], name)
        self._columns.append(_Column(name=name, kind="embedding", width=m.shape[1]))
        self._blocks.append(m)
        return self

    def build(self) -> tuple[np.ndarray, list[str]]:
        """Return (matrix, column names)."""
        if not self._blocks:
            raise ValueError("FeatureMatrixBuilder has no columns")
        names: list[str] = []
        for col in self._columns:
            if col.kind == "numeric":
                names.append(col.name)
            elif col.kind == "categorical":
                assert col.encoder is not None
                names.extend(col.encoder.feature_names(col.name))
            else:
                names.extend(f"{col.name}[{i}]" for i in range(col.width))
        return np.hstack(self._blocks), names

    def encoders(self) -> dict[str, OneHotEncoder]:
        """Return the fitted encoders keyed by categorical column name."""
        return {
            c.name: c.encoder for c in self._columns if c.kind == "categorical" and c.encoder
        }
