"""Deterministic random-number management.

Every stochastic component in the library (dataset synthesis, weight
initialisation, random walks, negative sampling, bootstrap draws in the
random forest, ...) receives its randomness from a named, seeded stream so
that full experiments are reproducible bit-for-bit from a single root seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "default_rng", "RngRegistry"]

_MAX_SEED = 2**32 - 1


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    The derivation is stable across processes and Python versions (it uses
    blake2b rather than ``hash()``, which is salted per process).

    >>> derive_seed(0, "zoo", "pretrain") == derive_seed(0, "zoo", "pretrain")
    True
    >>> derive_seed(0, "a") != derive_seed(1, "a")
    True
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "little") % _MAX_SEED


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a numpy Generator; thin wrapper kept for API symmetry."""
    return np.random.default_rng(seed)


class RngRegistry:
    """A registry handing out independent named random streams.

    Streams are derived from the root seed and the stream name, so the
    order in which components request their streams does not affect the
    randomness each receives.  Re-requesting a name returns the *same*
    generator object (state is shared within a run, by design).
    """

    def __init__(self, root_seed: int = 0):
        self._root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def get(self, *names: str) -> np.random.Generator:
        """Return the generator for a named stream, creating it on demand."""
        key = "/".join(names)
        if key not in self._streams:
            seed = derive_seed(self._root_seed, *names)
            self._streams[key] = np.random.default_rng(seed)
        return self._streams[key]

    def fresh(self, *names: str) -> np.random.Generator:
        """Return a brand-new generator for a named stream.

        Unlike :meth:`get`, the result is not cached: calling ``fresh``
        twice with the same name yields two generators in the same initial
        state.  Useful when a component must be re-runnable identically.
        """
        return np.random.default_rng(derive_seed(self._root_seed, *names))

    def child(self, *names: str) -> "RngRegistry":
        """Return a registry rooted at a derived seed (for subcomponents)."""
        return RngRegistry(derive_seed(self._root_seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self._root_seed}, streams={sorted(self._streams)})"
