"""Statistics helpers used throughout the evaluation pipeline.

Pearson correlation (Eq. 1 in the paper) is the headline metric; Spearman
and top-k helpers support the recommendation experiments (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_1d, check_same_length

__all__ = [
    "pearson_correlation",
    "spearman_correlation",
    "rank_of",
    "top_k_indices",
    "summary_stats",
    "SummaryStats",
]


def pearson_correlation(truth, predicted) -> float:
    """Pearson's correlation coefficient between two score vectors.

    Implements Eq. (1) of the paper: the correlation between the actual
    fine-tuning accuracies ``truth`` (T) and the predicted transferability
    scores ``predicted`` (S).  Returns 0.0 when either vector is constant
    (the correlation is undefined; 0 is the conventional "no signal" value
    used by model-selection papers so that degenerate predictors score
    poorly rather than crash the evaluation).
    """
    t = np.asarray(truth, dtype=np.float64)
    s = np.asarray(predicted, dtype=np.float64)
    check_1d(t, "truth")
    check_1d(s, "predicted")
    check_same_length(t, s, "truth", "predicted")
    if t.size < 2:
        raise ValueError("Pearson correlation needs at least two points")
    # A vector of identical values has undefined correlation.  Checking
    # max == min (rather than post-centering variance) avoids float noise:
    # the mean of n identical floats need not equal them exactly.
    if t.max() == t.min() or s.max() == s.min():
        return 0.0
    t_centered = t - t.mean()
    s_centered = s - s.mean()
    denom = np.sqrt((t_centered**2).sum() * (s_centered**2).sum())
    if denom == 0.0 or not np.isfinite(denom):
        return 0.0
    return float(np.clip((t_centered * s_centered).sum() / denom, -1.0, 1.0))


def rank_of(values) -> np.ndarray:
    """Return average ranks (1-based) of ``values``, ties share the mean rank.

    >>> rank_of([10.0, 20.0, 20.0]).tolist()
    [1.0, 2.5, 2.5]
    """
    v = np.asarray(values, dtype=np.float64)
    check_1d(v, "values")
    order = np.argsort(v, kind="mergesort")
    ranks = np.empty(v.size, dtype=np.float64)
    ranks[order] = np.arange(1, v.size + 1, dtype=np.float64)
    # Average ranks over ties.
    sorted_vals = v[order]
    i = 0
    while i < v.size:
        j = i
        while j + 1 < v.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            mean_rank = ranks[order[i : j + 1]].mean()
            ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman_correlation(truth, predicted) -> float:
    """Spearman rank correlation (Pearson over the rank vectors)."""
    t = np.asarray(truth, dtype=np.float64)
    s = np.asarray(predicted, dtype=np.float64)
    check_same_length(t, s, "truth", "predicted")
    return pearson_correlation(rank_of(t), rank_of(s))


def top_k_indices(scores, k: int) -> np.ndarray:
    """Indices of the ``k`` highest scores, best first (stable order)."""
    s = np.asarray(scores, dtype=np.float64)
    check_1d(s, "scores")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, s.size)
    # argsort on negated scores; mergesort keeps ties in input order.
    return np.argsort(-s, kind="mergesort")[:k]


@dataclass(frozen=True)
class SummaryStats:
    """Mean / std / min / max of a sample, as reported in Fig. 6."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int


def summary_stats(values) -> SummaryStats:
    """Compute :class:`SummaryStats` over a non-empty sample."""
    v = np.asarray(values, dtype=np.float64)
    check_1d(v, "values")
    if v.size == 0:
        raise ValueError("summary_stats requires a non-empty sample")
    return SummaryStats(
        mean=float(v.mean()),
        std=float(v.std()),
        minimum=float(v.min()),
        maximum=float(v.max()),
        count=int(v.size),
    )
