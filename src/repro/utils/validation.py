"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_1d",
    "check_2d",
    "check_finite",
    "check_same_length",
    "check_probability",
]


def check_1d(array, name: str) -> None:
    """Raise ``ValueError`` unless ``array`` is one-dimensional."""
    a = np.asarray(array)
    if a.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {a.shape}")


def check_2d(array, name: str) -> None:
    """Raise ``ValueError`` unless ``array`` is two-dimensional."""
    a = np.asarray(array)
    if a.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {a.shape}")


def check_finite(array, name: str) -> None:
    """Raise ``ValueError`` if ``array`` contains NaN or infinity."""
    a = np.asarray(array, dtype=np.float64)
    if not np.isfinite(a).all():
        raise ValueError(f"{name} contains non-finite values")


def check_same_length(a, b, name_a: str, name_b: str) -> None:
    """Raise ``ValueError`` unless the two arrays have equal first dims."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )


def check_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
