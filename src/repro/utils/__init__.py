"""Shared utilities: seeded randomness, statistics, tabular encoding.

These helpers are deliberately dependency-light (numpy only) and are used
by every other subpackage.  Nothing in here knows about models, datasets,
or graphs.
"""

from repro.utils.rng import RngRegistry, default_rng, derive_seed
from repro.utils.stats import (
    pearson_correlation,
    spearman_correlation,
    rank_of,
    top_k_indices,
    summary_stats,
)
from repro.utils.tabular import OneHotEncoder, FeatureMatrixBuilder, StandardScaler
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_finite,
    check_same_length,
    check_probability,
)

__all__ = [
    "RngRegistry",
    "default_rng",
    "derive_seed",
    "pearson_correlation",
    "spearman_correlation",
    "rank_of",
    "top_k_indices",
    "summary_stats",
    "OneHotEncoder",
    "FeatureMatrixBuilder",
    "StandardScaler",
    "check_1d",
    "check_2d",
    "check_finite",
    "check_same_length",
    "check_probability",
]
