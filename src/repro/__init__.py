"""TransferGraph reproduction — model selection with a model zoo via graph learning.

This package reproduces "Model Selection with Model Zoo via Graph Learning"
(Li et al., ICDE 2024) end to end:

- :mod:`repro.nn` — numpy autograd substrate (the paper used PyTorch);
- :mod:`repro.zoo` — a simulated but genuinely-trained model zoo;
- :mod:`repro.store` — the zoo's metadata catalog;
- :mod:`repro.transferability` — LogME / LEEP / NCE / PARC / TransRate / H-score;
- :mod:`repro.probe` — dataset representations and similarity;
- :mod:`repro.graph` — graph construction and Node2Vec(+)/GraphSAGE/GAT;
- :mod:`repro.predictors` — LR / RandomForest / XGBoost-style regressors;
- :mod:`repro.core` — the 4-stage TransferGraph framework and evaluation;
- :mod:`repro.strategies` — the unified SelectionStrategy API: every
  ranker behind one fit/rank/pack interface, addressable by spec string
  (``get_strategy("tg:lr,n2v,all" | "lr:all+logme" | "logme" | ...)``);
- :mod:`repro.baselines` — Random, LogME-as-strategy, Amazon LR
  (strategy subclasses);
- :mod:`repro.serving` — artifact registry, warm-start service, async
  router, v1 wire protocol, namespace gateway, HTTP front door.

Quickstart::

    from repro.core import TransferGraph, TransferGraphConfig
    from repro.zoo import build_default_zoo

    zoo = build_default_zoo(modality="image", seed=0)
    tg = TransferGraph(TransferGraphConfig())
    result = tg.evaluate_loo(zoo, target="stanfordcars")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
