"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``build-zoo``   build (and cache) a model zoo
``rank``        rank zoo models for a target dataset with TransferGraph
``evaluate``    run the leave-one-out comparison of selection strategies
``stats``       print catalog + graph statistics (Table II style)
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TransferGraph reproduction — model selection with a "
                    "model zoo via graph learning (ICDE 2024)",
    )
    parser.add_argument("--modality", choices=("image", "text"),
                        default="image")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", choices=("tiny", "small", "default"),
                        default="small", help="zoo size preset")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("build-zoo", help="build and cache the zoo")

    rank = sub.add_parser("rank", help="rank models for a target dataset")
    rank.add_argument("target", help="target dataset name, e.g. stanfordcars")
    rank.add_argument("--top", type=int, default=5)
    rank.add_argument("--predictor", choices=("lr", "rf", "xgb"),
                      default="xgb")
    rank.add_argument("--graph-learner", default="node2vec",
                      choices=("node2vec", "node2vec+", "graphsage", "gat"))

    evaluate = sub.add_parser("evaluate",
                              help="LOO comparison of selection strategies")
    evaluate.add_argument("--predictor", choices=("lr", "rf", "xgb"),
                          default="xgb")

    sub.add_parser("stats", help="catalog and graph statistics")
    return parser


def _load_zoo(args):
    from repro.zoo import ZooConfig, get_or_build_zoo

    preset = {"tiny": ZooConfig.tiny, "small": ZooConfig.small,
              "default": ZooConfig.default}[args.scale]
    return get_or_build_zoo(preset(modality=args.modality, seed=args.seed))


def _tg_strategy(predictor: str, graph_learner: str = "node2vec"):
    from repro.core import FeatureSet, TransferGraph, TransferGraphConfig

    return TransferGraph(TransferGraphConfig(
        predictor=predictor, graph_learner=graph_learner,
        embedding_dim=32, features=FeatureSet.everything()))


def _cmd_build_zoo(args) -> int:
    zoo = _load_zoo(args)
    print(f"zoo ready: {len(zoo.model_ids())} models, "
          f"{len(zoo.dataset_names())} datasets "
          f"({len(zoo.target_names())} targets)")
    return 0


def _cmd_rank(args) -> int:
    zoo = _load_zoo(args)
    if args.target not in zoo.target_names():
        print(f"error: unknown target {args.target!r}; "
              f"choose from {zoo.target_names()}", file=sys.stderr)
        return 2
    strategy = _tg_strategy(args.predictor, args.graph_learner)
    ranking = strategy.rank_models(zoo, args.target)
    print(f"top {args.top} models for {args.target} ({strategy.name}):")
    for model_id, score in ranking[: args.top]:
        spec = zoo.model(model_id).spec
        print(f"  {model_id:<26} {score:+.3f}  "
              f"[{spec.family}, source={spec.pretrain_dataset}]")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.baselines import AmazonLR, FeatureBasedStrategy, RandomSelection
    from repro.core import evaluate_strategy

    zoo = _load_zoo(args)
    strategies = [
        RandomSelection(seed=args.seed),
        FeatureBasedStrategy("logme"),
        AmazonLR("all+logme"),
        _tg_strategy(args.predictor),
    ]
    print(f"{'strategy':<22}{'avg Pearson':>13}{'avg top-5 acc':>15}")
    for strategy in strategies:
        ev = evaluate_strategy(strategy, zoo)
        print(f"{strategy.name:<22}{ev.average_correlation():>+13.3f}"
              f"{ev.average_top_k_accuracy(5):>15.3f}")
    return 0


def _cmd_stats(args) -> int:
    from repro.graph import build_graph

    zoo = _load_zoo(args)
    print("catalog:", zoo.catalog.stats())
    graph, links = build_graph(zoo)
    for key, value in graph.stats().items():
        print(f"  {key:<34} {value:.1f}" if isinstance(value, float)
              else f"  {key:<34} {value}")
    print(f"  link examples: {len(links.positive)} positive / "
          f"{len(links.negative)} negative")
    return 0


_COMMANDS = {
    "build-zoo": _cmd_build_zoo,
    "rank": _cmd_rank,
    "evaluate": _cmd_evaluate,
    "stats": _cmd_stats,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
