"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``build-zoo``   build (and cache) a model zoo
``rank``        rank zoo models for a target dataset (``--strategy`` picks
                any registered ranker; default TransferGraph)
``evaluate``    run the leave-one-out comparison of selection strategies
                (``--served`` runs it through an in-process gateway's
                ``/v1/compare`` engine and writes ``BENCH_compare.json``)
``stats``       print catalog + graph statistics (Table II style)
``warmup``      pre-fit every target's pipeline into the artifact registry
``serve``       HTTP front door: a multi-namespace selection gateway on
                ``/v1/rank``, ``/v1/score_batch``, ``/v1/stats``,
                ``/v1/healthz``, ``/v1/metrics``; repeatable
                ``--strategy`` adds rankers to every namespace's
                strategy map; ``--log-json`` switches the per-request
                event log from human lines to JSON
``serve-sim``   replay a synthetic query workload against the service
                (``--concurrency N`` routes it through the async
                router; ``--trace-out FILE`` writes per-request span
                traces as JSON lines)
``registry-gc`` sweep artifacts no live strategy/catalog can serve
                (``--gateway`` sweeps the namespace-sharded layout)
``analyze``     run the repo-specific static-analysis suite
                (:mod:`repro.analysis`): lock discipline, async-blocking,
                wire-schema drift, import layering, pickle boundary;
                ``--update-schema`` regenerates the committed protocol
                schema snapshot after additive protocol growth
``migrate-store`` import a legacy JSON catalog into the SQLite store
                (``catalog.json`` → ``catalog.db``) and backfill the
                artifact registry's SQLite index from existing npz
                dirs; idempotent
``docs``        render/check the generated docs tree: ``--protocol``
                writes ``docs/protocol.md`` from the committed wire
                schema (``--check`` gates drift), ``--check-links``
                verifies relative links and CLI examples in
                ``docs/*.md`` + README

Strategy specs (see :mod:`repro.strategies`): ``tg:PRED,LEARNER,FEAT``,
``lr:basic|all|all+logme``, any transferability estimator (``logme``,
``leep``, ...), ``random[:SEED]``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

__all__ = ["main", "build_parser", "default_registry_dir",
           "default_gateway_registry_dir", "parse_namespace_spec"]


def default_registry_dir() -> Path:
    """Default artifact registry location (inside the zoo cache dir)."""
    from repro.zoo.cache import default_cache_dir

    return default_cache_dir() / "serving"


def default_gateway_registry_dir() -> Path:
    """Default root for the gateway's per-namespace registry shards.

    Deliberately distinct from :func:`default_registry_dir`: the gateway
    layout inserts a namespace directory level
    (``<root>/<namespace>/<strategy_fp>/<target>``), which the flat
    ``registry-gc`` sweep must not mistake for dead fingerprint
    namespaces — ``repro registry-gc --gateway`` sweeps this root with
    the shard-aware layout instead.
    """
    from repro.zoo.cache import default_cache_dir

    return default_cache_dir() / "serving_namespaces"


class _TraceFileSink:
    """``--trace-out`` sink: one finished-trace record per JSON line."""

    def __init__(self, path: Path):
        import threading

        self.path = Path(path)
        if self.path.parent != Path():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()
        self.count = 0

    def __call__(self, record: dict) -> None:
        import json

        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self.count += 1

    def close(self) -> None:
        with self._lock:
            self._handle.close()


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return n


def _fraction(value: str) -> float:
    f = float(value)
    if not (0.0 <= f <= 1.0):
        raise argparse.ArgumentTypeError("must be in [0, 1]")
    return f


def _host_port(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError("expected HOST:PORT")
    try:
        n = int(port)
    except ValueError:
        raise argparse.ArgumentTypeError("PORT must be an integer") from None
    if not (0 <= n <= 65535):
        raise argparse.ArgumentTypeError("PORT must be in [0, 65535]")
    return host, n


def _predictor_choices() -> tuple[str, ...]:
    from repro.predictors import PREDICTORS

    return tuple(sorted(PREDICTORS))


def _graph_learner_choices() -> tuple[str, ...]:
    from repro.graph import GRAPH_LEARNERS

    return tuple(sorted(GRAPH_LEARNERS))


def _analysis_rule_choices() -> tuple[str, ...]:
    from repro.analysis import all_rules

    return tuple(cls.id for cls in all_rules())


def _repo_root() -> Path:
    """The checkout root (two levels above the ``repro`` package)."""
    return Path(__file__).resolve().parents[2]


def _strategy_spec(value: str) -> str:
    """argparse type for ``--strategy``: validate the spec, keep the string."""
    from repro.strategies import UnknownStrategyError, get_strategy

    try:
        get_strategy(value)
    except UnknownStrategyError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _fit_budget_spec(value: str) -> tuple[str, int]:
    """argparse type for ``--fit-budget``: ``SPEC=N`` -> (spec, bound)."""
    spec, sep, bound = value.partition("=")
    if not sep or not spec or not bound:
        raise argparse.ArgumentTypeError(
            f"fit budget {value!r} must look like SPEC=N")
    spec = _strategy_spec(spec)
    try:
        n = int(bound)
    except ValueError:
        n = 0
    if n < 1:
        raise argparse.ArgumentTypeError(
            f"fit budget {value!r}: bound must be an integer >= 1")
    return spec, n


_SCALES = ("tiny", "small", "default")


def _scale_presets() -> dict:
    """scale name -> ZooConfig preset constructor (single source)."""
    from repro.zoo import ZooConfig

    return {"tiny": ZooConfig.tiny, "small": ZooConfig.small,
            "default": ZooConfig.default}


def parse_namespace_spec(spec: str) -> tuple[str, str, str | None]:
    """``NAME=MODALITY[:SCALE]`` -> (name, modality, scale or None).

    Examples: ``image=image``, ``text-tiny=text:tiny``.  A missing
    ``:SCALE`` yields ``None`` so ``serve`` can fall back to the global
    ``--scale`` flag.  The name is validated against the gateway's slug
    rule here so a bad one is a clean argparse error, not a ValueError
    traceback at startup.
    """
    from repro.serving.gateway import _NAMESPACE_NAME

    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise argparse.ArgumentTypeError(
            f"namespace spec {spec!r} must look like NAME=MODALITY[:SCALE]")
    if not _NAMESPACE_NAME.fullmatch(name):
        raise argparse.ArgumentTypeError(
            f"namespace spec {spec!r}: name must match "
            f"{_NAMESPACE_NAME.pattern!r}")
    modality, _, scale = rest.partition(":")
    if modality not in ("image", "text"):
        raise argparse.ArgumentTypeError(
            f"namespace spec {spec!r}: modality must be 'image' or 'text'")
    if scale and scale not in _SCALES:
        raise argparse.ArgumentTypeError(
            f"namespace spec {spec!r}: scale must be one of "
            f"{', '.join(_SCALES)}")
    return name, modality, scale or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TransferGraph reproduction — model selection with a "
                    "model zoo via graph learning (ICDE 2024)",
    )
    parser.add_argument("--modality", choices=("image", "text"),
                        default="image")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", choices=("tiny", "small", "default"),
                        default="small", help="zoo size preset")
    sub = parser.add_subparsers(dest="command", required=True)

    # Strategy choices come from the live registries, so new predictors
    # or graph learners appear here without touching the CLI.
    predictors = _predictor_choices()
    learners = _graph_learner_choices()

    def add_strategy_args(p: argparse.ArgumentParser,
                          strategy_flag: bool = True) -> None:
        p.add_argument("--predictor", choices=predictors, default="xgb")
        p.add_argument("--graph-learner", default="node2vec",
                       choices=learners)
        if strategy_flag:
            p.add_argument("--strategy", type=_strategy_spec, default=None,
                           metavar="SPEC",
                           help="serve this strategy instead of the classic "
                                "TransferGraph built from --predictor/"
                                "--graph-learner (e.g. tg:lr,n2v,all, "
                                "lr:all+logme, logme, random)")

    def add_registry_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--registry-dir", type=Path, default=None,
                       help="artifact registry root "
                            "(default: <zoo cache>/serving)")

    sub.add_parser("build-zoo", help="build and cache the zoo")

    rank = sub.add_parser("rank", help="rank models for a target dataset")
    rank.add_argument("target", help="target dataset name, e.g. stanfordcars")
    rank.add_argument("--top", type=_positive_int, default=5)
    add_strategy_args(rank)
    add_registry_arg(rank)
    rank.add_argument("--no-registry", action="store_true",
                      help="fit in memory only; skip the artifact registry")

    evaluate = sub.add_parser("evaluate",
                              help="LOO comparison of selection strategies")
    evaluate.add_argument("--predictor", choices=predictors, default="xgb")
    evaluate.add_argument("--graph-learner", default="node2vec",
                          choices=learners)
    evaluate.add_argument("--served", action="store_true",
                          help="compare through an in-process serving "
                               "gateway (the /v1/compare engine) instead "
                               "of the offline LOO harness, and write a "
                               "machine-readable benchmark report")
    evaluate.add_argument("--strategy", action="append", dest="strategies",
                          type=_strategy_spec, metavar="SPEC",
                          help="add this strategy to the served comparison "
                               "map (repeatable; --served only); the "
                               "TransferGraph from --predictor/"
                               "--graph-learner is always compared")
    evaluate.add_argument("--reference", type=_strategy_spec, default=None,
                          metavar="SPEC",
                          help="strategy correlations/overlap are computed "
                               "against (--served only; default: the "
                               "TransferGraph from --predictor)")
    evaluate.add_argument("--top-k", type=_positive_int, default=3,
                          dest="top_k",
                          help="overlap depth for the served comparison")
    evaluate.add_argument("--output", type=Path, default=None,
                          help="served-report path (--served only; "
                               "default: ./BENCH_compare.json)")
    evaluate.add_argument("--trace-out", type=Path, default=None,
                          metavar="FILE",
                          help="write each served request's trace (with "
                               "fit-stage spans) as JSON lines "
                               "(--served only)")

    sub.add_parser("stats", help="catalog and graph statistics")

    warmup = sub.add_parser(
        "warmup", help="pre-fit all targets into the artifact registry")
    add_strategy_args(warmup)
    add_registry_arg(warmup)
    warmup.add_argument("--fit-executor", choices=("thread", "process"),
                        default=None,
                        help="where cold fits run (default: "
                             "$REPRO_FIT_EXECUTOR, else thread); 'process' "
                             "warms targets in parallel worker processes")
    warmup.add_argument("--fit-workers", type=_positive_int, default=2,
                        help="parallel warmup fits (process executor only)")

    serve = sub.add_parser(
        "serve", help="HTTP front door over a multi-namespace gateway")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 binds an ephemeral port)")
    serve.add_argument("--namespace", action="append", dest="namespaces",
                       type=parse_namespace_spec, metavar="NAME=MODALITY[:SCALE]",
                       help="serve this namespace (repeatable); default: "
                            "one namespace named after --modality")
    add_strategy_args(serve, strategy_flag=False)
    serve.add_argument("--strategy", action="append", dest="strategies",
                       type=_strategy_spec, metavar="SPEC",
                       help="add this strategy to every namespace's map "
                            "(repeatable); the classic TransferGraph from "
                            "--predictor/--graph-learner stays the default "
                            "answering requests without a strategy field")
    serve.add_argument("--shed-start", type=_fraction, default=1.0,
                       help="queue-depth fraction where probabilistic early "
                            "shedding begins (1.0 = hard cliff only)")
    serve.add_argument("--fit-budget", action="append", dest="fit_budgets",
                       type=_fit_budget_spec, metavar="SPEC=N",
                       help="per-strategy cold-fit queue bound (repeatable); "
                            "strategies without an explicit bound get the "
                            "weighted default (--max-pending-fits scaled by "
                            "the strategy's fit cost)")
    serve.add_argument("--weighted-fit-budgets", action="store_true",
                       help="scale every strategy's cold-fit queue bound by "
                            "its fit cost (heavy TG fits queue shallow, ~ms "
                            "transferability fits queue deep) so a TG fit "
                            "storm cannot starve cheap strategies")
    serve.add_argument("--registry-dir", type=Path, default=None,
                       help="gateway registry root, sharded per namespace "
                            "(default: <zoo cache>/serving_namespaces)")
    serve.add_argument("--cache-size", type=_positive_int, default=32,
                       help="per-namespace in-memory LRU capacity")
    serve.add_argument("--max-pending-fits", type=_positive_int, default=8,
                       help="per-namespace cold-fit queue bound")
    serve.add_argument("--fit-workers", type=_positive_int, default=2,
                       help="per-namespace parallel cold-fit workers")
    serve.add_argument("--fit-executor",
                       choices=("thread", "process", "socket"),
                       default=None,
                       help="where cold fits run: 'thread' shares the "
                            "server process (GIL-bound), 'process' ships "
                            "each fit to a worker process over the "
                            "artifact boundary for true multi-core "
                            "fitting, 'socket' dispatches to external "
                            "'repro fit-worker' daemons via the fleet "
                            "coordinator (default: $REPRO_FIT_EXECUTOR, "
                            "else thread)")
    serve.add_argument("--fleet-listen", type=_host_port, default=None,
                       metavar="HOST:PORT",
                       help="fleet coordinator bind address for "
                            "--fit-executor socket (PORT 0 binds an "
                            "ephemeral port; default 127.0.0.1:0 — "
                            "bind beyond loopback only with "
                            "--fleet-secret or on a trusted network)")
    serve.add_argument("--fleet-secret", default=None, metavar="SECRET",
                       help="shared fleet-auth secret: workers must "
                            "answer an HMAC challenge with the same "
                            "secret before they may register or "
                            "receive fits (default: $REPRO_FLEET_SECRET; "
                            "unset accepts any client that can reach "
                            "--fleet-listen)")
    serve.add_argument("--fit-timeout", type=float, default=None,
                       dest="fit_timeout", metavar="SECONDS",
                       help="bound one cold fit (process/socket executors "
                            "only); an overrunning fit sheds its "
                            "coalesced group with a typed error")
    serve.add_argument("--no-prestart", action="store_true",
                       help="skip readying the remote fit plane at "
                            "startup; process workers then spawn lazily "
                            "on the first cold fit")
    serve.add_argument("--warmup", action="store_true",
                       help="pre-fit every namespace's targets before "
                            "accepting traffic")
    serve.add_argument("--log-json", action="store_true",
                       help="emit one JSON event per request on stderr "
                            "instead of the human log line")
    serve.add_argument("--slow-ms", type=float, default=1000.0,
                       help="slow-request threshold in ms; slower "
                            "requests log their full span tree")

    fit_worker = sub.add_parser(
        "fit-worker",
        help="fleet fit daemon: register with a gateway's coordinator "
             "and serve cold fits over the socket protocol")
    fit_worker.add_argument("--connect", type=_host_port, required=True,
                            metavar="HOST:PORT",
                            help="fleet coordinator address (printed by "
                                 "'repro serve --fit-executor socket')")
    fit_worker.add_argument("--name", default=None,
                            help="worker name shown in healthz/fleet "
                                 "summaries (default: <hostname>-<pid>)")
    fit_worker.add_argument("--concurrency", type=_positive_int, default=1,
                            help="fits this worker runs at once")
    fit_worker.add_argument("--fleet-secret", default=None, metavar="SECRET",
                            help="shared fleet-auth secret; must match "
                                 "the gateway's --fleet-secret (default: "
                                 "$REPRO_FLEET_SECRET)")

    sim = sub.add_parser(
        "serve-sim", help="replay a synthetic workload; report latency")
    add_strategy_args(sim)
    add_registry_arg(sim)
    sim.add_argument("--queries", type=_positive_int, default=200,
                     help="number of queries in the synthetic stream")
    sim.add_argument("--batch-fraction", type=_fraction, default=0.25,
                     help="fraction of queries that are score_batch calls")
    sim.add_argument("--top", type=_positive_int, default=5)
    sim.add_argument("--cache-size", type=_positive_int, default=32,
                     help="in-memory LRU capacity (fitted pipelines)")
    sim.add_argument("--concurrency", type=_positive_int, default=1,
                     help="concurrent clients; >1 replays through the "
                          "async router with fit coalescing")
    sim.add_argument("--max-pending-fits", type=_positive_int, default=8,
                     help="router cold-fit queue bound (with --concurrency)")
    sim.add_argument("--partition", action="store_true",
                     help="split the stream across clients instead of "
                          "replaying it once per client")
    sim.add_argument("--shed-start", type=_fraction, default=1.0,
                     help="queue-depth fraction where probabilistic early "
                          "shedding begins (1.0 = hard cliff only)")
    sim.add_argument("--fit-executor", choices=("thread", "process"),
                     default=None,
                     help="where the router runs cold fits (with "
                          "--concurrency > 1; default: "
                          "$REPRO_FIT_EXECUTOR, else thread)")
    sim.add_argument("--log-json", action="store_true",
                     help="emit one JSON event per replayed request on "
                          "stdout (same record shape as live serving)")
    sim.add_argument("--slow-ms", type=float, default=1000.0,
                     help="slow-request threshold in ms; slower requests "
                          "log their full span tree")
    sim.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                     help="write every replayed request's trace (with "
                          "spans) as JSON lines to FILE")

    gc = sub.add_parser(
        "registry-gc",
        help="sweep registry artifacts no live strategy/catalog can serve")
    add_strategy_args(gc)
    add_registry_arg(gc)
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without deleting")
    gc.add_argument("--only-strategy", action="store_true",
                    help="treat ONLY the --strategy (or --predictor/"
                         "--graph-learner) selection as live (default: "
                         "every strategy the CLI can currently serve)")
    gc.add_argument("--gateway", action="store_true",
                    help="sweep the gateway's namespace-sharded layout "
                         "(<root>/<namespace>/<strategy_fp>/<target>); "
                         "default root becomes the gateway registry dir. "
                         "Shards may serve different zoos, so this sweeps "
                         "dead strategies and crash partials only — never "
                         "catalog-stale artifacts")

    analyze = sub.add_parser(
        "analyze",
        help="run the repo-specific static-analysis suite "
             "(exit 0 clean, 1 findings)")
    analyze.add_argument("--rule", action="append", default=None,
                         choices=_analysis_rule_choices(), metavar="RULE",
                         help="run only this rule (repeatable; default: "
                              f"all of {', '.join(_analysis_rule_choices())})")
    analyze.add_argument("--format", choices=("human", "json"),
                         default="human", dest="fmt",
                         help="finding output format (default: human)")
    analyze.add_argument("--root", type=Path, default=None,
                         help="repository root to analyze "
                              "(default: this checkout)")
    analyze.add_argument("--update-schema", action="store_true",
                         help="regenerate benchmarks/baselines/"
                              "protocol_schema.json from serving/protocol.py "
                              "instead of checking")

    migrate = sub.add_parser(
        "migrate-store",
        help="import a JSON catalog (and npz artifact dirs) into the "
             "SQLite store")
    migrate.add_argument("--catalog", type=Path, default=None,
                         help="catalog.json to import (default: the cached "
                              "zoo's, from --modality/--scale/--seed)")
    migrate.add_argument("--db", type=Path, default=None,
                         help="SQLite catalog destination "
                              "(default: catalog.db beside --catalog)")
    add_registry_arg(migrate)
    migrate.add_argument("--no-registry", action="store_true",
                         help="skip the artifact-index backfill")
    migrate.add_argument("--gateway", action="store_true",
                         help="backfill the gateway's namespace-sharded "
                              "registry layout (one index DB per shard); "
                              "default root becomes the gateway registry dir")

    docs = sub.add_parser(
        "docs",
        help="render / check the generated docs tree "
             "(exit 0 clean, 1 drift or broken links)")
    docs.add_argument("--protocol", action="store_true",
                      help="render docs/protocol.md from the committed "
                           "wire-schema snapshot + fleet frame table")
    docs.add_argument("--check", action="store_true",
                      help="with --protocol: compare against the committed "
                           "doc instead of writing; exit 1 on drift")
    docs.add_argument("--check-links", action="store_true",
                      help="check docs/*.md + README: relative links "
                           "resolve, fenced CLI examples name real "
                           "subcommands")
    docs.add_argument("--root", type=Path, default=None,
                      help="repository root (default: this checkout)")
    return parser


def _load_zoo(args):
    from repro.zoo import get_or_build_zoo

    preset = _scale_presets()[args.scale]
    return get_or_build_zoo(preset(modality=args.modality, seed=args.seed))


def _tg_config(predictor: str, graph_learner: str = "node2vec"):
    from repro.core import FeatureSet, TransferGraphConfig

    return TransferGraphConfig(
        predictor=predictor, graph_learner=graph_learner,
        embedding_dim=32, features=FeatureSet.everything())


def _tg_strategy(predictor: str, graph_learner: str = "node2vec"):
    from repro.core import TransferGraph

    return TransferGraph(_tg_config(predictor, graph_learner))


#: TransferGraphConfig overrides the CLI applies to tg:/lr: specs, so a
#: --strategy TG variant fingerprints identically to the classic flags
_CLI_TG_OVERRIDES = {"embedding_dim": 32}


def _cli_strategy(spec: str):
    """Resolve one --strategy spec under the CLI's TG config defaults."""
    from repro.strategies import get_strategy

    return get_strategy(spec, **_CLI_TG_OVERRIDES)


def _cli_default_strategy(args):
    """The strategy the CLI serves when no --strategy is given (or the
    given one): classic TransferGraph from --predictor/--graph-learner."""
    from repro.strategies import TransferGraphStrategy

    spec = getattr(args, "strategy", None)
    if spec:
        return _cli_strategy(spec)
    return TransferGraphStrategy(_tg_config(args.predictor,
                                            args.graph_learner))


def _cli_live_strategies():
    """Every strategy the CLI can currently serve (the registry-gc
    default live set): all TG predictor × learner × feature-tag combos
    under the CLI's config defaults, the LR baselines, every
    transferability estimator, and random."""
    from repro.strategies import available_specs

    return [_cli_strategy(spec) for spec in available_specs()]


def _service(zoo, args, cache_size: int = 32):
    from repro.serving import ArtifactRegistry, SelectionService

    registry = None
    if not getattr(args, "no_registry", False):
        root = args.registry_dir or default_registry_dir()
        registry = ArtifactRegistry(root)
    return SelectionService(zoo, _cli_default_strategy(args),
                            registry=registry, cache_size=cache_size)


def _cmd_build_zoo(args) -> int:
    zoo = _load_zoo(args)
    print(f"zoo ready: {len(zoo.model_ids())} models, "
          f"{len(zoo.dataset_names())} datasets "
          f"({len(zoo.target_names())} targets)")
    return 0


def _cmd_rank(args) -> int:
    from repro.serving import RankRequest

    zoo = _load_zoo(args)
    if args.target not in zoo.target_names():
        print(f"error: unknown target {args.target!r}; "
              f"choose from {zoo.target_names()}", file=sys.stderr)
        return 2
    service = _service(zoo, args)
    # Same typed request/response pair the HTTP front door serves, so
    # the CLI cannot drift from the wire contract.
    response = service.handle(RankRequest(target=args.target,
                                          top_k=args.top))
    print(f"top {args.top} models for {response.target} "
          f"({service.strategy.name}):")
    for model_id, score in response.ranking:
        spec = zoo.model(model_id).spec
        print(f"  {model_id:<26} {score:+.3f}  "
              f"[{spec.family}, source={spec.pretrain_dataset}]")
    summary = service.stats()
    source = "cache" if summary["fits"] == 0 else "cold fit"
    print(f"  ({source}, {summary['p50_ms']:.1f} ms)")
    return 0


def _cmd_evaluate(args) -> int:
    if args.served:
        return _cmd_evaluate_served(args)
    from repro.baselines import AmazonLR, FeatureBasedStrategy, RandomSelection
    from repro.core import evaluate_strategy

    zoo = _load_zoo(args)
    strategies = [
        RandomSelection(seed=args.seed),
        FeatureBasedStrategy("logme"),
        AmazonLR("all+logme"),
        _tg_strategy(args.predictor, args.graph_learner),
    ]
    print(f"{'strategy':<22}{'avg Pearson':>13}{'avg top-5 acc':>15}")
    for strategy in strategies:
        ev = evaluate_strategy(strategy, zoo)
        print(f"{strategy.name:<22}{ev.average_correlation():>+13.3f}"
              f"{ev.average_top_k_accuracy(5):>15.3f}")
    return 0


def _cmd_evaluate_served(args) -> int:
    """``evaluate --served``: the /v1/compare engine, offline.

    Spins a memory-only gateway in-process (one namespace, the requested
    strategy map with weighted fit budgets), warms it, replays every
    target through the same ``compare`` entry point the HTTP front door
    serves, and writes the machine-readable ``BENCH_compare.json``
    report the CI benchmark gate consumes.
    """
    from repro.obs import Observability
    from repro.serving import SelectionGateway, run_served_evaluation, \
        write_report
    from repro.strategies import TransferGraphStrategy

    zoo = _load_zoo(args)
    default_strategy = TransferGraphStrategy(
        _tg_config(args.predictor, args.graph_learner))
    extras: list = []
    for spec in [*(args.strategies or []),
                 *([args.reference] if args.reference else [])]:
        strat = _cli_strategy(spec)
        if strat.spec != default_strategy.spec and \
                all(strat.spec != s.spec for s in extras):
            extras.append(strat)

    sink = None
    obs = None
    if args.trace_out:
        sink = _TraceFileSink(args.trace_out)
        obs = Observability()
        obs.add_trace_sink(sink)

    namespace = args.modality
    gateway = SelectionGateway(obs=obs)  # memory-only: the report must
    gateway.add_namespace(   # measure this run's fits, not a previous run's
        namespace, zoo, default_strategy, strategies=tuple(extras),
        fit_budgets="weighted",
        cache_size=max(32, len(zoo.target_names())))
    print(f"served comparison: namespace {namespace!r}, strategies "
          f"{', '.join(gateway.strategies(namespace))} over "
          f"{len(zoo.target_names())} targets", flush=True)
    try:
        report = run_served_evaluation(
            gateway, namespace, reference=args.reference, top_k=args.top_k)
    finally:
        gateway.close()
        if sink is not None:
            sink.close()
            print(f"wrote {sink.count} traces to {sink.path}")

    reference = report["reference"]
    k = report["top_k"]
    print(f"reference {reference}, top-{k} overlap, "
          f"{report['wall_s']:.2f} s wall")
    print(f"{'strategy':<22}{'pearson':>9}{'spearman':>10}"
          f"{'overlap':>9}{'warm p95':>11}{'budget':>8}{'shed':>6}")
    for spec, row in report["strategies"].items():
        def cell(value, width=9):
            return f"{value:>+{width}.3f}" if value is not None \
                else " " * (width - 2) + "--"
        print(f"{spec:<22}{cell(row['mean_pearson'])}"
              f"{cell(row['mean_spearman'], 10)}"
              f"{cell(row['mean_top_k_overlap'])}"
              f"{row['warm_rank_p95_ms']:>9.2f}ms"
              f"{row['fit_budget']:>8d}{row['targets_shed']:>6d}")
    path = write_report(args.output or Path("BENCH_compare.json"), report)
    print(f"wrote {path}")
    return 0


def _cmd_stats(args) -> int:
    from repro.graph import build_graph

    zoo = _load_zoo(args)
    print("catalog:", zoo.catalog.stats())
    graph, links = build_graph(zoo)
    for key, value in graph.stats().items():
        print(f"  {key:<34} {value:.1f}" if isinstance(value, float)
              else f"  {key:<34} {value}")
    print(f"  link examples: {len(links.positive)} positive / "
          f"{len(links.negative)} negative")
    return 0


def _cmd_warmup(args) -> int:
    zoo = _load_zoo(args)
    service = _service(zoo, args, cache_size=max(32, len(zoo.target_names())))
    executor = args.fit_executor or os.environ.get("REPRO_FIT_EXECUTOR",
                                                   "thread")
    print(f"warming {len(zoo.target_names())} targets into "
          f"{service.registry.root} ({service.strategy.name}, "
          f"{executor} executor)")
    if executor == "process":
        # Route through the async router so cold fits land on the
        # process fit plane and distinct targets warm in parallel.
        import asyncio

        from repro.serving import AsyncSelectionRouter

        router = AsyncSelectionRouter(
            service, max_pending_fits=len(zoo.target_names()) or 1,
            fit_workers=args.fit_workers, fit_executor="process")
        try:
            router.prestart_fit_plane()
            timings = asyncio.run(router.warmup())
        finally:
            router.close()
    else:
        timings = service.warmup()
    for target, seconds in timings.items():
        print(f"  {target:<26} {seconds * 1e3:8.1f} ms")
    summary = service.stats()
    print(f"done: {summary['fits']:.0f} fitted, "
          f"{summary['registry_hits']:.0f} already in registry, "
          f"total {sum(timings.values()):.2f} s")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.obs import EventLog, Observability
    from repro.serving import GatewayHTTPServer, SelectionGateway
    from repro.zoo import get_or_build_zoo

    specs = args.namespaces or [(args.modality, args.modality, args.scale)]
    names = [name for name, _, _ in specs]
    if len(set(names)) != len(names):
        print(f"error: duplicate namespace names in {names}",
              file=sys.stderr)
        return 2
    root = args.registry_dir or default_gateway_registry_dir()
    # One request event per line on stderr (human by default, --log-json
    # for machines); the same plane backs /v1/metrics.
    obs = Observability(event_log=EventLog(json_lines=args.log_json,
                                           slow_ms=args.slow_ms))
    executor = args.fit_executor or os.environ.get("REPRO_FIT_EXECUTOR",
                                                   "thread")
    fleet = None
    if executor == "socket":
        from repro.fleet import FleetCoordinator

        fleet_host, fleet_port = args.fleet_listen or ("127.0.0.1", 0)
        secret = args.fleet_secret or os.environ.get("REPRO_FLEET_SECRET")
        fleet = FleetCoordinator(fleet_host, fleet_port,
                                 fit_timeout_s=args.fit_timeout,
                                 secret=secret, obs=obs)
        fleet_host, fleet_port = fleet.start()
        if secret is None and fleet_host not in ("127.0.0.1", "::1",
                                                 "localhost"):
            print(f"fleet: WARNING — listener {fleet_host}:{fleet_port} "
                  f"is unauthenticated; anyone who can reach it can join "
                  f"the fleet and feed fit results into this gateway. "
                  f"Set --fleet-secret / REPRO_FLEET_SECRET, or keep "
                  f"--fleet-listen on 127.0.0.1.", file=sys.stderr,
                  flush=True)
        auth = "" if secret is None else " --fleet-secret <same secret>"
        print(f"fleet: coordinator listening on "
              f"{fleet_host}:{fleet_port} — connect workers with "
              f"'repro fit-worker --connect {fleet_host}:{fleet_port}"
              f"{auth}'", flush=True)
    gateway = SelectionGateway(registry_root=root, obs=obs, fleet=fleet)
    presets = _scale_presets()
    default_strategy = _cli_default_strategy(args)
    extra_strategies: list = []
    for spec in args.strategies or []:
        strat = _cli_strategy(spec)
        if strat.spec != default_strategy.spec and \
                all(strat.spec != s.spec for s in extra_strategies):
            extra_strategies.append(strat)
    fit_budgets = None
    if args.fit_budgets:
        fit_budgets = dict(args.fit_budgets)
    elif args.weighted_fit_budgets:
        fit_budgets = "weighted"
    for name, modality, scale in specs:
        scale = scale or args.scale  # spec omitted :SCALE -> --scale
        zoo = get_or_build_zoo(presets[scale](modality=modality,
                                              seed=args.seed))
        gateway.add_namespace(
            name, zoo, default_strategy,
            strategies=extra_strategies,
            cache_size=args.cache_size,
            max_pending_fits=args.max_pending_fits,
            fit_budgets=fit_budgets,
            fit_workers=args.fit_workers,
            shed_start=args.shed_start,
            fit_executor=args.fit_executor,
            fit_timeout_s=args.fit_timeout)
        budgets = ", ".join(
            f"{spec}={gateway.router(name, spec).max_pending_fits}"
            for spec in gateway.strategies(name))
        print(f"namespace {name!r}: {modality}/{scale} zoo, "
              f"{len(zoo.model_ids())} models, "
              f"{len(zoo.target_names())} targets, "
              f"strategies: {', '.join(gateway.strategies(name))} "
              f"(fit budgets {budgets}; registry shard {root / name})",
              flush=True)

    if not args.no_prestart:
        workers = gateway.prestart_fit_planes()  # no-op in thread mode
        if workers:
            noun = "fleet workers" if fleet is not None else "worker processes"
            print(f"fit plane: {workers} {noun} live", flush=True)

    async def run() -> None:
        if args.warmup:  # before binding: no traffic races the warmup
            print("warming namespaces ...", flush=True)
            await gateway.warmup()
        server = GatewayHTTPServer(gateway, args.host, args.port)
        host, port = await server.start()
        example = gateway.namespaces()[0]
        target = gateway.service(example).zoo.target_names()[0]
        print(f"serving on http://{host}:{port} (protocol v1, "
              f"namespaces: {', '.join(gateway.namespaces())})", flush=True)
        print(f"  curl http://{host}:{port}/v1/healthz", flush=True)
        print(f"  curl http://{host}:{port}/v1/metrics", flush=True)
        print(f"  curl -X POST http://{host}:{port}/v1/rank -d "
              f"'{{\"namespace\": \"{example}\", \"target\": \"{target}\", "
              f"\"top_k\": 5}}'", flush=True)
        if extra_strategies:
            print(f"  curl -X POST http://{host}:{port}/v1/rank -d "
                  f"'{{\"namespace\": \"{example}\", \"target\": "
                  f"\"{target}\", \"strategy\": "
                  f"\"{extra_strategies[0].spec}\"}}'", flush=True)
        print(f"  curl -X POST http://{host}:{port}/v1/compare -d "
              f"'{{\"namespace\": \"{example}\", \"target\": "
              f"\"{target}\"}}'", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        gateway.close()
    return 0


def _cmd_fit_worker(args) -> int:
    import asyncio

    from repro.fleet import FitPlaneError, FitWorker

    host, port = args.connect
    worker = FitWorker(host, port, name=args.name,
                       concurrency=args.concurrency,
                       secret=(args.fleet_secret
                               or os.environ.get("REPRO_FLEET_SECRET")),
                       echo=lambda line: print(line, flush=True))
    print(f"fit-worker {worker.name!r}: connecting to {host}:{port} "
          f"(concurrency {args.concurrency})", flush=True)
    try:
        asyncio.run(worker.run())
    except ConnectionError as exc:
        print(f"fit-worker: connection failed: {exc}", file=sys.stderr)
        return 1
    except FitPlaneError as exc:
        print(f"fit-worker: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass
    print(f"fit-worker {worker.name!r}: coordinator gone, exiting "
          f"({worker.fits_done} fits served)", flush=True)
    return 0


def _cmd_serve_sim(args) -> int:
    from repro.obs import EventLog, Observability
    from repro.serving import (
        AsyncSelectionRouter,
        WorkloadConfig,
        generate_workload,
        replay,
        replay_concurrent,
    )

    zoo = _load_zoo(args)
    service = _service(zoo, args, cache_size=args.cache_size)
    workload = generate_workload(zoo, WorkloadConfig(
        num_queries=args.queries, batch_fraction=args.batch_fraction,
        top_k=args.top, seed=args.seed))

    # The replay summary goes through the same event formatter as live
    # serving; --log-json additionally streams one event per request.
    event_log = EventLog(stream=sys.stdout, json_lines=args.log_json,
                         slow_ms=args.slow_ms)
    obs = sink = None
    if args.log_json or args.trace_out:
        obs = Observability(event_log=event_log if args.log_json else None)
        if args.trace_out:
            sink = _TraceFileSink(args.trace_out)
            obs.add_trace_sink(sink)

    try:
        if args.concurrency == 1:
            print(f"replaying {len(workload)} queries "
                  f"({service.strategy.name}, "
                  f"registry={'on' if service.registry else 'off'})")
            summary = replay(service, workload, obs=obs)
        else:
            total = len(workload) if args.partition \
                else len(workload) * args.concurrency
            print(f"replaying {total} queries over {args.concurrency} "
                  f"async clients ({service.strategy.name}, "
                  f"registry={'on' if service.registry else 'off'})")
            router = AsyncSelectionRouter(
                service, max_pending_fits=args.max_pending_fits,
                shed_start=args.shed_start,
                fit_executor=args.fit_executor)
            router.prestart_fit_plane()
            try:
                summary = replay_concurrent(router, workload,
                                            clients=args.concurrency,
                                            partition=args.partition,
                                            obs=obs)
            finally:
                router.close()
    finally:
        if sink is not None:
            sink.close()

    print(f"  p50 latency      {summary['p50_ms']:10.2f} ms")
    print(f"  p95 latency      {summary['p95_ms']:10.2f} ms")
    print(f"  max latency      {summary['max_ms']:10.2f} ms")
    print(f"  throughput       {summary['qps']:10.1f} qps")
    print(f"  cache hit rate   {summary['hit_rate']:10.1%}")
    print(f"  cold fits        {summary['fits']:10.0f}")
    print(f"  registry hits    {summary['registry_hits']:10.0f}")
    if args.concurrency > 1:
        print(f"  coalesced        {summary['coalesced']:10.0f}")
        print(f"  rejections       {summary['rejections']:10.0f}"
              f"  (retried {summary['retries']:.0f})")
        print(f"  peak fit queue   {summary['peak_pending_fits']:10.0f}")
        print(f"  fit p95          {summary['fit_p95_ms']:10.2f} ms")
        print(f"  predict p95      {summary['predict_p95_ms']:10.2f} ms")
    if sink is not None:
        print(f"  traces written   {sink.count:10d}  ({sink.path})")
    event_log.emit_summary("serve-sim", **{
        k: round(v, 3) if isinstance(v, float) else v
        for k, v in summary.items()})
    return 0


def _cmd_registry_gc(args) -> int:
    from repro.serving import ArtifactRegistry

    if args.gateway:
        # Gateway shards may serve different zoos per namespace
        # (--namespace NAME=MODALITY[:SCALE]); one catalog fingerprint
        # cannot judge staleness across them, so the sharded sweep only
        # removes dead fingerprints and crash partials.
        zoo = None
        root = args.registry_dir or default_gateway_registry_dir()
        layout = "namespaces"
    else:
        zoo = _load_zoo(args)
        root = args.registry_dir or default_registry_dir()
        layout = "flat"
    registry = ArtifactRegistry(root)
    if args.only_strategy:
        live = [_cli_default_strategy(args)]
        scope = live[0].name
    else:
        # Anything the CLI can still serve is live: artifacts warmed
        # under a *different* strategy than today's flags must survive
        # a sweep, or the next query under that strategy refits.  The
        # enumerable roster can't cover parameterized specs (random:N),
        # so an explicit --strategy joins it.
        live = _cli_live_strategies()
        if args.strategy:
            live.append(_cli_strategy(args.strategy))
        scope = f"all {len(live)} servable strategies"
    report = registry.gc(live, zoo, dry_run=args.dry_run, layout=layout)
    verb = "would reclaim" if args.dry_run else "reclaimed"
    print(f"registry-gc {root} "
          f"(live: {scope}"
          f"{', gateway layout' if args.gateway else ''}"
          f"{', dry run' if args.dry_run else ''})")
    print(f"  namespaces removed {report['namespaces_removed']:6d}")
    print(f"  artifacts removed  {report['artifacts_removed']:6d}")
    print(f"  artifacts kept     {report['artifacts_kept']:6d}")
    print(f"  {verb:<18} {report['bytes_reclaimed'] / 1024:6.1f} KiB")
    return 0


def _cmd_analyze(args) -> int:
    import json

    from repro.analysis import (AnalysisError, Project, SNAPSHOT_PATH,
                                extract_schema, format_findings, run_analysis)

    root = args.root or _repo_root()
    try:
        if args.update_schema:
            schema = extract_schema(Project(root))
            path = Path(root) / SNAPSHOT_PATH
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(schema, indent=2, sort_keys=True) + "\n",
                            encoding="utf-8")
            print(f"analyze: wrote {path}")
            return 0
        findings = run_analysis(root, args.rule)
    except AnalysisError as exc:
        print(f"analyze: error: {exc}", file=sys.stderr)
        return 2
    print(format_findings(findings, args.fmt))
    return 1 if findings else 0


def _cmd_migrate_store(args) -> int:
    from repro.serving import ArtifactRegistry
    from repro.store import migrate_catalog_json

    did_anything = False
    catalog = args.catalog
    if catalog is None:
        # The cached zoo the current flags would load, if it exists.
        from repro.zoo.cache import default_cache_dir, zoo_cache_key

        preset = _scale_presets()[args.scale]
        config = preset(modality=args.modality, seed=args.seed)
        candidate = default_cache_dir() / zoo_cache_key(config) / "catalog.json"
        catalog = candidate if candidate.exists() else None
    if catalog is not None:
        if not Path(catalog).exists():
            print(f"error: catalog {catalog} does not exist", file=sys.stderr)
            return 2
        db = args.db or Path(catalog).with_name("catalog.db")
        counts = migrate_catalog_json(catalog, db)
        total = sum(counts.values())
        print(f"migrate-store: {catalog} -> {db}")
        for name, count in counts.items():
            print(f"  {name:16s} {count:6d} rows")
        print(f"  {'total':16s} {total:6d} rows")
        did_anything = True

    if not args.no_registry:
        if args.gateway:
            root = args.registry_dir or default_gateway_registry_dir()
            shards = ([p for p in root.iterdir() if p.is_dir()]
                      if root.is_dir() else [])
            for shard in sorted(shards):
                report = ArtifactRegistry(shard).reindex()
                print(f"migrate-store: indexed {shard} "
                      f"({report['artifacts_indexed']} artifacts, "
                      f"{report['fingerprints']} fingerprints)")
                did_anything = True
        else:
            root = args.registry_dir or default_registry_dir()
            if root.is_dir():
                report = ArtifactRegistry(root).reindex()
                print(f"migrate-store: indexed {root} "
                      f"({report['artifacts_indexed']} artifacts, "
                      f"{report['fingerprints']} fingerprints)")
                did_anything = True

    if not did_anything:
        print("migrate-store: nothing to migrate (no catalog.json found "
              "and no registry directory exists)", file=sys.stderr)
        return 2
    return 0


def _cmd_docs(args) -> int:
    from repro.docs import check_links, check_protocol_doc, write_protocol_doc

    root = args.root or _repo_root()
    if not (args.protocol or args.check_links):
        print("error: nothing to do; pass --protocol and/or --check-links",
              file=sys.stderr)
        return 2
    problems: list[str] = []
    if args.protocol:
        if args.check:
            problems.extend(check_protocol_doc(root))
        else:
            print(f"docs: wrote {write_protocol_doc(root)}")
    if args.check_links:
        problems.extend(check_links(root))
    for problem in problems:
        print(f"docs: {problem}", file=sys.stderr)
    if not problems and (args.check or args.check_links):
        print("docs: clean")
    return 1 if problems else 0


_COMMANDS = {
    "build-zoo": _cmd_build_zoo,
    "rank": _cmd_rank,
    "evaluate": _cmd_evaluate,
    "stats": _cmd_stats,
    "warmup": _cmd_warmup,
    "serve": _cmd_serve,
    "fit-worker": _cmd_fit_worker,
    "serve-sim": _cmd_serve_sim,
    "registry-gc": _cmd_registry_gc,
    "analyze": _cmd_analyze,
    "migrate-store": _cmd_migrate_store,
    "docs": _cmd_docs,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
