"""SQLite-backed twins of the in-memory record store.

The in-memory :class:`~repro.store.table.Table` dies with the process
and answers un-indexed filters by scanning every row — fine for a
test-scale catalog, fatal for the ROADMAP's millions-of-targets store.
This module provides the durable shape (SNIPPETS Snippet 2 is the
exemplar: a versioned, indexed SQLite schema with
migration-on-version-bump):

- :class:`SQLiteStore` — one database file (one per namespace shard),
  WAL journaling, a ``PRAGMA user_version`` schema version with ordered
  migrations applied on open, and a single shared connection serialised
  by an internal lock so router fit threads may read one catalog
  concurrently;
- :class:`SQLiteTable` — a drop-in twin of ``Table`` over a
  :class:`~repro.store.schema.Schema`: same ``insert``/``get``/
  ``filter``/``distinct``/``to_records`` surface, same ``SchemaError``
  semantics, so :class:`~repro.store.catalog.ZooCatalog`,
  ``GraphBuilder`` and ``FeatureAssembler`` never notice which backend
  they are reading (``tests/test_store_sqlite.py`` holds the two
  backends to byte-for-byte parity by hypothesis).

Values round-trip typed: ``bool`` columns are stored as INTEGER and
revived as ``bool``, floats as REAL, so a catalog migrated from JSON
returns records equal to the originals (type included).

Neither class is picklable — a connection handle cannot cross a process
boundary.  The process/fleet fit planes re-hydrate zoos from the disk
cache instead of shipping catalogs, so this never bites in practice;
the explicit ``__getstate__`` guard turns a silent corruption into a
typed error.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Callable, Iterator

from repro.store.schema import Schema, SchemaError

__all__ = ["SCHEMA_VERSION", "SQLiteStore", "SQLiteTable", "StoreVersionError"]

#: current on-disk schema version, stamped into ``PRAGMA user_version``.
#: Bump it together with a new entry in :data:`MIGRATIONS`.
SCHEMA_VERSION = 2

_SQL_TYPES = {"str": "TEXT", "int": "INTEGER", "float": "REAL", "bool": "INTEGER"}


class StoreVersionError(SchemaError):
    """The database's schema version cannot be handled by this build."""


def _migrate_v1_to_v2(connection: sqlite3.Connection) -> None:
    """v1 -> v2: the registry index gained per-artifact ``last_hit``.

    v1 databases (the initial development schema) tracked registry
    artifacts without hit accounting; v2 records the last successful
    load so GC policies can age artifacts out.  Catalog tables are
    unchanged.  The ALTER is conditional: a v1 catalog-only database
    has no ``registry_index`` table to migrate.
    """
    row = connection.execute(
        "SELECT name FROM sqlite_master WHERE type='table' "
        "AND name='registry_index'"
    ).fetchone()
    if row is None:
        return
    columns = {r[1] for r in connection.execute(
        "PRAGMA table_info(registry_index)")}
    if "last_hit" not in columns:
        connection.execute(
            "ALTER TABLE registry_index ADD COLUMN last_hit REAL NOT NULL "
            "DEFAULT 0.0"
        )


#: ordered migrations: ``MIGRATIONS[v]`` upgrades a version-``v``
#: database to version ``v + 1``.  Opening a database whose stored
#: version is behind :data:`SCHEMA_VERSION` applies every step in
#: sequence inside one transaction, then stamps the new version.
MIGRATIONS: dict[int, Callable[[sqlite3.Connection], None]] = {
    1: _migrate_v1_to_v2,
}


class SQLiteStore:
    """One SQLite database holding any number of schema-typed tables.

    Thread-safe: a single connection (``check_same_thread=False``)
    guarded by an RLock — the catalog's readers are many and cheap, and
    serialising them on one connection avoids SQLITE_BUSY dances while
    WAL keeps concurrent *processes* (CLI + server on one shard) safe.
    """

    def __init__(self, path: str | Path, timeout: float = 30.0):
        self.path = Path(path)
        if self.path.parent != Path():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        with self._lock:
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
            self._apply_migrations()

    # ------------------------------------------------------------------ #
    def _apply_migrations(self) -> None:
        version = self._connection.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise StoreVersionError(
                f"store {self.path}: schema version {version} is newer than "
                f"this build's {SCHEMA_VERSION}; refusing to downgrade"
            )
        if version == 0:
            # Fresh database: tables are created at the current shape,
            # no migration to run.
            self._connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            self._connection.commit()
            return
        while version < SCHEMA_VERSION:
            step = MIGRATIONS.get(version)
            if step is None:
                raise StoreVersionError(
                    f"store {self.path}: no migration from schema version "
                    f"{version} (need {SCHEMA_VERSION})"
                )
            step(self._connection)
            version += 1
            self._connection.execute(f"PRAGMA user_version = {version}")
            self._connection.commit()

    @property
    def schema_version(self) -> int:
        with self._lock:
            return self._connection.execute("PRAGMA user_version").fetchone()[0]

    # ------------------------------------------------------------------ #
    def execute(self, sql: str, params: tuple = ()) -> list[tuple]:
        """Run one statement and return its rows (committing writes)."""
        with self._lock:
            cursor = self._connection.execute(sql, params)
            rows = cursor.fetchall()
            self._connection.commit()
            return rows

    def executemany(self, sql: str, seq_of_params: list[tuple]) -> None:
        with self._lock:
            self._connection.executemany(sql, seq_of_params)
            self._connection.commit()

    def table(self, schema: Schema, indexes: tuple[str, ...] = ()) -> "SQLiteTable":
        """Create (if absent) and return the table for ``schema``."""
        table = SQLiteTable(self, schema)
        for column in indexes:
            table.add_index(column)
        return table

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self):  # pragma: no cover - exercised via pickle error
        raise TypeError(
            "SQLiteStore is not picklable (it owns a database connection); "
            "ship the database path and reopen on the far side"
        )


class SQLiteTable:
    """A :class:`~repro.store.table.Table` twin persisted in SQLite.

    Same schema validation, same ``SchemaError`` texts, same
    deterministic primary-key ordering of ``filter``/``to_records`` —
    the only observable difference is durability and that equality
    filters on *any* column are answered by the engine (``add_index``
    makes them indexed, it does not gate them).
    """

    def __init__(self, store: SQLiteStore, schema: Schema):
        if not schema.primary_key:
            raise SchemaError(
                f"table {schema.name!r}: SQLite backing requires a primary key"
            )
        self.store = store
        self.schema = schema
        self._bool_columns = {c.name for c in schema.columns if c.dtype == "bool"}
        columns_sql = ", ".join(
            f"{c.name} {_SQL_TYPES[c.dtype]}" for c in schema.columns
        )
        key_sql = ", ".join(schema.primary_key)
        store.execute(
            f"CREATE TABLE IF NOT EXISTS {schema.name} "
            f"({columns_sql}, PRIMARY KEY ({key_sql}))"
        )

    # ------------------------------------------------------------------ #
    def _revive(self, row: tuple) -> dict:
        out = dict(zip(self.schema.column_names, row))
        for name in self._bool_columns:
            if out[name] is not None:
                out[name] = bool(out[name])
        return out

    def _key_clause(self) -> str:
        return " AND ".join(f"{k} = ?" for k in self.schema.primary_key)

    def _select(self, where: str = "", params: tuple = ()) -> list[dict]:
        names = ", ".join(self.schema.column_names)
        sql = f"SELECT {names} FROM {self.schema.name}"
        if where:
            sql += f" WHERE {where}"
        return [self._revive(row) for row in self.store.execute(sql, params)]

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.store.execute(
            f"SELECT COUNT(*) FROM {self.schema.name}")[0][0]

    def __iter__(self) -> Iterator[dict]:
        return iter(self._select())

    def __contains__(self, key: tuple) -> bool:
        rows = self.store.execute(
            f"SELECT 1 FROM {self.schema.name} WHERE {self._key_clause()}",
            tuple(key),
        )
        return bool(rows)

    # ------------------------------------------------------------------ #
    def add_index(self, column: str) -> "SQLiteTable":
        """Create (if absent) a secondary index on ``column``."""
        self.schema.column(column)  # raises on unknown column
        self.store.execute(
            f"CREATE INDEX IF NOT EXISTS "
            f"idx_{self.schema.name}_{column} ON {self.schema.name} ({column})"
        )
        return self

    def insert(self, record: dict, *, upsert: bool = False) -> tuple:
        """Insert a record; with ``upsert`` replace an existing key."""
        validated = self.schema.validate(record)
        key = self.schema.key_of(validated)
        if not upsert and key in self:
            raise SchemaError(
                f"table {self.schema.name!r}: duplicate primary key {key}"
            )
        names = self.schema.column_names
        placeholders = ", ".join("?" for _ in names)
        self.store.execute(
            f"INSERT OR REPLACE INTO {self.schema.name} "
            f"({', '.join(names)}) VALUES ({placeholders})",
            tuple(validated[n] for n in names),
        )
        return key

    def get(self, *key_values) -> dict:
        row = self.get_or_none(*key_values)
        if row is None:
            raise KeyError(
                f"table {self.schema.name!r}: no record with key "
                f"{tuple(key_values)}"
            )
        return row

    def get_or_none(self, *key_values) -> dict | None:
        rows = self._select(self._key_clause(), tuple(key_values))
        return rows[0] if rows else None

    def delete(self, *key_values) -> None:
        key = tuple(key_values)
        if key not in self:
            raise KeyError(f"table {self.schema.name!r}: no record with key {key}")
        self.store.execute(
            f"DELETE FROM {self.schema.name} WHERE {self._key_clause()}", key
        )

    # ------------------------------------------------------------------ #
    def filter(self, predicate: Callable[[dict], bool] | None = None,
               **equals) -> list[dict]:
        """Records matching all equality constraints and the predicate.

        Equality constraints compile to a WHERE clause (index-backed
        when ``add_index`` covered the column); the predicate, when
        given, runs in Python over the narrowed rows.
        """
        for column in equals:
            self.schema.column(column)
        where = " AND ".join(f"{c} = ?" for c in equals)
        params = tuple(
            int(v) if isinstance(v, bool) else v for v in equals.values()
        )
        rows = self._select(where, params)
        if predicate is not None:
            rows = [row for row in rows if predicate(row)]
        rows.sort(key=self.schema.key_of)
        return rows

    def distinct(self, column: str) -> list:
        """Sorted distinct values of ``column``."""
        self.schema.column(column)
        values = [
            row[0]
            for row in self.store.execute(
                f"SELECT DISTINCT {column} FROM {self.schema.name}")
        ]
        if column in self._bool_columns:
            values = [bool(v) for v in values if v is not None]
        return sorted(values)

    def to_records(self) -> list[dict]:
        """All rows, sorted by primary key."""
        return self.filter()

    # ------------------------------------------------------------------ #
    def to_json_obj(self) -> dict:
        return {"table": self.schema.name, "rows": self.to_records()}

    def load_records(self, rows: list[dict], *, upsert: bool = True) -> int:
        """Bulk-insert ``rows`` in one transaction; returns the count."""
        if not upsert:
            for row in rows:
                self.insert(row, upsert=False)
            return len(rows)
        names = self.schema.column_names
        placeholders = ", ".join("?" for _ in names)
        validated = [self.schema.validate(row) for row in rows]
        self.store.executemany(
            f"INSERT OR REPLACE INTO {self.schema.name} "
            f"({', '.join(names)}) VALUES ({placeholders})",
            [tuple(row[n] for n in names) for row in validated],
        )
        return len(rows)
