"""Import legacy JSON catalogs into the durable SQLite store.

The pre-SQLite layout persisted the five catalog tables as one
``catalog.json`` (written by :meth:`ZooCatalog.save`).
:func:`migrate_catalog_json` loads that file into a SQLite-backed
catalog at ``db_path`` through the normal validated table API, so every
row passes the same :class:`~repro.store.schema.Schema` checks a live
write would — a migrated catalog is *provably* the same data, which the
parity tests assert all the way down to byte-identical served rankings.

Re-running is idempotent: rows import with ``upsert=True``, so the
second run rewrites identical rows and the row counts don't change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.store.catalog import ZooCatalog

__all__ = ["migrate_catalog_json"]


def migrate_catalog_json(json_path: str | Path,
                         db_path: str | Path) -> dict[str, int]:
    """Import ``catalog.json`` into a SQLite catalog; returns row counts.

    Creates (or opens) the database at ``db_path`` and upserts every
    row of every table, validating each against its schema.
    """
    payload = json.loads(Path(json_path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{json_path}: expected a JSON object of tables")
    catalog = ZooCatalog.open(db_path)
    try:
        for name in ZooCatalog._TABLES:
            getattr(catalog, name).load_records(payload.get(name, []))
        return catalog.stats()
    finally:
        catalog.close()
