"""Metadata catalog for the model zoo (Stage 1 of the paper's pipeline).

The paper frames model selection as a data-management problem and borrows
from data-lake catalogs: every artifact (model, dataset) and every derived
fact (training-history entry, transferability score, dataset similarity) is
a typed record.  ``repro.store`` provides a small embedded record store:

- :class:`~repro.store.schema.Schema` / :class:`~repro.store.schema.Column`
  — typed table definitions with validation;
- :class:`~repro.store.table.Table` — an indexed in-memory table with a
  primary key, equality filters and JSON round-tripping;
- :class:`~repro.store.sqlite.SQLiteStore` /
  :class:`~repro.store.sqlite.SQLiteTable` — the durable twin: a versioned
  WAL-mode SQLite database exposing the same upsert/filter API;
- :class:`~repro.store.catalog.ZooCatalog` — the five standard tables plus
  convenience APIs used throughout the framework (in-memory by default,
  SQLite-backed when opened with a path).
"""

from repro.store.schema import Column, Schema, SchemaError
from repro.store.sqlite import (
    SCHEMA_VERSION,
    SQLiteStore,
    SQLiteTable,
    StoreVersionError,
)
from repro.store.table import Table
from repro.store.catalog import ZooCatalog
from repro.store.migrate import migrate_catalog_json

__all__ = [
    "Column",
    "Schema",
    "SchemaError",
    "migrate_catalog_json",
    "SCHEMA_VERSION",
    "SQLiteStore",
    "SQLiteTable",
    "StoreVersionError",
    "Table",
    "ZooCatalog",
]
