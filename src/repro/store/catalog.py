"""The zoo catalog: five standard tables plus typed convenience APIs.

Tables (mirroring the information the paper's Stage 1 collects):

- ``models``       — architecture family, #params, input shape, memory,
                     pre-train dataset and pre-train accuracy (§IV-A2);
- ``datasets``     — modality, #samples, #classes (§IV-A1, Table III);
- ``history``      — training history: fine-tune accuracy per
                     (model, dataset, method) (§IV, edge type iii);
- ``transferability`` — estimator scores per (model, dataset, metric)
                     (§IV, edge type ii, e.g. LogME);
- ``similarity``   — dataset-dataset similarity (§IV-B2, edge type i).

The catalog is the single source of truth consumed by the graph builder
(Stage 2) and the prediction-model feature assembly (Stage 3).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np

from repro.store.schema import Column, Schema
from repro.store.sqlite import SQLiteStore
from repro.store.table import Table

__all__ = ["ZooCatalog"]

#: retained mutation-log length; updates further back than this force a
#: full refit instead of an incremental refresh (the honest fallback)
_DIRTY_LOG_LIMIT = 100_000

_MODEL_SCHEMA = Schema(
    name="models",
    columns=[
        Column("model_id", "str"),
        Column("architecture", "str"),
        Column("family", "str"),
        Column("modality", "str"),
        Column("pretrain_dataset", "str"),
        Column("pretrain_accuracy", "float"),
        Column("num_params", "int"),
        Column("memory_mb", "float"),
        Column("input_shape", "int"),
        Column("embedding_dim", "int"),
        Column("depth", "int"),
    ],
    primary_key=("model_id",),
)

_DATASET_SCHEMA = Schema(
    name="datasets",
    columns=[
        Column("dataset_id", "str"),
        Column("modality", "str"),
        Column("num_samples", "int"),
        Column("num_classes", "int"),
        Column("input_dim", "int"),
        Column("is_target", "bool", required=False, default=False),
    ],
    primary_key=("dataset_id",),
)

_HISTORY_SCHEMA = Schema(
    name="history",
    columns=[
        Column("model_id", "str"),
        Column("dataset_id", "str"),
        Column("method", "str"),  # "finetune" | "lora" | "pretrain"
        Column("accuracy", "float"),
        Column("epochs", "int", required=False, default=0),
    ],
    primary_key=("model_id", "dataset_id", "method"),
)

_TRANSFERABILITY_SCHEMA = Schema(
    name="transferability",
    columns=[
        Column("model_id", "str"),
        Column("dataset_id", "str"),
        Column("metric", "str"),  # "logme" | "leep" | ...
        Column("score", "float"),
    ],
    primary_key=("model_id", "dataset_id", "metric"),
)

_SIMILARITY_SCHEMA = Schema(
    name="similarity",
    columns=[
        Column("dataset_a", "str"),
        Column("dataset_b", "str"),
        Column("method", "str"),  # "domain_similarity" | "task2vec"
        Column("similarity", "float"),
    ],
    primary_key=("dataset_a", "dataset_b", "method"),
)


class ZooCatalog:
    """Typed facade over the five zoo tables.

    :attr:`lock` serialises *derived-score* recording (lazy similarity
    and transferability fills) so multiple threads may fit pipelines
    against one catalog concurrently: writers compute into a scoped
    batch and merge it under the lock (see
    :meth:`repro.graph.GraphBuilder.ensure_similarities` and
    :meth:`repro.core.features.FeatureAssembler`).  Reads of settled
    rows need no lock — after the one-time fills the catalog is
    effectively immutable between explicit invalidations.
    """

    def __init__(self, path: str | Path | None = None):
        #: re-entrant: recording helpers nest inside locked fill sections
        self.lock = threading.RLock()
        #: the durable backend when ``path`` was given, else None
        self.store: SQLiteStore | None = None
        if path is not None:
            self.store = SQLiteStore(path)

        def make(schema: Schema):
            return Table(schema) if self.store is None else self.store.table(schema)

        self.models = make(_MODEL_SCHEMA)
        self.datasets = make(_DATASET_SCHEMA)
        self.history = make(_HISTORY_SCHEMA).add_index("dataset_id").add_index("model_id")
        self.transferability = (make(_TRANSFERABILITY_SCHEMA)
                                .add_index("dataset_id").add_index("metric"))
        self.similarity = make(_SIMILARITY_SCHEMA).add_index("method")
        # Mutation log for incremental graph refresh: every write marks
        # the graph nodes its row is incident to.  guarded by: self.lock
        self._mutation_seq = 0
        self._dirty_log: list[tuple[int, str]] = []
        self._dirty_floor = 0  # seqs <= floor have been trimmed away

    @classmethod
    def open(cls, path: str | Path) -> "ZooCatalog":
        """Open (or create) a SQLite-backed catalog at ``path``."""
        return cls(path=path)

    def close(self) -> None:
        """Release the SQLite backend (no-op for in-memory catalogs)."""
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------ #
    # mutation log (consumed by the incremental graph refresh)
    # ------------------------------------------------------------------ #
    def _mark_dirty(self, *nodes: str) -> None:
        with self.lock:
            self._mutation_seq += 1
            seq = self._mutation_seq
            self._dirty_log.extend((seq, node) for node in nodes)
            if len(self._dirty_log) > _DIRTY_LOG_LIMIT:
                trimmed = self._dirty_log[-_DIRTY_LOG_LIMIT:]
                self._dirty_floor = trimmed[0][0] - 1
                self._dirty_log = trimmed

    @property
    def mutation_seq(self) -> int:
        """Monotonic write counter; snapshot it when a pipeline is fit."""
        with self.lock:
            return self._mutation_seq

    def dirty_nodes(self, since: int) -> set[str] | None:
        """Graph nodes whose incident catalog rows changed after ``since``.

        Returns ``None`` when the log no longer reaches back that far —
        callers must then fall back to a full refit.
        """
        with self.lock:
            if since < self._dirty_floor:
                return None
            return {node for seq, node in self._dirty_log if seq > since}

    # ------------------------------------------------------------------ #
    # writers
    # ------------------------------------------------------------------ #
    def add_model(self, **fields) -> None:
        self.models.insert(fields, upsert=True)
        self._mark_dirty(fields["model_id"])

    def add_dataset(self, **fields) -> None:
        self.datasets.insert(fields, upsert=True)
        self._mark_dirty(fields["dataset_id"])

    def record_history(self, model_id: str, dataset_id: str, accuracy: float,
                       method: str = "finetune", epochs: int = 0) -> None:
        self.history.insert(
            {"model_id": model_id, "dataset_id": dataset_id, "method": method,
             "accuracy": float(accuracy), "epochs": epochs},
            upsert=True,
        )
        self._mark_dirty(model_id, dataset_id)

    def record_transferability(self, model_id: str, dataset_id: str,
                               metric: str, score: float) -> None:
        self.transferability.insert(
            {"model_id": model_id, "dataset_id": dataset_id,
             "metric": metric, "score": float(score)},
            upsert=True,
        )
        self._mark_dirty(model_id, dataset_id)

    def record_similarity(self, dataset_a: str, dataset_b: str,
                          similarity: float,
                          method: str = "domain_similarity") -> None:
        """Record a symmetric similarity (stored once, key-ordered)."""
        a, b = sorted((dataset_a, dataset_b))
        self.similarity.insert(
            {"dataset_a": a, "dataset_b": b, "method": method,
             "similarity": float(similarity)},
            upsert=True,
        )
        self._mark_dirty(a, b)

    # ------------------------------------------------------------------ #
    # readers
    # ------------------------------------------------------------------ #
    def model_ids(self) -> list[str]:
        return self.models.distinct("model_id")

    def dataset_ids(self, modality: str | None = None) -> list[str]:
        if modality is None:
            return self.datasets.distinct("dataset_id")
        return sorted(r["dataset_id"] for r in self.datasets.filter(modality=modality))

    def target_dataset_ids(self) -> list[str]:
        return sorted(r["dataset_id"] for r in self.datasets.filter(is_target=True))

    def get_similarity(self, dataset_a: str, dataset_b: str,
                       method: str = "domain_similarity") -> float | None:
        a, b = sorted((dataset_a, dataset_b))
        row = self.similarity.get_or_none(a, b, method)
        return row["similarity"] if row else None

    def get_transferability(self, model_id: str, dataset_id: str,
                            metric: str = "logme") -> float | None:
        row = self.transferability.get_or_none(model_id, dataset_id, metric)
        return row["score"] if row else None

    def get_accuracy(self, model_id: str, dataset_id: str,
                     method: str = "finetune") -> float | None:
        row = self.history.get_or_none(model_id, dataset_id, method)
        return row["accuracy"] if row else None

    def history_for_dataset(self, dataset_id: str,
                            method: str = "finetune") -> list[dict]:
        return self.history.filter(dataset_id=dataset_id, method=method)

    def accuracy_matrix(self, model_ids: list[str], dataset_ids: list[str],
                        method: str = "finetune") -> np.ndarray:
        """Dense (models × datasets) accuracy matrix; NaN where unknown."""
        out = np.full((len(model_ids), len(dataset_ids)), np.nan)
        for i, m in enumerate(model_ids):
            for j, d in enumerate(dataset_ids):
                acc = self.get_accuracy(m, d, method=method)
                if acc is not None:
                    out[i, j] = acc
        return out

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    _TABLES = ("models", "datasets", "history", "transferability", "similarity")

    def save(self, path: str | Path) -> None:
        """Serialise the whole catalog to a single JSON file."""
        payload = {name: getattr(self, name).to_records() for name in self._TABLES}
        Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "ZooCatalog":
        payload = json.loads(Path(path).read_text())
        catalog = cls()
        for name in cls._TABLES:
            getattr(catalog, name).load_records(payload.get(name, []))
        return catalog

    def stats(self) -> dict[str, int]:
        """Row counts per table (used by the Table II benchmark)."""
        return {name: len(getattr(self, name)) for name in self._TABLES}
