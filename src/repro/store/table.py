"""An indexed in-memory table over a :class:`~repro.store.schema.Schema`."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterator

from repro.store.schema import Schema, SchemaError

__all__ = ["Table"]


class Table:
    """Typed records with primary-key upserts and equality-indexed filters.

    The table maintains hash indexes for any columns registered through
    ``add_index``; ``filter`` uses an index when the predicate is a simple
    equality on an indexed column, and falls back to a scan otherwise.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._rows: dict[tuple, dict] = {}
        self._indexes: dict[str, dict[object, set[tuple]]] = {}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict]:
        return iter(list(self._rows.values()))

    def __contains__(self, key: tuple) -> bool:
        return tuple(key) in self._rows

    # ------------------------------------------------------------------ #
    def add_index(self, column: str) -> "Table":
        """Register (and build) a hash index on ``column``."""
        self.schema.column(column)  # raises on unknown column
        if column not in self._indexes:
            index: dict[object, set[tuple]] = defaultdict(set)
            for key, row in self._rows.items():
                index[row[column]].add(key)
            self._indexes[column] = index
        return self

    def insert(self, record: dict, *, upsert: bool = False) -> tuple:
        """Insert a record; with ``upsert`` replace an existing key."""
        validated = self.schema.validate(record)
        key = self.schema.key_of(validated)
        if key in self._rows and not upsert:
            raise SchemaError(
                f"table {self.schema.name!r}: duplicate primary key {key}"
            )
        if key in self._rows:
            self._remove_from_indexes(key, self._rows[key])
        self._rows[key] = validated
        for column, index in self._indexes.items():
            index[validated[column]].add(key)
        return key

    def get(self, *key_values) -> dict:
        """Fetch a record by primary key; raises ``KeyError`` if absent."""
        key = tuple(key_values)
        try:
            return dict(self._rows[key])
        except KeyError:
            raise KeyError(
                f"table {self.schema.name!r}: no record with key {key}"
            ) from None

    def get_or_none(self, *key_values) -> dict | None:
        key = tuple(key_values)
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def delete(self, *key_values) -> None:
        key = tuple(key_values)
        row = self._rows.pop(key, None)
        if row is None:
            raise KeyError(f"table {self.schema.name!r}: no record with key {key}")
        self._remove_from_indexes(key, row)

    def _remove_from_indexes(self, key: tuple, row: dict) -> None:
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(key)

    # ------------------------------------------------------------------ #
    def filter(self, predicate: Callable[[dict], bool] | None = None,
               **equals) -> list[dict]:
        """Return records matching all equality constraints and the predicate.

        Equality constraints on indexed columns are answered from the index;
        remaining constraints are checked per-row.
        """
        for column in equals:
            self.schema.column(column)

        candidate_keys = None
        residual = dict(equals)
        for column in list(residual):
            index = self._indexes.get(column)
            if index is not None:
                keys = index.get(residual.pop(column), set())
                candidate_keys = keys if candidate_keys is None \
                    else candidate_keys & keys

        if candidate_keys is None:
            rows = self._rows.values()
        else:
            rows = (self._rows[k] for k in candidate_keys)

        out = []
        for row in rows:
            if all(row[c] == v for c, v in residual.items()):
                if predicate is None or predicate(row):
                    out.append(dict(row))
        # Deterministic order regardless of hash iteration.
        out.sort(key=lambda r: self.schema.key_of(r))
        return out

    def distinct(self, column: str) -> list:
        """Sorted distinct values of ``column``."""
        self.schema.column(column)
        return sorted({row[column] for row in self._rows.values()})

    def to_records(self) -> list[dict]:
        """All rows, sorted by primary key."""
        return self.filter()

    # ------------------------------------------------------------------ #
    def to_json_obj(self) -> dict:
        return {"table": self.schema.name, "rows": self.to_records()}

    def load_records(self, rows: list[dict], *, upsert: bool = True) -> int:
        """Bulk-insert ``rows``; returns the number inserted."""
        for row in rows:
            self.insert(row, upsert=upsert)
        return len(rows)
