"""Typed table schemas with record validation."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Column", "Schema", "SchemaError"]

_DTYPES = {
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
}


class SchemaError(ValueError):
    """Raised when a record violates its table schema."""


@dataclass(frozen=True)
class Column:
    """A typed column.

    ``dtype`` is one of ``str|int|float|bool``.  ``required`` columns must
    be present and non-None; optional columns default to ``default``.
    """

    name: str
    dtype: str
    required: bool = True
    default: object = None

    def __post_init__(self):
        if self.dtype not in _DTYPES:
            raise SchemaError(
                f"column {self.name!r}: unknown dtype {self.dtype!r} "
                f"(expected one of {sorted(_DTYPES)})"
            )

    def coerce(self, value):
        """Validate/coerce a single value for this column."""
        if value is None:
            if self.required:
                raise SchemaError(f"column {self.name!r} is required")
            return self.default
        expected = _DTYPES[self.dtype]
        if self.dtype == "float" and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self.dtype == "int" and isinstance(value, bool):
            raise SchemaError(f"column {self.name!r}: bool is not a valid int")
        if not isinstance(value, expected):
            raise SchemaError(
                f"column {self.name!r}: expected {self.dtype}, "
                f"got {type(value).__name__} ({value!r})"
            )
        return value


@dataclass
class Schema:
    """An ordered collection of :class:`Column` plus a primary key."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()
    _by_name: dict[str, Column] = field(init=False, repr=False)

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"table {self.name!r}: duplicate column names")
        self._by_name = {c.name: c for c in self.columns}
        for key in self.primary_key:
            if key not in self._by_name:
                raise SchemaError(
                    f"table {self.name!r}: primary key column {key!r} missing"
                )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def validate(self, record: dict) -> dict:
        """Return a validated, defaults-filled copy of ``record``."""
        unknown = set(record) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown columns {sorted(unknown)}"
            )
        out = {}
        for col in self.columns:
            out[col.name] = col.coerce(record.get(col.name))
        return out

    def key_of(self, record: dict) -> tuple:
        """Extract the primary-key tuple from a validated record."""
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        return tuple(record[k] for k in self.primary_key)
