"""Domain Similarity embeddings (Cui et al., 2018; paper §IV-B1, Eq. 3).

A dataset is embedded by aggregating the features a *probe network*
extracts from its samples:

    E_k = Σ_j g(x_j),   x_j ∈ d_k

The paper uses ResNet34 (images) / GPT-Neo (text) pre-trained on large
corpora as probes.  Our zoo's analogue of "a strong generic reference
model" is the pre-trained zoo model with the highest source accuracy —
chosen deterministically so experiments are reproducible.

We additionally L2-normalise the aggregated embedding: correlation
distance (used downstream) is shift/scale-invariant, and normalisation
prevents dataset size from dominating the representation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["choose_probe_model", "domain_similarity_embedding",
           "compute_dataset_embeddings"]


def choose_probe_model(zoo) -> str:
    """Pick the probe: the model with the best pre-train accuracy.

    Ties break lexicographically on model id, keeping the choice stable
    across runs and platforms.
    """
    rows = zoo.catalog.models.to_records()
    if not rows:
        raise ValueError("zoo catalog contains no models")
    best = max(rows, key=lambda r: (r["pretrain_accuracy"], r["model_id"]))
    return best["model_id"]


def domain_similarity_embedding(zoo, dataset_name: str,
                                probe_model_id: str | None = None) -> np.ndarray:
    """Aggregate probe features of a dataset into a single vector (Eq. 3)."""
    probe_id = probe_model_id or choose_probe_model(zoo)
    features = zoo.features(probe_id, dataset_name, split="all")
    embedding = features.sum(axis=0)
    norm = np.linalg.norm(embedding)
    return embedding / norm if norm > 0 else embedding


def compute_dataset_embeddings(zoo, method: str = "domain_similarity",
                               probe_model_id: str | None = None,
                               dataset_names: list[str] | None = None,
                               ) -> dict[str, np.ndarray]:
    """Embed every dataset of the zoo with the chosen representation."""
    from repro.probe.task2vec import task2vec_embedding  # cycle-free import

    probe_id = probe_model_id or choose_probe_model(zoo)
    names = dataset_names if dataset_names is not None else zoo.dataset_names()
    embeddings: dict[str, np.ndarray] = {}
    for name in names:
        if method == "domain_similarity":
            embeddings[name] = domain_similarity_embedding(zoo, name, probe_id)
        elif method == "task2vec":
            embeddings[name] = task2vec_embedding(zoo, name, probe_id)
        else:
            raise ValueError(
                f"unknown representation {method!r}; expected "
                "'domain_similarity' or 'task2vec'")
    return embeddings
