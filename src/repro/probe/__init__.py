"""Dataset representations via a probe network (§IV-B, Appendix A).

- :mod:`repro.probe.domain_similarity` — aggregate probe-network features
  (Eq. 3; the paper probes with ResNet34 for images and GPT-Neo for text;
  we designate the strongest pre-trained zoo model as probe);
- :mod:`repro.probe.task2vec` — diagonal Fisher-information embeddings
  (Eq. 6) that additionally use the dataset's labels;
- :mod:`repro.probe.similarity` — correlation-distance dataset similarity
  and catalog recording (the D-D edges of the graph).
"""

from repro.probe.domain_similarity import (
    choose_probe_model,
    domain_similarity_embedding,
    compute_dataset_embeddings,
)
from repro.probe.task2vec import task2vec_embedding
from repro.probe.similarity import (
    correlation_distance,
    similarity_from_embeddings,
    record_dataset_similarities,
)

__all__ = [
    "choose_probe_model",
    "domain_similarity_embedding",
    "compute_dataset_embeddings",
    "task2vec_embedding",
    "correlation_distance",
    "similarity_from_embeddings",
    "record_dataset_similarities",
]
