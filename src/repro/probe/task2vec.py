"""Task2Vec embeddings via the diagonal Fisher Information Matrix (Eq. 6).

Task2Vec (Achille et al., 2019) embeds a *task* (dataset + labels) by:

1. fitting a classifier head on top of a frozen probe network;
2. computing the diagonal of the Fisher Information Matrix of the head
   parameters:  F = E[ (∇_w log p_w(y|x))² ];
3. averaging the FIM over the per-class axis so tasks with different
   class counts map to a fixed-size vector (the paper's "average the FIM
   for all weights in each filter").

Unlike Domain Similarity, Task2Vec sees the labels, so two datasets with
identical inputs but different labelings embed differently.
"""

from __future__ import annotations

import numpy as np

from repro.nn import AdamW, Linear, Tensor, cross_entropy
from repro.utils.rng import derive_seed

__all__ = ["task2vec_embedding", "fit_probe_head"]


def fit_probe_head(features: np.ndarray, labels: np.ndarray,
                   num_classes: int, seed: int = 0, epochs: int = 60,
                   lr: float = 5e-2) -> Linear:
    """Fit a linear head on frozen probe features (full-batch AdamW)."""
    rng = np.random.default_rng(seed)
    head = Linear(features.shape[1], num_classes, rng=rng)
    opt = AdamW(head.parameters(), lr=lr, weight_decay=1e-4)
    x = Tensor(features)
    for _ in range(epochs):
        loss = cross_entropy(head(x), labels)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return head


def _diagonal_fim(head: Linear, features: np.ndarray,
                  labels: np.ndarray) -> np.ndarray:
    """Diagonal FIM of the head weight matrix, per-sample averaged.

    For a linear softmax head the per-sample gradient of the log-likelihood
    w.r.t. W is the outer product  x · (onehot(y) - p)ᵀ, so the squared
    gradient needed for the diagonal FIM is computed in closed form — no
    autograd loop over samples required.
    """
    logits = features @ head.weight.data + head.bias.data
    shifted = logits - logits.max(axis=1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=1, keepdims=True)

    onehot = np.zeros_like(probs)
    onehot[np.arange(len(labels)), labels] = 1.0
    delta = onehot - probs                      # (n, classes)
    # squared gradient for W[i, c] on sample j: (x_ji * delta_jc)^2
    fim = (features**2).T @ (delta**2)          # (d, classes)
    return fim / len(labels)


def task2vec_embedding(zoo, dataset_name: str,
                       probe_model_id: str | None = None) -> np.ndarray:
    """Task2Vec embedding of a dataset under the zoo's probe network."""
    from repro.probe.domain_similarity import choose_probe_model

    probe_id = probe_model_id or choose_probe_model(zoo)
    dataset = zoo.dataset(dataset_name)
    features = zoo.features(probe_id, dataset_name, split="train")
    labels = dataset.y_train

    seed = derive_seed(0, "task2vec", probe_id, dataset_name)
    head = fit_probe_head(features, labels, dataset.num_classes, seed=seed)
    fim = _diagonal_fim(head, features, labels)   # (d, classes)
    # Average over the class axis -> fixed-size embedding (paper App. A).
    embedding = fim.mean(axis=1)
    norm = np.linalg.norm(embedding)
    return embedding / norm if norm > 0 else embedding
