"""Dataset similarity from embeddings (§IV-B2) and catalog recording.

The paper quantifies similarity "by calculating the correlation distance
between datasets, where a shorter distance signifies greater similarity".
We follow scipy's convention: correlation distance = 1 - Pearson(u, v),
and define similarity = 1 - distance = Pearson(u, v), clipped to [0, 1]
for use as a graph edge weight.
"""

from __future__ import annotations

import numpy as np

from repro.utils.stats import pearson_correlation

__all__ = ["correlation_distance", "similarity_from_embeddings",
           "record_dataset_similarities"]


def correlation_distance(u: np.ndarray, v: np.ndarray) -> float:
    """1 - Pearson correlation of two embedding vectors (range [0, 2])."""
    return 1.0 - pearson_correlation(np.asarray(u), np.asarray(v))


def similarity_from_embeddings(embeddings: dict[str, np.ndarray],
                               ) -> tuple[list[str], np.ndarray]:
    """Pairwise similarity matrix over all embedded datasets.

    Returns (sorted names, matrix) with ``sim = max(0, pearson)`` — negative
    correlations carry no "these are alike" information for edges.
    """
    names = sorted(embeddings)
    n = len(names)
    sim = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            rho = pearson_correlation(embeddings[names[i]], embeddings[names[j]])
            sim[i, j] = sim[j, i] = max(0.0, rho)
    return names, sim


def record_dataset_similarities(zoo, embeddings: dict[str, np.ndarray],
                                method: str = "domain_similarity") -> int:
    """Write all pairwise similarities into the zoo catalog; returns count."""
    names, sim = similarity_from_embeddings(embeddings)
    count = 0
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            zoo.catalog.record_similarity(names[i], names[j],
                                          float(sim[i, j]), method=method)
            count += 1
    return count
