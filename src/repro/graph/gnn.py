"""GNN graph learners: GraphSAGE (Eq. 4) and GAT (Eq. 5) on ``repro.nn``.

Both encoders consume node features + adjacency and are trained on the
link-prediction objective (§V-B): the dot product of two node embeddings
should be high for positive (model performs well on dataset) pairs and
low for negative ones, via binary cross-entropy.  Zoo graphs are small
(Table II: hundreds of nodes) so dense adjacency is used throughout.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import LinkExamples
from repro.graph.graph import ModelDatasetGraph
from repro.graph.learners import GraphLearner
from repro.nn import (
    AdamW,
    Linear,
    Module,
    Tensor,
    binary_cross_entropy_with_logits,
)
from repro.utils.rng import derive_seed

__all__ = ["GraphSAGEEncoder", "GATEncoder", "GraphSAGE", "GAT",
           "train_link_prediction"]


class GraphSAGEEncoder(Module):
    """Two mean-aggregator GraphSAGE layers (Hamilton et al. 2017, Eq. 4).

        h^{k+1}_i = ReLU( W^k h^k_i  +  Q^k · mean_{n∈N(i)} h^k_n )
    """

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 rng: np.random.Generator):
        self.w_self_1 = Linear(in_dim, hidden_dim, rng=rng)
        self.w_neigh_1 = Linear(in_dim, hidden_dim, rng=rng, bias=False)
        self.w_self_2 = Linear(hidden_dim, out_dim, rng=rng)
        self.w_neigh_2 = Linear(hidden_dim, out_dim, rng=rng, bias=False)

    def encode(self, x: Tensor, mean_adj: Tensor) -> Tensor:
        neigh = mean_adj @ x
        h = (self.w_self_1(x) + self.w_neigh_1(neigh)).relu()
        neigh2 = mean_adj @ h
        return self.w_self_2(h) + self.w_neigh_2(neigh2)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - not used
        raise RuntimeError("use encode(x, mean_adj)")


class GATEncoder(Module):
    """A single-head graph attention layer + linear head (Eq. 5).

    Attention logits  e_ij = LeakyReLU( a · [W h_i || W h_j] )  are
    computed densely and masked to the adjacency support before the
    row-wise softmax.
    """

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 rng: np.random.Generator):
        self.w = Linear(in_dim, hidden_dim, rng=rng, bias=False)
        self.attn_src = Linear(hidden_dim, 1, rng=rng, bias=False)
        self.attn_dst = Linear(hidden_dim, 1, rng=rng, bias=False)
        self.out = Linear(hidden_dim, out_dim, rng=rng)

    def encode(self, x: Tensor, adj_mask: np.ndarray) -> Tensor:
        wh = self.w(x)                                   # (n, hidden)
        src = self.attn_src(wh)                          # (n, 1)
        dst = self.attn_dst(wh)                          # (n, 1)
        logits = (src + dst.T).leaky_relu(0.2)           # (n, n)
        # mask non-edges with a large negative constant (keep self-loops)
        mask_matrix = np.where(adj_mask > 0, 0.0, -1e9)
        masked = logits + Tensor(mask_matrix)
        alpha = masked.log_softmax(axis=-1).exp()        # row-stochastic
        h = (alpha @ wh).gelu()
        return self.out(h)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - not used
        raise RuntimeError("use encode(x, adj_mask)")


def _mean_adjacency(graph: ModelDatasetGraph) -> np.ndarray:
    """Row-normalised weighted adjacency with self-loops."""
    a = graph.adjacency_matrix(weighted=True)
    a = a + np.eye(a.shape[0])
    row_sums = a.sum(axis=1, keepdims=True)
    return a / np.maximum(row_sums, 1e-12)


def _sample_extra_negatives(graph: ModelDatasetGraph, links: LinkExamples,
                            rng: np.random.Generator) -> list[tuple[str, str]]:
    """Top up negatives so classes are balanced for BCE."""
    deficit = len(links.positive) - len(links.negative)
    if deficit <= 0:
        return []
    models = graph.nodes("model")
    datasets = graph.nodes("dataset")
    existing = set(links.positive) | set(links.negative)
    extras: list[tuple[str, str]] = []
    attempts = 0
    while len(extras) < deficit and attempts < 50 * deficit + 100:
        attempts += 1
        pair = (models[int(rng.integers(len(models)))],
                datasets[int(rng.integers(len(datasets)))])
        if pair not in existing:
            extras.append(pair)
            existing.add(pair)
    return extras


def train_link_prediction(encoder, graph: ModelDatasetGraph,
                          links: LinkExamples, *, use_mask: bool,
                          epochs: int, lr: float, seed: int
                          ) -> dict[str, np.ndarray]:
    """Train an encoder on the BCE link objective; return node embeddings."""
    rng = np.random.default_rng(derive_seed(seed, "link_prediction"))
    index = graph.index()
    features = graph.feature_matrix()
    x = Tensor(features)

    if use_mask:  # GAT attends over the masked adjacency support
        support = graph.adjacency_matrix(weighted=False) + np.eye(graph.num_nodes)
    else:  # GraphSAGE aggregates over the mean adjacency
        support = Tensor(_mean_adjacency(graph))

    def encode():
        return encoder.encode(x, support)

    pairs = list(links.positive) + list(links.negative) \
        + _sample_extra_negatives(graph, links, rng)
    labels = np.array([1.0] * len(links.positive)
                      + [0.0] * (len(pairs) - len(links.positive)))
    if not pairs:
        # Degenerate graph (no labelled links): return raw encodings.
        h = encode().numpy()
        return {node: h[i].copy() for node, i in index.items()}

    u_idx = np.array([index[u] for u, _ in pairs])
    v_idx = np.array([index[v] for _, v in pairs])

    opt = AdamW(encoder.parameters(), lr=lr, weight_decay=1e-4)
    for _ in range(epochs):
        h = encode()
        scores = (h[u_idx] * h[v_idx]).sum(axis=1)
        loss = binary_cross_entropy_with_logits(scores, labels)
        opt.zero_grad()
        loss.backward()
        opt.step()

    h = encode().numpy()
    return {node: h[i].copy() for node, i in index.items()}


class GraphSAGE(GraphLearner):
    """GraphSAGE learner trained for link prediction."""

    name = "graphsage"

    def __init__(self, dim: int = 128, seed: int = 0, hidden_dim: int = 64,
                 epochs: int = 150, lr: float = 5e-3):
        super().__init__(dim=dim, seed=seed)
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr

    def embed(self, graph: ModelDatasetGraph,
              links: LinkExamples | None = None) -> dict[str, np.ndarray]:
        links = links or LinkExamples()
        in_dim = graph.feature_matrix().shape[1]
        rng = np.random.default_rng(derive_seed(self.seed, self.name, "init"))
        encoder = GraphSAGEEncoder(in_dim, self.hidden_dim, self.dim, rng)
        return train_link_prediction(encoder, graph, links, use_mask=False,
                                     epochs=self.epochs, lr=self.lr,
                                     seed=self.seed)


class GAT(GraphLearner):
    """GAT learner trained for link prediction."""

    name = "gat"

    def __init__(self, dim: int = 128, seed: int = 0, hidden_dim: int = 64,
                 epochs: int = 150, lr: float = 5e-3):
        super().__init__(dim=dim, seed=seed)
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr

    def embed(self, graph: ModelDatasetGraph,
              links: LinkExamples | None = None) -> dict[str, np.ndarray]:
        links = links or LinkExamples()
        in_dim = graph.feature_matrix().shape[1]
        rng = np.random.default_rng(derive_seed(self.seed, self.name, "init"))
        encoder = GATEncoder(in_dim, self.hidden_dim, self.dim, rng)
        return train_link_prediction(encoder, graph, links, use_mask=True,
                                     epochs=self.epochs, lr=self.lr,
                                     seed=self.seed)
