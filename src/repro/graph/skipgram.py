"""Skip-gram with negative sampling (SGNS) over random walks (§VIII-B1).

Walks are treated as sentences; co-occurring nodes within a window become
(center, context) pairs, trained with the word2vec SGNS objective:

    maximise  log σ(u_c · v_o) + Σ_neg log σ(-u_c · v_n)

Negatives are drawn from the unigram distribution raised to 3/4.  Updates
are hand-vectorised over mini-batches (our autograd would be needless
overhead for two embedding tables).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SkipGramConfig", "train_skipgram"]


@dataclass(frozen=True)
class SkipGramConfig:
    """SGNS hyperparameters."""

    dim: int = 128
    window: int = 5
    negatives: int = 5
    epochs: int = 3
    learning_rate: float = 0.025
    min_learning_rate: float = 1e-4
    batch_size: int = 512

    def __post_init__(self):
        if self.dim <= 0 or self.window <= 0 or self.negatives <= 0:
            raise ValueError("dim, window and negatives must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")


def _pairs_from_walks(walks: list[list[int]], window: int,
                      rng: np.random.Generator) -> np.ndarray:
    """(center, context) index pairs with word2vec-style random windows."""
    pairs = []
    for walk in walks:
        length = len(walk)
        for i, center in enumerate(walk):
            span = int(rng.integers(1, window + 1))
            for j in range(max(0, i - span), min(length, i + span + 1)):
                if j != i:
                    pairs.append((center, walk[j]))
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


def train_skipgram(walks: list[list[str]], vocabulary: list[str],
                   config: SkipGramConfig,
                   rng: np.random.Generator,
                   init: dict[str, np.ndarray] | None = None,
                   ) -> dict[str, np.ndarray]:
    """Train SGNS embeddings; returns {node: vector(dim)}.

    Nodes that never appear in a walk keep their random initialisation
    (they are isolated in the graph; downstream code treats their
    embedding as uninformative noise, which is the honest signal).

    ``init`` warm-starts the input embedding table from a previous
    training run: nodes present in ``init`` (with a matching dim) start
    from their old vector and nodes absent from the walks *keep* it
    verbatim — the incremental-refresh contract, where only the dirty
    neighborhood is re-walked and the rest of the embedding space must
    not drift.
    """
    index = {node: i for i, node in enumerate(vocabulary)}
    walks_idx = [[index[n] for n in walk] for walk in walks]
    v = len(vocabulary)

    counts = np.zeros(v)
    for walk in walks_idx:
        for node in walk:
            counts[node] += 1
    noise = counts**0.75
    noise_sum = noise.sum()
    noise = noise / noise_sum if noise_sum > 0 else np.full(v, 1.0 / v)

    emb_in = (rng.random((v, config.dim)) - 0.5) / config.dim
    if init:
        for node, vector in init.items():
            i = index.get(node)
            if i is not None and np.shape(vector) == (config.dim,):
                emb_in[i] = np.asarray(vector, dtype=float)
    emb_out = np.zeros((v, config.dim))

    pairs = _pairs_from_walks(walks_idx, config.window, rng)
    if pairs.shape[0] == 0:
        return {node: emb_in[index[node]].copy() for node in vocabulary}

    total_steps = config.epochs * int(np.ceil(len(pairs) / config.batch_size))
    step = 0
    for _ in range(config.epochs):
        order = rng.permutation(len(pairs))
        for start in range(0, len(pairs), config.batch_size):
            batch = pairs[order[start:start + config.batch_size]]
            centers, contexts = batch[:, 0], batch[:, 1]
            b = len(batch)
            lr = max(config.min_learning_rate,
                     config.learning_rate * (1.0 - step / max(1, total_steps)))
            step += 1

            negs = rng.choice(v, size=(b, config.negatives), p=noise)
            c_vec = emb_in[centers]                       # (b, dim)
            pos_vec = emb_out[contexts]                   # (b, dim)
            neg_vec = emb_out[negs]                       # (b, k, dim)

            pos_score = _sigmoid((c_vec * pos_vec).sum(axis=1))       # (b,)
            neg_score = _sigmoid(np.einsum("bd,bkd->bk", c_vec, neg_vec))

            g_pos = (pos_score - 1.0)[:, None]            # d/d(dot) of -log σ
            g_neg = neg_score[:, :, None]                 # (b, k, 1)

            # Clip per-coordinate gradients: prolonged training on tiny,
            # heavily-revisited graphs can otherwise blow embeddings up.
            clip = 5.0
            grad_center = np.clip(
                g_pos * pos_vec + (g_neg * neg_vec).sum(axis=1), -clip, clip)
            grad_context = np.clip(g_pos * c_vec, -clip, clip)
            grad_neg = np.clip(g_neg * c_vec[:, None, :], -clip, clip)

            np.add.at(emb_in, centers, -lr * grad_center)
            np.add.at(emb_out, contexts, -lr * grad_context)
            np.add.at(emb_out.reshape(-1, config.dim),
                      negs.reshape(-1),
                      (-lr * grad_neg).reshape(-1, config.dim))
            # Light decay keeps norms bounded regardless of training length.
            emb_in[centers] *= 1.0 - lr * 1e-3
            emb_out[contexts] *= 1.0 - lr * 1e-3

    return {node: emb_in[index[node]].copy() for node in vocabulary}
