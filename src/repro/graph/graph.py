"""The model-dataset graph structure (Definition III.1).

Nodes are models or datasets; edges carry a weight and a *kind*:

- ``"similarity"``       — dataset ↔ dataset, weight = dataset similarity;
- ``"accuracy"``         — model ↔ dataset, weight = (normalised) training
                           performance (pre-train or fine-tune history);
- ``"transferability"``  — model ↔ dataset, weight = (normalised)
                           transferability score (e.g. LogME).

The graph is undirected; adjacency is stored both as neighbor lists (for
random walks) and lazily as a dense weighted matrix (for the GNNs — zoo
graphs are small, a few hundred nodes, cf. Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Node", "Edge", "ModelDatasetGraph", "EDGE_KINDS"]

EDGE_KINDS = ("similarity", "accuracy", "transferability")


@dataclass(frozen=True)
class Node:
    """A vertex: a model or a dataset."""

    node_id: str
    kind: str  # "model" | "dataset"

    def __post_init__(self):
        if self.kind not in ("model", "dataset"):
            raise ValueError(f"node kind must be model|dataset, got {self.kind!r}")


@dataclass(frozen=True)
class Edge:
    """An undirected weighted edge with a semantic kind."""

    u: str
    v: str
    weight: float
    kind: str

    def __post_init__(self):
        if self.kind not in EDGE_KINDS:
            raise ValueError(f"edge kind must be one of {EDGE_KINDS}, got {self.kind!r}")


class ModelDatasetGraph:
    """Undirected weighted multigraph over models and datasets."""

    def __init__(self):
        self._nodes: dict[str, Node] = {}
        self._edges: list[Edge] = []
        self._adjacency: dict[str, list[tuple[str, float, str]]] = {}
        self.node_features: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def add_node(self, node_id: str, kind: str,
                 features: np.ndarray | None = None) -> None:
        if node_id in self._nodes:
            existing = self._nodes[node_id]
            if existing.kind != kind:
                raise ValueError(
                    f"node {node_id!r} already exists with kind {existing.kind!r}")
        else:
            self._nodes[node_id] = Node(node_id, kind)
            self._adjacency[node_id] = []
        if features is not None:
            self.node_features[node_id] = np.asarray(features, dtype=np.float64)

    def add_edge(self, u: str, v: str, weight: float, kind: str) -> None:
        if u not in self._nodes or v not in self._nodes:
            missing = u if u not in self._nodes else v
            raise KeyError(f"edge endpoint {missing!r} is not a node")
        if u == v:
            raise ValueError(f"self-loops are not allowed ({u!r})")
        edge = Edge(u, v, float(weight), kind)
        self._edges.append(edge)
        self._adjacency[u].append((v, edge.weight, kind))
        self._adjacency[v].append((u, edge.weight, kind))

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def nodes(self, kind: str | None = None) -> list[str]:
        if kind is None:
            return sorted(self._nodes)
        return sorted(n for n, node in self._nodes.items() if node.kind == kind)

    def node_kind(self, node_id: str) -> str:
        return self._nodes[node_id].kind

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def edges(self, kind: str | None = None) -> list[Edge]:
        if kind is None:
            return list(self._edges)
        return [e for e in self._edges if e.kind == kind]

    def neighbors(self, node_id: str) -> list[tuple[str, float, str]]:
        return list(self._adjacency[node_id])

    def degree(self, node_id: str) -> int:
        return len(self._adjacency[node_id])

    def average_degree(self) -> float:
        if not self._nodes:
            return 0.0
        return 2.0 * self.num_edges / self.num_nodes

    def has_edge(self, u: str, v: str) -> bool:
        return any(n == v for n, _, _ in self._adjacency.get(u, []))

    # ------------------------------------------------------------------ #
    def index(self) -> dict[str, int]:
        """Stable node → integer index (sorted order)."""
        return {n: i for i, n in enumerate(self.nodes())}

    def adjacency_matrix(self, weighted: bool = True) -> np.ndarray:
        """Dense symmetric adjacency (parallel edges sum their weights)."""
        idx = self.index()
        a = np.zeros((self.num_nodes, self.num_nodes))
        for e in self._edges:
            value = e.weight if weighted else 1.0
            a[idx[e.u], idx[e.v]] += value
            a[idx[e.v], idx[e.u]] += value
        return a

    def feature_matrix(self, default_dim: int | None = None) -> np.ndarray:
        """Node features stacked in index order; zero rows where absent."""
        names = self.nodes()
        dims = {f.shape[0] for f in self.node_features.values()}
        if len(dims) > 1:
            raise ValueError(f"inconsistent node-feature dims: {sorted(dims)}")
        if not dims:
            if default_dim is None:
                raise ValueError("graph has no node features")
            dims = {default_dim}
        dim = dims.pop()
        out = np.zeros((len(names), dim))
        for i, name in enumerate(names):
            feat = self.node_features.get(name)
            if feat is not None:
                out[i] = feat
        return out

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, float]:
        """The Table II statistics of this graph."""
        return {
            "num_nodes": self.num_nodes,
            "num_model_nodes": len(self.nodes("model")),
            "num_dataset_nodes": len(self.nodes("dataset")),
            "num_edges": self.num_edges,
            "num_dd_edges": len(self.edges("similarity")),
            "num_md_accuracy_edges": len(self.edges("accuracy")),
            "num_md_transferability_edges": len(self.edges("transferability")),
            "average_degree": self.average_degree(),
        }

    def to_networkx(self):
        """Export to a networkx Graph (for inspection/visualisation)."""
        import networkx as nx

        g = nx.Graph()
        for node_id, node in self._nodes.items():
            g.add_node(node_id, kind=node.kind)
        for e in self._edges:
            # networkx collapses parallel edges; keep the max weight.
            if g.has_edge(e.u, e.v):
                g[e.u][e.v]["weight"] = max(g[e.u][e.v]["weight"], e.weight)
            else:
                g.add_edge(e.u, e.v, weight=e.weight, kind=e.kind)
        return g
