"""Graph construction from the zoo catalog (§V-A, Table II heuristics).

The builder turns catalog facts into the weighted graph:

- every dataset pair gets a D-D edge weighted by similarity (Table II
  shows *all* pairs present: 5256 = 73·72 for the image graph);
- (model, dataset) training history becomes M-D "accuracy" edges, kept
  only when the *per-dataset min-max normalised* accuracy meets the
  pruning threshold (0.5 in Table II);
- transferability scores become M-D "transferability" edges, normalised
  and pruned the same way;
- for leave-one-out evaluation the target dataset's M-D edges are
  removed (§VII-A Evaluation) while its D-D edges remain;
- ``history_ratio`` < 1 subsamples history edges (the Fig. 13 ablation).

Positive/negative link-prediction labels use the same normalised scores:
pairs at/above ``negative_threshold`` are positive, the rest negative
(§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.graph import ModelDatasetGraph
from repro.probe import compute_dataset_embeddings, record_dataset_similarities
from repro.transferability import normalise_scores, score_zoo
from repro.utils.rng import derive_seed

__all__ = ["GraphConfig", "LinkExamples", "GraphBuilder", "build_graph"]


@dataclass(frozen=True)
class GraphConfig:
    """Knobs of the graph-construction heuristics (Table II)."""

    transferability_threshold: float = 0.5
    accuracy_threshold: float = 0.5
    negative_threshold: float = 0.5
    use_accuracy_edges: bool = True
    use_transferability_edges: bool = True
    transferability_metric: str = "logme"
    similarity_method: str = "domain_similarity"
    history_method: str = "finetune"
    include_pretrain_edges: bool = True
    history_ratio: float = 1.0
    seed: int = 0

    def __post_init__(self):
        for name in ("transferability_threshold", "accuracy_threshold",
                     "negative_threshold", "history_ratio"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class LinkExamples:
    """Labelled (model, dataset) pairs for the link-prediction task."""

    positive: list[tuple[str, str]] = field(default_factory=list)
    negative: list[tuple[str, str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.positive) + len(self.negative)


class GraphBuilder:
    """Builds :class:`ModelDatasetGraph` instances from a zoo."""

    def __init__(self, zoo, config: GraphConfig | None = None):
        self.zoo = zoo
        self.config = config or GraphConfig()

    # ------------------------------------------------------------------ #
    def ensure_similarities(self) -> None:
        """Compute + record dataset similarities if the catalog lacks them.

        The whole check-and-fill runs under the catalog lock so that
        concurrent fits (the router's parallel fit workers) see either
        an untouched or a fully-filled similarity table, never a
        half-written one — and only one thread pays for the fill.
        """
        method = self.config.similarity_method
        names = self.zoo.dataset_names()
        with self.zoo.catalog.lock:
            missing = any(
                self.zoo.catalog.get_similarity(names[i], names[j], method=method) is None
                for i in range(min(2, len(names)))
                for j in range(i + 1, min(3, len(names)))
            )
            if missing:
                embeddings = compute_dataset_embeddings(self.zoo, method=method)
                record_dataset_similarities(self.zoo, embeddings, method=method)

    def ensure_transferability(self) -> None:
        """Compute + record transferability scores if absent.

        Atomic check-and-fill under the catalog lock, same as
        :meth:`ensure_similarities`.
        """
        metric = self.config.transferability_metric
        model_ids = self.zoo.model_ids()
        targets = self.zoo.target_names()
        if not model_ids or not targets:
            return
        with self.zoo.catalog.lock:
            probe = self.zoo.catalog.get_transferability(
                model_ids[0], targets[0], metric=metric)
            if probe is None:
                score_zoo(self.zoo, metric=metric, record=True)

    # ------------------------------------------------------------------ #
    def _normalised_history(self, exclude_target: str | None
                            ) -> dict[str, dict[str, float]]:
        """Per-dataset min-max normalised fine-tune accuracies.

        Returns {dataset: {model: normalised accuracy}} excluding the LOO
        target (its history must not leak into the graph).
        """
        out: dict[str, dict[str, float]] = {}
        for dataset_id in self.zoo.target_names():
            if dataset_id == exclude_target:
                continue
            rows = self.zoo.catalog.history_for_dataset(
                dataset_id, method=self.config.history_method)
            if not rows:
                continue
            models = [r["model_id"] for r in rows]
            scores = normalise_scores([r["accuracy"] for r in rows])
            out[dataset_id] = dict(zip(models, scores))
        return out

    def _normalised_transferability(self, exclude_target: str | None
                                    ) -> dict[str, dict[str, float]]:
        metric = self.config.transferability_metric
        out: dict[str, dict[str, float]] = {}
        for dataset_id in self.zoo.target_names():
            if dataset_id == exclude_target:
                continue
            rows = self.zoo.catalog.transferability.filter(
                dataset_id=dataset_id, metric=metric)
            if not rows:
                continue
            models = [r["model_id"] for r in rows]
            scores = normalise_scores([r["score"] for r in rows])
            out[dataset_id] = dict(zip(models, scores))
        return out

    def _subsample(self, pairs: list, kind: str) -> list:
        """Apply the Fig. 13 history-ratio subsampling."""
        ratio = self.config.history_ratio
        if ratio >= 1.0 or not pairs:
            return pairs
        rng = np.random.default_rng(
            derive_seed(self.config.seed, "history_ratio", kind))
        keep = max(1, int(round(ratio * len(pairs))))
        idx = rng.choice(len(pairs), size=keep, replace=False)
        return [pairs[i] for i in sorted(idx)]

    # ------------------------------------------------------------------ #
    def build(self, exclude_target: str | None = None
              ) -> tuple[ModelDatasetGraph, LinkExamples]:
        """Construct the graph (and link labels) for one LOO round."""
        if exclude_target is not None and exclude_target not in self.zoo.datasets:
            raise KeyError(f"unknown target dataset {exclude_target!r}")
        self.ensure_similarities()
        if self.config.use_transferability_edges:
            self.ensure_transferability()

        graph = ModelDatasetGraph()
        for name in self.zoo.dataset_names():
            graph.add_node(name, "dataset")
        for model_id in self.zoo.model_ids():
            graph.add_node(model_id, "model")

        # --- D-D similarity edges (all pairs, Table II) ----------------- #
        names = self.zoo.dataset_names()
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                sim = self.zoo.catalog.get_similarity(
                    names[i], names[j], method=self.config.similarity_method)
                if sim is not None:
                    graph.add_edge(names[i], names[j], sim, "similarity")

        links = LinkExamples()

        # --- M-D accuracy edges (history) ------------------------------- #
        if self.config.use_accuracy_edges:
            history = self._normalised_history(exclude_target)
            pairs = [(d, m, s) for d, per_model in sorted(history.items())
                     for m, s in sorted(per_model.items())]
            pairs = self._subsample(pairs, "accuracy")
            for dataset_id, model_id, score in pairs:
                if score >= self.config.accuracy_threshold:
                    graph.add_edge(model_id, dataset_id, score, "accuracy")
                if score >= self.config.negative_threshold:
                    links.positive.append((model_id, dataset_id))
                else:
                    links.negative.append((model_id, dataset_id))

            if self.config.include_pretrain_edges:
                for row in self.zoo.catalog.history.filter(method="pretrain"):
                    if row["dataset_id"] == exclude_target:
                        continue
                    if not graph.has_node(row["dataset_id"]):
                        continue
                    # Pre-train accuracy is used raw (§V-A3 example: 0.95).
                    if row["accuracy"] >= self.config.accuracy_threshold:
                        graph.add_edge(row["model_id"], row["dataset_id"],
                                       row["accuracy"], "accuracy")

        # --- M-D transferability edges ---------------------------------- #
        if self.config.use_transferability_edges:
            transfer = self._normalised_transferability(exclude_target)
            pairs = [(d, m, s) for d, per_model in sorted(transfer.items())
                     for m, s in sorted(per_model.items())]
            pairs = self._subsample(pairs, "transferability")
            for dataset_id, model_id, score in pairs:
                if score >= self.config.transferability_threshold:
                    graph.add_edge(model_id, dataset_id, score, "transferability")
                if not self.config.use_accuracy_edges:
                    # No-history scenario (§VII-C): labels come from
                    # transferability scores instead.
                    if score >= self.config.negative_threshold:
                        links.positive.append((model_id, dataset_id))
                    else:
                        links.negative.append((model_id, dataset_id))

        self._attach_node_features(graph)
        return graph, links

    # ------------------------------------------------------------------ #
    def _attach_node_features(self, graph: ModelDatasetGraph) -> None:
        """Node features for GNN learners (§V-A2).

        Dataset nodes carry their probe embedding; model nodes carry a
        metadata vector padded/truncated to the same dimensionality.
        """
        embeddings = compute_dataset_embeddings(
            self.zoo, method=self.config.similarity_method)
        dim = len(next(iter(embeddings.values())))
        for name, emb in embeddings.items():
            if graph.has_node(name):
                graph.node_features[name] = emb

        rows = self.zoo.catalog.models.to_records()
        raw = np.array([
            [r["num_params"], r["depth"], r["input_shape"],
             r["embedding_dim"], r["pretrain_accuracy"], r["memory_mb"]]
            for r in rows
        ], dtype=np.float64)
        # standardise columns so no metadata scale dominates
        raw = (raw - raw.mean(axis=0)) / (raw.std(axis=0) + 1e-9)
        for row, record in zip(raw, rows):
            feat = np.zeros(dim)
            feat[: min(dim, raw.shape[1])] = row[:dim]
            graph.node_features[record["model_id"]] = feat


def build_graph(zoo, exclude_target: str | None = None,
                config: GraphConfig | None = None
                ) -> tuple[ModelDatasetGraph, LinkExamples]:
    """Convenience wrapper: ``GraphBuilder(zoo, config).build(target)``."""
    return GraphBuilder(zoo, config).build(exclude_target=exclude_target)
