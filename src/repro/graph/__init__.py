"""Graph construction and graph learning (§V of the paper).

- :mod:`repro.graph.graph` — the weighted model/dataset graph;
- :mod:`repro.graph.builder` — Table II construction heuristics
  (thresholds, pruning, LOO target exclusion, history-ratio ablation);
- :mod:`repro.graph.walks` / :mod:`repro.graph.skipgram` — biased random
  walks and SGNS used by Node2Vec(+);
- :mod:`repro.graph.learners` — Node2Vec and Node2Vec+;
- :mod:`repro.graph.gnn` — GraphSAGE and GAT trained for link prediction.
"""

from repro.graph.graph import Edge, EDGE_KINDS, ModelDatasetGraph, Node
from repro.graph.builder import (
    GraphBuilder,
    GraphConfig,
    LinkExamples,
    build_graph,
)
from repro.graph.walks import WalkConfig, generate_walks
from repro.graph.skipgram import SkipGramConfig, train_skipgram
from repro.graph.learners import GraphLearner, Node2Vec, Node2VecPlus
from repro.graph.gnn import (
    GAT,
    GATEncoder,
    GraphSAGE,
    GraphSAGEEncoder,
    train_link_prediction,
)

GRAPH_LEARNERS: dict[str, type[GraphLearner]] = {
    cls.name: cls for cls in (Node2Vec, Node2VecPlus, GraphSAGE, GAT)
}


def get_graph_learner(name: str, **kwargs) -> GraphLearner:
    """Instantiate a graph learner by name (``node2vec``, ``node2vec+``,
    ``graphsage``, ``gat``)."""
    try:
        return GRAPH_LEARNERS[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown graph learner {name!r}; available: {sorted(GRAPH_LEARNERS)}"
        ) from None


__all__ = [
    "Edge",
    "EDGE_KINDS",
    "ModelDatasetGraph",
    "Node",
    "GraphBuilder",
    "GraphConfig",
    "LinkExamples",
    "build_graph",
    "WalkConfig",
    "generate_walks",
    "SkipGramConfig",
    "train_skipgram",
    "GraphLearner",
    "Node2Vec",
    "Node2VecPlus",
    "GraphSAGE",
    "GraphSAGEEncoder",
    "GAT",
    "GATEncoder",
    "train_link_prediction",
    "GRAPH_LEARNERS",
    "get_graph_learner",
]
