"""Graph learners: the common interface + Node2Vec / Node2Vec+ (§V-B).

Every learner consumes a :class:`ModelDatasetGraph` (plus, for the GNNs,
link-prediction examples) and yields a node → embedding mapping used as
"graph features" by the prediction model (Stage 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.builder import LinkExamples
from repro.graph.graph import ModelDatasetGraph
from repro.graph.skipgram import SkipGramConfig, train_skipgram
from repro.graph.walks import WalkConfig, generate_walks
from repro.obs import span
from repro.utils.rng import derive_seed

__all__ = ["GraphLearner", "Node2Vec", "Node2VecPlus"]


class GraphLearner:
    """Interface: ``embed(graph, links) -> {node_id: vector}``."""

    name: str = "base"

    def __init__(self, dim: int = 128, seed: int = 0):
        if dim <= 0:
            raise ValueError("embedding dim must be positive")
        self.dim = dim
        self.seed = seed

    def embed(self, graph: ModelDatasetGraph,
              links: LinkExamples | None = None) -> dict[str, np.ndarray]:
        raise NotImplementedError  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(dim={self.dim})"


@dataclass(frozen=True)
class _N2VParams:
    walks: WalkConfig = field(default_factory=WalkConfig)
    skipgram: SkipGramConfig = field(default_factory=SkipGramConfig)


class Node2Vec(GraphLearner):
    """Node2Vec (Grover & Leskovec 2016): unweighted p/q walks + SGNS.

    Per the paper's characterisation (§V-B1) this variant learns the link
    structure only — edge weights do not influence the walks.
    """

    name = "node2vec"
    weighted_walks = False

    def __init__(self, dim: int = 128, seed: int = 0, num_walks: int = 30,
                 walk_length: int = 20, p: float = 1.0, q: float = 1.0,
                 window: int = 5, epochs: int = 3, negatives: int = 5):
        super().__init__(dim=dim, seed=seed)
        self.walk_config = WalkConfig(num_walks=num_walks,
                                      walk_length=walk_length, p=p, q=q,
                                      weighted=self.weighted_walks)
        self.skipgram_config = SkipGramConfig(dim=dim, window=window,
                                              epochs=epochs,
                                              negatives=negatives)

    def embed(self, graph: ModelDatasetGraph,
              links: LinkExamples | None = None) -> dict[str, np.ndarray]:
        walk_rng = np.random.default_rng(derive_seed(self.seed, self.name, "walks"))
        sg_rng = np.random.default_rng(derive_seed(self.seed, self.name, "sgns"))
        with span("fit.walks"):
            walks = generate_walks(graph, self.walk_config, walk_rng)
        with span("fit.sgns"):
            return train_skipgram(walks, graph.nodes(),
                                  self.skipgram_config, sg_rng)

    def refresh(self, graph: ModelDatasetGraph,
                embeddings: dict[str, np.ndarray],
                dirty_nodes: set[str],
                links: LinkExamples | None = None) -> dict[str, np.ndarray]:
        """Localized re-walk + warm-started SGNS over a dirty neighborhood.

        Walks restart only from ``dirty_nodes`` and their one-hop
        neighbors; SGNS warm-starts every node from ``embeddings``, so
        vectors outside the re-walked region are carried over verbatim
        and the refresh costs O(changed nodes), not O(graph).  Falls
        back to a full :meth:`embed` when the dirty set is empty-or-
        unknown relative to this graph (nothing to localize against).
        """
        known = set(graph.nodes())
        dirty = {n for n in dirty_nodes if n in known}
        if not dirty or not embeddings:
            return self.embed(graph, links)
        frontier = set(dirty)
        for node in dirty:
            frontier.update(nb for nb, _w, _k in graph.neighbors(node))
        walk_rng = np.random.default_rng(
            derive_seed(self.seed, self.name, "refresh-walks"))
        sg_rng = np.random.default_rng(
            derive_seed(self.seed, self.name, "refresh-sgns"))
        with span("refresh.walks"):
            walks = generate_walks(graph, self.walk_config, walk_rng,
                                   start_nodes=sorted(frontier))
        with span("refresh.sgns"):
            return train_skipgram(walks, graph.nodes(),
                                  self.skipgram_config, sg_rng,
                                  init=embeddings)


class Node2VecPlus(Node2Vec):
    """Node2Vec+ (Liu et al. 2023): edge-weight-aware walks + SGNS (§V-B1)."""

    name = "node2vec+"
    weighted_walks = True
