"""Biased second-order random walks (Node2Vec §V-B1, Node2Vec+ variant).

Following the paper's description:

- **Node2Vec** explores the *link structure only*: transition
  probabilities use the p/q biases on an unweighted view of the graph.
- **Node2Vec+** additionally multiplies transition probabilities by the
  edge weights ("the probability of visiting the next neighbor is
  associated with the edge weights").

Graphs here are small (hundreds of nodes), so transition distributions
are computed on the fly instead of via alias tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import ModelDatasetGraph

__all__ = ["WalkConfig", "generate_walks"]


@dataclass(frozen=True)
class WalkConfig:
    """Random-walk hyperparameters."""

    num_walks: int = 10       # walks started per node
    walk_length: int = 20     # nodes per walk
    p: float = 1.0            # return parameter (1/p to revisit previous)
    q: float = 1.0            # in-out parameter (1/q to move outward)
    weighted: bool = False    # False -> Node2Vec, True -> Node2Vec+

    def __post_init__(self):
        if self.num_walks <= 0 or self.walk_length <= 1:
            raise ValueError("need num_walks >= 1 and walk_length >= 2")
        if self.p <= 0 or self.q <= 0:
            raise ValueError("p and q must be positive")


def _collapse_neighbors(graph: ModelDatasetGraph,
                        node: str) -> tuple[list[str], np.ndarray]:
    """Unique neighbors with summed edge weights (parallel edges merge)."""
    totals: dict[str, float] = {}
    for neighbor, weight, _ in graph.neighbors(node):
        totals[neighbor] = totals.get(neighbor, 0.0) + weight
    names = sorted(totals)
    return names, np.array([totals[n] for n in names])


def _step_probabilities(neighbors: list[str], weights: np.ndarray,
                        previous: str | None,
                        previous_neighbors: set[str],
                        config: WalkConfig) -> np.ndarray:
    base = weights if config.weighted else np.ones(len(neighbors))
    bias = np.empty(len(neighbors))
    for k, candidate in enumerate(neighbors):
        if previous is None:
            bias[k] = 1.0
        elif candidate == previous:
            bias[k] = 1.0 / config.p
        elif candidate in previous_neighbors:
            bias[k] = 1.0
        else:
            bias[k] = 1.0 / config.q
    probs = base * bias
    total = probs.sum()
    if total <= 0:
        return np.full(len(neighbors), 1.0 / len(neighbors))
    return probs / total


def generate_walks(graph: ModelDatasetGraph, config: WalkConfig,
                   rng: np.random.Generator,
                   start_nodes: list[str] | None = None) -> list[list[str]]:
    """Generate ``num_walks`` biased walks from every node.

    ``start_nodes`` restricts where walks *start* (walks still traverse
    the whole graph): the incremental-refresh path passes the dirty
    neighborhood here so re-walking costs O(changed nodes), not
    O(graph).  Unknown names are ignored.
    """
    neighbor_cache: dict[str, tuple[list[str], np.ndarray]] = {
        node: _collapse_neighbors(graph, node) for node in graph.nodes()
    }
    neighbor_sets = {node: set(names) for node, (names, _) in neighbor_cache.items()}

    walks: list[list[str]] = []
    if start_nodes is None:
        nodes = graph.nodes()
    else:
        known = set(graph.nodes())
        nodes = sorted(n for n in set(start_nodes) if n in known)
    if not nodes:
        return walks
    for _ in range(config.num_walks):
        order = rng.permutation(len(nodes))
        for node_idx in order:
            start = nodes[node_idx]
            if not neighbor_cache[start][0]:
                continue  # isolated node: nothing to walk
            walk = [start]
            previous: str | None = None
            current = start
            while len(walk) < config.walk_length:
                neighbors, weights = neighbor_cache[current]
                if not neighbors:
                    break
                probs = _step_probabilities(
                    neighbors, weights, previous,
                    neighbor_sets[previous] if previous else set(), config)
                nxt = neighbors[int(rng.choice(len(neighbors), p=probs))]
                walk.append(nxt)
                previous, current = current, nxt
            walks.append(walk)
    return walks
