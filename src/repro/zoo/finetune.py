"""Fine-tuning: the ground-truth generator (§VII-A "Ground truth").

Two methods are implemented, matching the paper:

- **Full fine-tuning** — "the model is initiated with the pre-trained
  weights, coupled with a classifier layer that is randomly initialized"
  and *all* layers are retrained with SGD + momentum 0.9 and a cyclical
  learning-rate schedule.
- **LoRA fine-tuning** (§VII-F) — backbone frozen, rank-decomposition
  adapters injected into every linear layer, trained with AdamW and a
  linear schedule for fewer epochs.

Learning-rate magnitudes are adapted to our small-MLP substrate (the
paper's 1e-3 is tuned for deep pre-trained networks); the *shape* of each
schedule and the optimizer family match §VII-A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import (
    AdamW,
    CyclicalLR,
    LinearDecayLR,
    SGD,
    Tensor,
    cross_entropy,
    inject_lora,
    lora_parameters,
    no_grad,
)
from repro.zoo.models import ZooModel
from repro.zoo.tasks import Dataset

__all__ = ["FinetuneConfig", "FinetuneResult", "full_finetune", "lora_finetune"]


@dataclass(frozen=True)
class FinetuneConfig:
    """Hyperparameters for both fine-tuning methods."""

    # full fine-tuning (SGD + cyclical schedule, §VII-A).  A *short*
    # budget is deliberate: it keeps the pre-trained initialisation
    # decisive (the regime where model selection matters), reproducing
    # the wide per-dataset accuracy spread of the paper's Fig. 6.
    epochs: int = 4
    batch_size: int = 32
    momentum: float = 0.9
    base_lr: float = 5e-3
    max_lr: float = 5e-2
    # LoRA (AdamW + linear schedule, §VII-F: 4 epochs)
    lora_epochs: int = 4
    lora_rank: int = 4
    lora_alpha: float = 8.0
    lora_lr: float = 2e-2


@dataclass(frozen=True)
class FinetuneResult:
    """Outcome of one fine-tuning run."""

    model_id: str
    dataset: str
    method: str
    accuracy: float
    epochs: int


def _minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                 rng: np.random.Generator):
    order = rng.permutation(len(x))
    for start in range(0, len(x), batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], y[idx]


def _evaluate(backbone, head, x: np.ndarray, y: np.ndarray) -> float:
    backbone.eval()
    with no_grad():
        logits = head(backbone(Tensor(x))).numpy()
    return float((logits.argmax(axis=1) == y).mean())


def full_finetune(model: ZooModel, dataset: Dataset,
                  rng: np.random.Generator,
                  config: FinetuneConfig | None = None) -> FinetuneResult:
    """Retrain all layers on the target dataset; returns test accuracy.

    The original ``model`` is left untouched — fine-tuning operates on a
    cloned backbone, exactly as a practitioner would fine-tune a local
    copy of a downloaded checkpoint.
    """
    config = config or FinetuneConfig()
    backbone = model.clone_backbone()
    head = model.new_head(dataset.num_classes, rng)
    backbone.train()

    params = backbone.parameters() + head.parameters()
    opt = SGD(params, lr=config.base_lr, momentum=config.momentum)
    x_train = model.adapt(dataset.x_train)
    steps_per_epoch = max(1, int(np.ceil(len(x_train) / config.batch_size)))
    sched = CyclicalLR(opt, base_lr=config.base_lr, max_lr=config.max_lr,
                       step_size_up=max(1, (config.epochs * steps_per_epoch) // 4))

    for _ in range(config.epochs):
        backbone.train()
        for xb, yb in _minibatches(x_train, dataset.y_train, config.batch_size, rng):
            loss = cross_entropy(head(backbone(Tensor(xb))), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            sched.step()

    accuracy = _evaluate(backbone, head, model.adapt(dataset.x_test), dataset.y_test)
    return FinetuneResult(model.model_id, dataset.name, "finetune",
                          accuracy, config.epochs)


def lora_finetune(model: ZooModel, dataset: Dataset,
                  rng: np.random.Generator,
                  config: FinetuneConfig | None = None) -> FinetuneResult:
    """LoRA fine-tuning: frozen backbone + low-rank adapters + new head."""
    config = config or FinetuneConfig()
    backbone = inject_lora(model.clone_backbone(), rank=config.lora_rank,
                           alpha=config.lora_alpha, rng=rng)
    head = model.new_head(dataset.num_classes, rng)
    backbone.train()

    params = lora_parameters(backbone) + head.parameters()
    opt = AdamW(params, lr=config.lora_lr, weight_decay=0.0)
    x_train = model.adapt(dataset.x_train)
    steps_per_epoch = max(1, int(np.ceil(len(x_train) / config.batch_size)))
    sched = LinearDecayLR(opt, initial_lr=config.lora_lr,
                          total_steps=config.lora_epochs * steps_per_epoch)

    for _ in range(config.lora_epochs):
        backbone.train()
        for xb, yb in _minibatches(x_train, dataset.y_train, config.batch_size, rng):
            loss = cross_entropy(head(backbone(Tensor(xb))), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            sched.step()

    accuracy = _evaluate(backbone, head, model.adapt(dataset.x_test), dataset.y_test)
    return FinetuneResult(model.model_id, dataset.name, "lora",
                          accuracy, config.lora_epochs)
