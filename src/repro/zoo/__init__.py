"""The simulated model zoo: datasets, models, training pipelines, cache.

See DESIGN.md §2 for the substitution argument: the paper's HuggingFace
zoo + GPU fine-tuning is replaced by genuinely-trained small numpy models
over a latent task universe with real transfer structure.
"""

from repro.zoo.tasks import (
    Dataset,
    DatasetSpec,
    TaskUniverse,
    IMAGE_TARGETS,
    IMAGE_SOURCES,
    TEXT_TARGETS,
    TEXT_SOURCES,
)
from repro.zoo.architectures import (
    FamilyConfig,
    ModelSpec,
    IMAGE_FAMILIES,
    TEXT_FAMILIES,
    build_feature_extractor,
    family_config,
    sample_model_specs,
)
from repro.zoo.models import ZooModel
from repro.zoo.pretrain import PretrainConfig, pretrain_model
from repro.zoo.finetune import (
    FinetuneConfig,
    FinetuneResult,
    full_finetune,
    lora_finetune,
)
from repro.zoo.zoo import ModelZoo, ZooConfig, build_zoo
from repro.zoo.cache import (
    build_default_zoo,
    default_cache_dir,
    get_or_build_zoo,
    load_zoo,
    save_zoo,
    zoo_cache_key,
)

__all__ = [
    "Dataset",
    "DatasetSpec",
    "TaskUniverse",
    "IMAGE_TARGETS",
    "IMAGE_SOURCES",
    "TEXT_TARGETS",
    "TEXT_SOURCES",
    "FamilyConfig",
    "ModelSpec",
    "IMAGE_FAMILIES",
    "TEXT_FAMILIES",
    "build_feature_extractor",
    "family_config",
    "sample_model_specs",
    "ZooModel",
    "PretrainConfig",
    "pretrain_model",
    "FinetuneConfig",
    "FinetuneResult",
    "full_finetune",
    "lora_finetune",
    "ModelZoo",
    "ZooConfig",
    "build_zoo",
    "build_default_zoo",
    "default_cache_dir",
    "get_or_build_zoo",
    "load_zoo",
    "save_zoo",
    "zoo_cache_key",
]
