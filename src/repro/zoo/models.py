"""Zoo model objects: a backbone, a classifier head, and input adapters.

A :class:`ZooModel` mirrors the paper's description of a pre-trained model
(§VII-A "Ground truth"): a feature extractor plus a classifier.  Datasets
in a zoo come in different input dimensionalities; models expect a fixed
``input_shape``.  A deterministic random-projection *adapter* bridges
mismatched dimensions — the analogue of image resizing, and the mechanism
by which input-shape mismatch genuinely hurts transfer (§II-A, [10]).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Sequential, Tensor, no_grad
from repro.utils.rng import derive_seed
from repro.zoo.architectures import ModelSpec, build_feature_extractor
from repro.zoo.tasks import Dataset

__all__ = ["ZooModel"]


class ZooModel:
    """A pre-trained (or freshly initialised) model in the zoo."""

    def __init__(self, spec: ModelSpec, backbone: Sequential | None = None,
                 head: Linear | None = None, head_classes: int | None = None):
        self.spec = spec
        self.backbone = backbone if backbone is not None else build_feature_extractor(spec)
        self.head = head
        self.head_classes = head_classes
        self.pretrain_accuracy: float | None = None
        self._adapters: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    @property
    def model_id(self) -> str:
        return self.spec.model_id

    def __repr__(self) -> str:
        return f"ZooModel({self.model_id}, pretrained_on={self.spec.pretrain_dataset})"

    # ------------------------------------------------------------------ #
    def adapter_for(self, input_dim: int) -> np.ndarray | None:
        """Projection from a dataset's input dim to the model's input shape.

        Identity (None) when dimensions match; otherwise a fixed random
        orthonormal-ish projection derived deterministically from the model
        id and the dataset dimension, so every fine-tune/evaluation of the
        same (model, dataset) pair sees the same adapter.
        """
        if input_dim == self.spec.input_shape:
            return None
        adapter = self._adapters.get(input_dim)
        if adapter is None:
            seed = derive_seed(self.spec.init_seed, "adapter", str(input_dim))
            rng = np.random.default_rng(seed)
            adapter = rng.normal(size=(input_dim, self.spec.input_shape))
            adapter /= np.sqrt(input_dim)
            self._adapters[input_dim] = adapter
        return adapter

    def _family_mask(self) -> np.ndarray:
        """Fixed per-family receptive mask over input coordinates.

        Architecture families attend to different parts of the input
        (locality, pooling, tokenisation).  We model this as a fixed mask
        shared by every model of a family: coordinates outside the mask
        are strongly attenuated.  Whether a family's mask covers the
        coordinates a *domain* concentrates its signal on creates the
        family×domain affinity the paper attributes to inductive bias —
        visible in training history, invisible in metadata.
        """
        mask = getattr(self, "_family_mask_cache", None)
        if mask is None:
            seed = derive_seed(0, "family_mask", self.spec.family,
                               str(self.spec.input_shape))
            rng = np.random.default_rng(seed)
            mask = np.where(rng.random(self.spec.input_shape) < 0.7, 1.0, 0.15)
            self._family_mask_cache = mask
        return mask

    def adapt(self, x: np.ndarray) -> np.ndarray:
        adapter = self.adapter_for(x.shape[1])
        out = x if adapter is None else x @ adapter
        return out * self._family_mask()[None, :]

    # ------------------------------------------------------------------ #
    def features(self, x: np.ndarray) -> np.ndarray:
        """Forward pass through adapter + backbone (no gradients)."""
        self.backbone.eval()
        with no_grad():
            out = self.backbone(Tensor(self.adapt(x)))
        return out.numpy()

    def logits(self, x: np.ndarray) -> np.ndarray:
        if self.head is None:
            raise RuntimeError(f"{self.model_id} has no classifier head")
        feats = self.features(x)
        with no_grad():
            out = self.head(Tensor(feats))
        return out.numpy()

    def accuracy_on(self, x: np.ndarray, y: np.ndarray) -> float:
        pred = self.logits(x).argmax(axis=1)
        return float((pred == y).mean())

    def new_head(self, num_classes: int, rng: np.random.Generator) -> Linear:
        """A randomly initialised classifier head (fine-tuning §VII-A)."""
        return Linear(self.spec.embedding_dim, num_classes, rng=rng)

    # ------------------------------------------------------------------ #
    def clone_backbone(self) -> Sequential:
        """A structurally identical backbone with copied weights."""
        clone = build_feature_extractor(self.spec)
        clone.load_state_dict(self.backbone.state_dict())
        return clone

    def state(self) -> dict[str, np.ndarray]:
        """Snapshot backbone (+head) weights for the artifact cache."""
        state = {f"backbone.{k}": v for k, v in self.backbone.state_dict().items()}
        if self.head is not None:
            state.update({f"head.{k}": v for k, v in self.head.state_dict().items()})
        return state

    def load_state(self, state: dict[str, np.ndarray],
                   head_classes: int | None = None) -> None:
        backbone_state = {k[len("backbone."):]: v for k, v in state.items()
                          if k.startswith("backbone.")}
        self.backbone.load_state_dict(backbone_state)
        head_state = {k[len("head."):]: v for k, v in state.items()
                      if k.startswith("head.")}
        if head_state:
            if head_classes is None:
                head_classes = head_state["weight"].shape[1]
            self.head = Linear(self.spec.embedding_dim, head_classes)
            self.head.load_state_dict(head_state)
            self.head_classes = head_classes

    # ------------------------------------------------------------------ #
    def features_for(self, dataset: Dataset, split: str = "train") -> np.ndarray:
        """Features of a dataset split (the forward pass of §II-A)."""
        if split == "train":
            return self.features(dataset.x_train)
        if split == "test":
            return self.features(dataset.x_test)
        if split == "all":
            return self.features(dataset.all_x())
        raise ValueError(f"unknown split {split!r}")
