"""Synthetic task universe: datasets with a *real* notion of similarity.

The paper evaluates on 12 public image datasets and 8 text datasets
(Table III) plus 61/16 source datasets used for dataset similarity.  Those
datasets are not available offline, so we generate classification tasks
from a latent *semantic space*:

- The universe contains a small number of **domains** (e.g. "natural
  objects", "vehicles", "textures" for images) — each an anchor point in a
  latent space of dimension ``semantic_dim``.
- A **dataset** belongs to a domain; its class prototypes are the domain
  anchor plus per-class offsets.  Samples are noisy linear images of their
  class prototype: ``x = W_shared @ z_class + W_domain @ z_class + noise``.

Because datasets in the same domain share prototype geometry, (a) a probe
network embeds them close together (Domain Similarity, §IV-B), and (b)
models pre-trained on a dataset genuinely transfer better to datasets of
the same domain — the structure TransferGraph is designed to exploit.

Dataset names and relative sizes follow Table III, scaled down ~20× so the
whole zoo builds in minutes on a CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import RngRegistry

__all__ = ["DatasetSpec", "Dataset", "TaskUniverse",
           "IMAGE_TARGETS", "TEXT_TARGETS", "IMAGE_SOURCES", "TEXT_SOURCES"]


# --------------------------------------------------------------------------- #
# Canonical dataset rosters (names + paper sample/class counts from Table III)
# Scaled counts are derived in TaskUniverse; paper values are retained in the
# spec for the Table III benchmark.
# --------------------------------------------------------------------------- #

#: (name, paper_samples, paper_classes, domain)
IMAGE_TARGETS: list[tuple[str, int, int, str]] = [
    ("caltech101", 3060, 101, "natural_objects"),
    ("cifar100", 50000, 100, "natural_objects"),
    ("dtd", 1880, 47, "textures"),
    ("flowers", 1020, 10, "plants"),
    ("pets", 3680, 37, "animals"),
    ("smallnorb_elevation", 24300, 18, "synthetic_3d"),
    ("stanfordcars", 8144, 196, "vehicles"),
    ("svhn", 73257, 10, "digits"),
]

IMAGE_SOURCES: list[tuple[str, int, int, str]] = [
    ("imagenet", 120000, 100, "natural_objects"),
    ("places365", 80000, 60, "scenes"),
    ("inaturalist", 60000, 80, "animals"),
    ("plantvillage", 20000, 12, "plants"),
    ("food101", 30000, 40, "natural_objects"),
    ("gtsrb", 26000, 12, "vehicles"),
    ("mnist_like", 60000, 10, "digits"),
    ("fractals", 10000, 30, "textures"),
    ("shapenet_renders", 15000, 16, "synthetic_3d"),
    ("sun397", 40000, 50, "scenes"),
]

TEXT_TARGETS: list[tuple[str, int, int, str]] = [
    ("glue/cola", 8550, 2, "linguistic_acceptability"),
    ("glue/sst2", 70000, 2, "sentiment"),
    ("rotten_tomatoes", 10662, 2, "sentiment"),
    ("tweet_eval/emotion", 5050, 4, "social_media"),
    ("tweet_eval/hate", 13000, 2, "social_media"),
    ("tweet_eval/irony", 4600, 2, "social_media"),
    ("tweet_eval/offensive", 24300, 2, "social_media"),
    ("tweet_eval/sentiment", 59900, 3, "sentiment"),
]

TEXT_SOURCES: list[tuple[str, int, int, str]] = [
    ("wiki_topics", 80000, 20, "encyclopedic"),
    ("bookcorpus_genre", 40000, 10, "narrative"),
    ("imdb", 50000, 2, "sentiment"),
    ("yelp_polarity", 56000, 2, "sentiment"),
    ("ag_news", 120000, 4, "news"),
    ("dbpedia", 70000, 14, "encyclopedic"),
    ("twitter_topics", 30000, 8, "social_media"),
    ("grammar_bank", 12000, 2, "linguistic_acceptability"),
]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one dataset in the universe."""

    name: str
    modality: str  # "image" | "text"
    domain: str
    num_samples: int
    num_classes: int
    input_dim: int
    paper_samples: int
    paper_classes: int
    is_target: bool
    noise_scale: float
    class_separation: float
    label_noise: float


@dataclass
class Dataset:
    """A materialised dataset with a fixed train/test split."""

    spec: DatasetSpec
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    class_prototypes: np.ndarray = field(repr=False)  # (classes, semantic_dim)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def input_dim(self) -> int:
        return self.spec.input_dim

    def all_x(self) -> np.ndarray:
        return np.vstack([self.x_train, self.x_test])

    def all_y(self) -> np.ndarray:
        return np.concatenate([self.y_train, self.y_test])


def _scale_samples(paper_samples: int, lo: int = 160, hi: int = 640) -> int:
    """Scale the paper's sample count down ~20x, clamped to a CPU budget."""
    return int(np.clip(paper_samples // 20, lo, hi))


def _scale_classes(paper_classes: int, hi: int = 12) -> int:
    """Clamp class counts so chance level stays measurable at small n."""
    return int(np.clip(paper_classes, 2, hi))


class TaskUniverse:
    """Generates the datasets of one modality from a shared latent space."""

    def __init__(self, modality: str, seed: int = 0, semantic_dim: int = 12,
                 input_dims: tuple[int, ...] = (24, 32, 48),
                 sample_budget: tuple[int, int] = (160, 640),
                 class_budget: int = 12):
        if modality not in ("image", "text"):
            raise ValueError(f"modality must be 'image' or 'text', got {modality!r}")
        self.modality = modality
        self.semantic_dim = semantic_dim
        self.input_dims = tuple(input_dims)
        self.sample_budget = sample_budget
        self.class_budget = class_budget
        self._rngs = RngRegistry(seed).child(modality)

        roster = (IMAGE_TARGETS + IMAGE_SOURCES) if modality == "image" \
            else (TEXT_TARGETS + TEXT_SOURCES)
        target_names = {r[0] for r in (IMAGE_TARGETS if modality == "image"
                                       else TEXT_TARGETS)}
        self._roster = roster
        self._target_names = target_names

        domains = sorted({r[3] for r in roster})
        rng = self._rngs.get("domains")
        # Domain anchors: well-separated points in the semantic space.
        self._domain_anchor = {
            d: rng.normal(0.0, 1.0, size=semantic_dim) * 2.0 for d in domains
        }
        # Shared decoder: semantic space -> a wide "pixel/token" space; each
        # dataset then reads a slice through a readout matrix that is mostly
        # shared within a (domain, input_dim) pair — this is what makes
        # within-domain transfer *real* rather than asserted.
        self._decoder_dim = 64
        # Domain structure dominates shared structure: a model pre-trained
        # in one domain transfers far better within it than across — the
        # "no dominant model excels across all datasets" regime of §IX.
        self._w_shared = rng.normal(0.0, 0.45, size=(semantic_dim, self._decoder_dim))
        self._w_domain = {
            d: rng.normal(0.0, 1.25, size=(semantic_dim, self._decoder_dim))
            for d in domains
        }
        self._readout_cache: dict[tuple[str, int], np.ndarray] = {}

    def _readout_basis(self, domain: str, input_dim: int) -> np.ndarray:
        """Readout shared by all datasets of a (domain, input_dim) pair.

        Each domain concentrates its class signal on a *subset* of input
        coordinates (its "spectral profile"): model families whose
        receptive masks cover those coordinates transfer well to the
        domain — the inductive-bias × data-statistics interaction the
        paper appeals to (§II-B1).
        """
        key = (domain, input_dim)
        if key not in self._readout_cache:
            shared = self._rngs.fresh("readout_shared", str(input_dim)) \
                .normal(size=(self._decoder_dim, input_dim))
            local = self._rngs.fresh("readout_domain", domain, str(input_dim)) \
                .normal(size=(self._decoder_dim, input_dim))
            profile_rng = self._rngs.fresh("profile", domain, str(input_dim))
            profile = np.where(profile_rng.random(input_dim) < 0.6, 1.0, 0.2)
            readout = (shared + 1.1 * local) / np.sqrt(self._decoder_dim)
            self._readout_cache[key] = readout * profile[None, :]
        return self._readout_cache[key]

    # ------------------------------------------------------------------ #
    @property
    def domains(self) -> list[str]:
        return sorted(self._domain_anchor)

    def dataset_names(self) -> list[str]:
        return [r[0] for r in self._roster]

    def target_names(self) -> list[str]:
        return sorted(self._target_names)

    def source_names(self) -> list[str]:
        return sorted(set(self.dataset_names()) - self._target_names)

    # ------------------------------------------------------------------ #
    def spec_for(self, name: str) -> DatasetSpec:
        for roster_name, paper_samples, paper_classes, domain in self._roster:
            if roster_name == name:
                rng = self._rngs.fresh("spec", name)
                lo, hi = self.sample_budget
                # Input dimensionality is a *domain* convention (datasets of
                # one domain share resolution/tokenisation), so within-domain
                # transfer is not scrambled by dimension adapters.
                dim_rng = self._rngs.fresh("dim", domain)
                is_target = name in self._target_names
                # Targets are deliberately small (few-shot regime): with
                # little target data the pre-trained initialisation decides
                # the outcome — the regime where model selection matters.
                if is_target:
                    samples = _scale_samples(paper_samples, max(100, lo // 2),
                                             max(220, hi // 3))
                else:
                    samples = _scale_samples(paper_samples, lo, hi)
                # Source datasets span a *wide* difficulty range: a
                # checkpoint's source accuracy then mostly reflects how hard
                # its source task was, not how good the checkpoint is —
                # matching real zoos, where accuracies on different source
                # datasets are incomparable.
                if is_target:
                    noise = float(rng.uniform(0.7, 1.6))
                    separation = float(rng.uniform(0.45, 1.0))
                    label_noise = float(rng.uniform(0.0, 0.12))
                else:
                    noise = float(rng.uniform(0.5, 2.4))
                    separation = float(rng.uniform(0.3, 1.4))
                    label_noise = float(rng.uniform(0.0, 0.22))
                return DatasetSpec(
                    name=name,
                    modality=self.modality,
                    domain=domain,
                    num_samples=samples,
                    num_classes=_scale_classes(paper_classes, self.class_budget),
                    input_dim=int(dim_rng.choice(self.input_dims)),
                    paper_samples=paper_samples,
                    paper_classes=paper_classes,
                    is_target=is_target,
                    noise_scale=noise,
                    class_separation=separation,
                    label_noise=label_noise,
                )
        raise KeyError(f"unknown dataset {name!r} in {self.modality} universe")

    def materialise(self, name: str, test_fraction: float | None = None) -> Dataset:
        """Generate the dataset's samples and split them train/test.

        Targets default to a 50% test split: their train sets are small by
        design (few-shot), but accuracy must still be measured on enough
        samples to keep the ground truth stable.
        """
        spec = self.spec_for(name)
        if test_fraction is None:
            test_fraction = 0.5 if spec.is_target else 1 / 3
        rng = self._rngs.fresh("data", name)

        anchor = self._domain_anchor[spec.domain]
        # Class prototypes: anchor + class offsets whose magnitude sets the
        # intrinsic difficulty of the task.
        offsets = rng.normal(0.0, spec.class_separation,
                             size=(spec.num_classes, self.semantic_dim))
        prototypes = anchor[None, :] + offsets

        decode = self._w_shared + self._w_domain[spec.domain]
        # Readout: mostly shared within (domain, input_dim) — transferable —
        # plus a small dataset-specific perturbation.
        readout = self._readout_basis(spec.domain, spec.input_dim) \
            + 0.25 * rng.normal(size=(self._decoder_dim, spec.input_dim)) \
            / np.sqrt(self._decoder_dim)

        y = rng.integers(0, spec.num_classes, size=spec.num_samples)
        # Nonlinear decode (tanh) so class structure is not linearly
        # separable in pixel space; noise is injected both in the latent
        # code ("viewpoint/style" variation) and per-feature.
        latent = prototypes[y] + 0.25 * rng.normal(size=(spec.num_samples,
                                                         self.semantic_dim))
        clean = np.tanh(latent @ decode) @ readout
        clean = (clean - clean.mean(axis=0)) / (clean.std(axis=0) + 1e-9)
        x = clean + spec.noise_scale * rng.normal(size=clean.shape)
        # Standardise per-dataset (as image/text pipelines normalise inputs).
        x = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)

        # Label noise: a fixed fraction of samples carry a wrong label,
        # capping attainable accuracy below 1 (as in real benchmarks).
        if spec.label_noise > 0:
            flip = rng.random(spec.num_samples) < spec.label_noise
            y = y.copy()
            y[flip] = rng.integers(0, spec.num_classes, size=int(flip.sum()))

        n_test = max(1, int(round(test_fraction * spec.num_samples)))
        order = rng.permutation(spec.num_samples)
        test_idx, train_idx = order[:n_test], order[n_test:]
        return Dataset(
            spec=spec,
            x_train=x[train_idx],
            y_train=y[train_idx],
            x_test=x[test_idx],
            y_test=y[test_idx],
            class_prototypes=prototypes,
        )

    def materialise_all(self, names: list[str] | None = None) -> dict[str, Dataset]:
        names = names if names is not None else self.dataset_names()
        return {name: self.materialise(name) for name in names}

    def domain_of(self, name: str) -> str:
        return self.spec_for(name).domain
