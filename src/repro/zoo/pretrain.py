"""Pre-training zoo models on their source datasets.

Each zoo model is genuinely trained (backbone + head) on its source
dataset with AdamW.  Heterogeneous ``pretrain_epochs`` budgets produce the
quality spread a real zoo exhibits — some checkpoints are under-trained,
some converged — which is exactly the variation the "model performance"
metadata feature (§IV-A2) is meant to capture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import AdamW, Tensor, cross_entropy
from repro.zoo.models import ZooModel
from repro.zoo.tasks import Dataset

__all__ = ["PretrainConfig", "pretrain_model", "apply_feature_collapse"]


@dataclass(frozen=True)
class PretrainConfig:
    """Hyperparameters of the pre-training stage."""

    learning_rate: float = 5e-3
    weight_decay: float = 1e-4
    batch_size: int = 64


def _iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                         rng: np.random.Generator):
    order = rng.permutation(len(x))
    for start in range(0, len(x), batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], y[idx]


def apply_feature_collapse(model: ZooModel, dataset: Dataset,
                           strength: float,
                           rng: np.random.Generator,
                           config: "PretrainConfig | None" = None) -> None:
    """Degrade a checkpoint's *transferability* without its source accuracy.

    Real zoos are full of pruned / distilled / over-compressed checkpoints
    whose model cards look healthy.  We reproduce that failure mode:

    1. every backbone layer's weight matrix is SVD-truncated to a fraction
       ``(1 - strength)`` of its full rank — capacity for *new* tasks is
       permanently reduced;
    2. the classifier head is then re-trained on the source dataset, so
       the source accuracy (the only quality signal metadata carries)
       largely recovers.

    Metadata-only strategies cannot see the damage; training history and
    forward-pass estimators can.
    """
    if strength <= 0.0:
        return
    config = config or PretrainConfig()

    # Project the embedding towards the span of the source class means
    # ("neural collapse").  At strength 1.0 the embedding carries exactly
    # the directions the source task needs and nothing else: source
    # accuracy is preserved by construction, transfer to tasks with other
    # discriminative directions is crippled.
    features = model.features(dataset.x_train)
    classes = np.unique(dataset.y_train)
    means = np.vstack([features[dataset.y_train == c].mean(axis=0)
                       for c in classes])
    q, _ = np.linalg.qr(means.T)               # (emb_dim, n_classes)
    q = q[:, : len(classes)]
    projector = q @ q.T
    blend = (1.0 - strength) * np.eye(projector.shape[0]) + strength * projector

    last = model.backbone.layers[-1]
    last.weight.data = last.weight.data @ blend
    if last.bias is not None:
        last.bias.data = last.bias.data @ blend

    # Brief head refresh on the collapsed features (the checkpoint author
    # would have re-validated the classifier before publishing).
    if model.head is not None:
        opt = AdamW(model.head.parameters(), lr=config.learning_rate,
                    weight_decay=config.weight_decay)
        collapsed = model.features(dataset.x_train)
        for _ in range(15):
            loss = cross_entropy(model.head(Tensor(collapsed)), dataset.y_train)
            opt.zero_grad()
            loss.backward()
            opt.step()


def pretrain_model(model: ZooModel, dataset: Dataset,
                   rng: np.random.Generator,
                   config: PretrainConfig | None = None) -> float:
    """Train ``model`` on ``dataset``; returns held-out accuracy.

    The model's head is (re)created for the dataset's class count; the
    number of epochs comes from the model spec (heterogeneous budgets).
    Hidden representation collapse (``spec.feature_collapse``) is applied
    *after* training and *before* the held-out evaluation, so the reported
    pre-train accuracy honestly reflects the shipped checkpoint.
    """
    config = config or PretrainConfig()
    model.head = model.new_head(dataset.num_classes, rng)
    model.head_classes = dataset.num_classes
    model.backbone.train()

    params = model.backbone.parameters() + model.head.parameters()
    opt = AdamW(params, lr=config.learning_rate, weight_decay=config.weight_decay)

    x_train = model.adapt(dataset.x_train)
    y_train = dataset.y_train
    for _ in range(model.spec.pretrain_epochs):
        for xb, yb in _iterate_minibatches(x_train, y_train, config.batch_size, rng):
            logits = model.head(model.backbone(Tensor(xb)))
            loss = cross_entropy(logits, yb)
            opt.zero_grad()
            loss.backward()
            opt.step()

    model.backbone.eval()
    apply_feature_collapse(model, dataset, model.spec.feature_collapse,
                           rng, config)
    accuracy = model.accuracy_on(dataset.x_test, dataset.y_test)
    model.pretrain_accuracy = accuracy
    return accuracy
