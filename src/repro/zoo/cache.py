"""Disk cache for built zoos.

Building a zoo means pre-training and fine-tuning dozens of models.  The
cache persists everything needed to restore a :class:`ModelZoo` without
retraining: the config, the model specs, every model's weights, and the
catalog (which holds the ground-truth fine-tuning history).  Datasets are
*not* stored — they are regenerated deterministically from the config.

Layout (one directory per config hash)::

    <cache_dir>/<key>/config.json      the exact ZooConfig used
    <cache_dir>/<key>/catalog.json     the ZooCatalog tables
    <cache_dir>/<key>/specs.json       the ModelSpec list
    <cache_dir>/<key>/weights.npz      flattened model state dicts
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.store import ZooCatalog
from repro.zoo.architectures import ModelSpec
from repro.zoo.finetune import FinetuneConfig
from repro.zoo.models import ZooModel
from repro.zoo.pretrain import PretrainConfig
from repro.zoo.tasks import TaskUniverse
from repro.zoo.zoo import ModelZoo, ZooConfig, build_zoo, _select_names

__all__ = ["zoo_cache_key", "save_zoo", "load_zoo", "get_or_build_zoo",
           "default_cache_dir", "build_default_zoo"]

_CACHE_VERSION = 12


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro_transfergraph"


def zoo_cache_key(config: ZooConfig) -> str:
    """Stable content hash of a config (includes the cache version)."""
    payload = json.dumps({"v": _CACHE_VERSION, **config.to_dict()}, sort_keys=True)
    return hashlib.blake2b(payload.encode(), digest_size=10).hexdigest()


def save_zoo(zoo: ModelZoo, cache_dir: Path | str | None = None) -> Path:
    """Persist a built zoo; returns its cache directory."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    out = root / zoo_cache_key(zoo.config)
    out.mkdir(parents=True, exist_ok=True)

    (out / "config.json").write_text(json.dumps(zoo.config.to_dict(), indent=1))
    zoo.catalog.save(out / "catalog.json")
    specs = [asdict(m.spec) for m in zoo.models.values()]
    (out / "specs.json").write_text(json.dumps(specs, indent=1))

    arrays: dict[str, np.ndarray] = {}
    for model_id, model in zoo.models.items():
        for name, value in model.state().items():
            arrays[f"{model_id}::{name}"] = value
    np.savez_compressed(out / "weights.npz", **arrays)
    return out


def _config_from_dict(payload: dict) -> ZooConfig:
    payload = dict(payload)
    payload["input_dims"] = tuple(payload["input_dims"])
    payload["sample_budget"] = tuple(payload["sample_budget"])
    payload["pretrain_epoch_choices"] = tuple(payload["pretrain_epoch_choices"])
    payload["finetune"] = FinetuneConfig(**payload["finetune"])
    payload["pretrain"] = PretrainConfig(**payload["pretrain"])
    return ZooConfig(**payload)


def load_zoo(config: ZooConfig, cache_dir: Path | str | None = None) -> ModelZoo | None:
    """Restore a zoo for ``config`` from cache, or None when absent."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    path = root / zoo_cache_key(config)
    required = ["config.json", "catalog.json", "specs.json", "weights.npz"]
    if not all((path / f).exists() for f in required):
        return None

    catalog = ZooCatalog.load(path / "catalog.json")
    specs = [ModelSpec(**s) for s in json.loads((path / "specs.json").read_text())]

    universe = TaskUniverse(
        config.modality, seed=config.seed, semantic_dim=config.semantic_dim,
        input_dims=config.input_dims, sample_budget=config.sample_budget,
        class_budget=config.class_budget,
    )
    targets, sources = _select_names(universe, config)
    datasets = universe.materialise_all(targets + sources)

    with np.load(path / "weights.npz") as arrays:
        grouped: dict[str, dict[str, np.ndarray]] = {}
        for key in arrays.files:
            model_id, name = key.split("::", 1)
            grouped.setdefault(model_id, {})[name] = arrays[key]

    models = []
    for spec in specs:
        model = ZooModel(spec)
        model.load_state(grouped[spec.model_id])
        row = catalog.models.get_or_none(spec.model_id)
        model.pretrain_accuracy = row["pretrain_accuracy"] if row else None
        models.append(model)

    return ModelZoo(config, universe, datasets, models, catalog)


def get_or_build_zoo(config: ZooConfig, cache_dir: Path | str | None = None,
                     progress: bool = False) -> ModelZoo:
    """Load a cached zoo or build (+cache) it."""
    zoo = load_zoo(config, cache_dir)
    if zoo is None:
        zoo = build_zoo(config, progress=progress)
        save_zoo(zoo, cache_dir)
    if config.include_lora and zoo.ensure_lora_history() > 0:
        save_zoo(zoo, cache_dir)
    return zoo


def build_default_zoo(modality: str = "image", seed: int = 0,
                      cache_dir: Path | str | None = None,
                      progress: bool = False) -> ModelZoo:
    """The zoo configuration used by the benchmark suite."""
    return get_or_build_zoo(ZooConfig.default(modality=modality, seed=seed),
                            cache_dir=cache_dir, progress=progress)
