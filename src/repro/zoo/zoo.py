"""The model zoo facade: datasets + models + the metadata catalog.

``build_zoo`` runs the full substrate pipeline the paper presumes:

1. materialise the datasets of the chosen modality (targets + sources);
2. sample a heterogeneous model roster and *genuinely pre-train* every
   model on its source dataset;
3. fine-tune every model on every target dataset to produce the
   ground-truth accuracy matrix T (the paper spent 1178 GPU-hours per
   dataset on this step; our scaled substrate needs seconds);
4. record everything in the :class:`~repro.store.ZooCatalog`.

The resulting :class:`ModelZoo` is the single object all later stages
(transferability scoring, probe embeddings, graph construction, the
TransferGraph framework, baselines, benchmarks) consume.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, asdict

import numpy as np

from repro.store import ZooCatalog
from repro.utils import RngRegistry
from repro.zoo.architectures import sample_model_specs
from repro.zoo.finetune import (
    FinetuneConfig,
    full_finetune,
    lora_finetune,
)
from repro.zoo.models import ZooModel
from repro.zoo.pretrain import PretrainConfig, pretrain_model
from repro.zoo.tasks import Dataset, TaskUniverse

__all__ = ["ZooConfig", "ModelZoo", "build_zoo"]


@dataclass(frozen=True)
class ZooConfig:
    """Everything needed to (re)build a zoo deterministically."""

    modality: str = "image"
    seed: int = 0
    num_models: int = 48
    num_targets: int | None = None      # None -> all targets of the modality
    num_sources: int | None = None      # None -> all sources of the modality
    include_lora: bool = False
    semantic_dim: int = 12
    input_dims: tuple[int, ...] = (24, 32, 48)
    sample_budget: tuple[int, int] = (240, 720)
    class_budget: int = 12
    # A single pre-train budget: quality differences between checkpoints
    # should come from *hidden* factors (init luck, feature collapse), not
    # from a metadata-visible budget column.
    pretrain_epoch_choices: tuple[int, ...] = (20,)
    #: average the ground-truth accuracy over this many independent
    #: fine-tuning runs (reduces run-to-run noise at small scale; the
    #: paper fine-tunes once but on far larger datasets).
    finetune_runs: int = 2
    finetune: FinetuneConfig = field(default_factory=FinetuneConfig)
    pretrain: PretrainConfig = field(default_factory=PretrainConfig)

    @classmethod
    def tiny(cls, modality: str = "image", seed: int = 0, **overrides) -> "ZooConfig":
        """A minutes-scale zoo for unit/integration tests."""
        defaults = dict(
            modality=modality, seed=seed, num_models=6, num_targets=3,
            num_sources=3, sample_budget=(90, 140), class_budget=5,
            pretrain_epoch_choices=(4, 10),
            finetune=FinetuneConfig(epochs=5, lora_epochs=3),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def small(cls, modality: str = "image", seed: int = 0, **overrides) -> "ZooConfig":
        """A mid-size zoo: all target datasets, a modest model roster."""
        defaults = dict(
            modality=modality, seed=seed, num_models=15, num_sources=6,
            sample_budget=(120, 280), class_budget=8,
            finetune=FinetuneConfig(epochs=8),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def default(cls, modality: str = "image", seed: int = 0, **overrides) -> "ZooConfig":
        """The benchmark configuration (all datasets, 24 models)."""
        defaults = dict(modality=modality, seed=seed)
        defaults.update(overrides)
        return cls(**defaults)

    def to_dict(self) -> dict:
        out = asdict(self)
        out["input_dims"] = list(self.input_dims)
        out["sample_budget"] = list(self.sample_budget)
        out["pretrain_epoch_choices"] = list(self.pretrain_epoch_choices)
        return out


class ModelZoo:
    """A built zoo: datasets, pre-trained models, and the catalog."""

    def __init__(self, config: ZooConfig, universe: TaskUniverse,
                 datasets: dict[str, Dataset], models: list[ZooModel],
                 catalog: ZooCatalog):
        self.config = config
        self.universe = universe
        self.datasets = datasets
        self.models = {m.model_id: m for m in models}
        self.catalog = catalog
        self._feature_cache: dict[tuple[str, str, str], np.ndarray] = {}
        #: guards the feature cache only; never held during a forward pass
        self._feature_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def modality(self) -> str:
        return self.config.modality

    def model_ids(self) -> list[str]:
        return sorted(self.models)

    def dataset_names(self) -> list[str]:
        return sorted(self.datasets)

    def target_names(self) -> list[str]:
        return sorted(n for n, d in self.datasets.items() if d.spec.is_target)

    def source_names(self) -> list[str]:
        return sorted(n for n, d in self.datasets.items() if not d.spec.is_target)

    def model(self, model_id: str) -> ZooModel:
        try:
            return self.models[model_id]
        except KeyError:
            raise KeyError(f"no model {model_id!r} in the zoo") from None

    def dataset(self, name: str) -> Dataset:
        try:
            return self.datasets[name]
        except KeyError:
            raise KeyError(f"no dataset {name!r} in the zoo") from None

    # ------------------------------------------------------------------ #
    def features(self, model_id: str, dataset_name: str,
                 split: str = "train") -> np.ndarray:
        """Cached forward-pass features of a model on a dataset split.

        Thread-safe for the router's parallel fit workers: the forward
        pass runs outside the lock (two threads racing on one key
        recompute identical deterministic features at worst).
        """
        key = (model_id, dataset_name, split)
        with self._feature_lock:
            cached = self._feature_cache.get(key)
        if cached is None:
            cached = self.model(model_id).features_for(
                self.dataset(dataset_name), split=split)
            with self._feature_lock:
                self._feature_cache[key] = cached
        return cached

    def ground_truth(self, dataset_name: str,
                     method: str = "finetune") -> tuple[list[str], np.ndarray]:
        """(model_ids, accuracy vector) for one target dataset."""
        ids = self.model_ids()
        accs = []
        for model_id in ids:
            acc = self.catalog.get_accuracy(model_id, dataset_name, method=method)
            if acc is None:
                raise KeyError(
                    f"no {method} history for ({model_id}, {dataset_name})")
            accs.append(acc)
        return ids, np.asarray(accs)

    def accuracy_matrix(self, method: str = "finetune") -> np.ndarray:
        """(models × targets) ground-truth matrix in sorted-id order."""
        return self.catalog.accuracy_matrix(
            self.model_ids(), self.target_names(), method=method)

    # ------------------------------------------------------------------ #
    def ensure_lora_history(self) -> int:
        """Compute any missing LoRA fine-tuning results; returns #added."""
        rngs = RngRegistry(self.config.seed).child(self.modality, "lora")
        added = 0
        for model_id in self.model_ids():
            for target in self.target_names():
                if self.catalog.get_accuracy(model_id, target, method="lora") is not None:
                    continue
                rng = rngs.fresh("run", model_id, target)
                result = lora_finetune(self.model(model_id), self.dataset(target),
                                       rng, self.config.finetune)
                self.catalog.record_history(model_id, target, result.accuracy,
                                            method="lora", epochs=result.epochs)
                added += 1
        return added


def _select_names(universe: TaskUniverse, config: ZooConfig) -> tuple[list[str], list[str]]:
    targets = universe.target_names()
    sources = universe.source_names()
    if config.num_targets is not None:
        targets = targets[: config.num_targets]
    if config.num_sources is not None:
        sources = sources[: config.num_sources]
    return targets, sources


def build_zoo(config: ZooConfig, progress: bool = False) -> ModelZoo:
    """Build a zoo from scratch (deterministic in ``config``)."""
    rngs = RngRegistry(config.seed).child(config.modality, "zoo")
    universe = TaskUniverse(
        config.modality, seed=config.seed, semantic_dim=config.semantic_dim,
        input_dims=config.input_dims, sample_budget=config.sample_budget,
        class_budget=config.class_budget,
    )
    targets, sources = _select_names(universe, config)
    datasets = universe.materialise_all(targets + sources)

    specs = sample_model_specs(
        config.modality, config.num_models, sources, rngs.get("specs"),
        input_dims=config.input_dims,
        pretrain_epoch_choices=config.pretrain_epoch_choices,
        source_input_dims={name: datasets[name].input_dim for name in sources},
    )

    catalog = ZooCatalog()
    for name, dataset in datasets.items():
        catalog.add_dataset(
            dataset_id=name, modality=config.modality,
            num_samples=dataset.spec.num_samples,
            num_classes=dataset.spec.num_classes,
            input_dim=dataset.spec.input_dim,
            is_target=dataset.spec.is_target,
        )

    models = []
    for spec in specs:
        model = ZooModel(spec)
        accuracy = pretrain_model(model, datasets[spec.pretrain_dataset],
                                  rngs.fresh("pretrain", spec.model_id),
                                  config.pretrain)
        catalog.add_model(
            model_id=spec.model_id, architecture=spec.architecture,
            family=spec.family, modality=spec.modality,
            pretrain_dataset=spec.pretrain_dataset,
            pretrain_accuracy=accuracy, num_params=spec.num_params(),
            memory_mb=spec.memory_mb(), input_shape=spec.input_shape,
            embedding_dim=spec.embedding_dim, depth=spec.depth,
        )
        catalog.record_history(spec.model_id, spec.pretrain_dataset, accuracy,
                               method="pretrain", epochs=spec.pretrain_epochs)
        models.append(model)
        if progress:  # pragma: no cover - console feedback only
            print(f"pretrained {spec.model_id} on {spec.pretrain_dataset}: "
                  f"{accuracy:.3f}")

    for model in models:
        for target in targets:
            accuracies = []
            for run in range(max(1, config.finetune_runs)):
                rng = rngs.fresh("finetune", model.model_id, target, str(run))
                result = full_finetune(model, datasets[target], rng,
                                       config.finetune)
                accuracies.append(result.accuracy)
            accuracy = float(np.mean(accuracies))
            catalog.record_history(model.model_id, target, accuracy,
                                   method="finetune",
                                   epochs=config.finetune.epochs)
            if progress:  # pragma: no cover
                print(f"finetuned {model.model_id} on {target}: {accuracy:.3f}")

    zoo = ModelZoo(config, universe, datasets, models, catalog)
    if config.include_lora:
        zoo.ensure_lora_history()
    return zoo
