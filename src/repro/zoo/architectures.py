"""Heterogeneous model architectures for the simulated zoo.

The paper's zoo contains 185 image models (ViT, Swin, ConvNeXT, ResNet, …)
and 163 text models (BERT, FNet, ELECTRA, …) "with different architectures
... and pre-trained on diverse datasets" (§VII-A).  What matters for model
selection is that families differ in *inductive bias* and models differ in
*capacity*.  We reproduce that with MLP feature extractors whose family
determines activation function, normalisation and depth/width ranges; the
paper's family names are kept as labels so that the metadata features
("architecture" one-hots, §IV-A2) have the same role as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import (
    GELU,
    LayerNorm,
    LeakyReLU,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tanh,
)

__all__ = ["FamilyConfig", "ModelSpec", "IMAGE_FAMILIES", "TEXT_FAMILIES",
           "family_config", "build_feature_extractor", "sample_model_specs"]


@dataclass(frozen=True)
class FamilyConfig:
    """Architecture family: the knobs that encode its inductive bias."""

    name: str
    modality: str
    activation: str            # relu | gelu | tanh | leaky_relu
    use_layernorm: bool
    depth_choices: tuple[int, ...]
    width_choices: tuple[int, ...]
    embedding_choices: tuple[int, ...]
    size_labels: tuple[str, ...] = ("tiny", "small", "base")


# Families share the same capacity ranges on purpose: their differences
# are *inductive biases* (activation, receptive mask), not raw size —
# making the optimal architecture task-dependent rather than global
# ("the optimal architecture ... is usually task-dependent", §II-B1).
IMAGE_FAMILIES: dict[str, FamilyConfig] = {
    "resnet": FamilyConfig("resnet", "image", "relu", True, (2, 3), (32, 64), (24,)),
    "vit": FamilyConfig("vit", "image", "gelu", True, (2, 3), (32, 64), (24,)),
    "swin": FamilyConfig("swin", "image", "gelu", True, (2, 3), (32, 64), (24,)),
    "convnext": FamilyConfig("convnext", "image", "leaky_relu", True, (2, 3), (32, 64), (24,)),
    "mobilenet": FamilyConfig("mobilenet", "image", "relu", True, (2, 3), (32, 64), (24,)),
}

TEXT_FAMILIES: dict[str, FamilyConfig] = {
    "bert": FamilyConfig("bert", "text", "gelu", True, (2, 3), (32, 64), (24,)),
    "roberta": FamilyConfig("roberta", "text", "gelu", True, (2, 3), (32, 64), (24,)),
    "electra": FamilyConfig("electra", "text", "relu", True, (2, 3), (32, 64), (24,)),
    "fnet": FamilyConfig("fnet", "text", "tanh", True, (2, 3), (32, 64), (24,)),
    "gpt_neo": FamilyConfig("gpt_neo", "text", "leaky_relu", True, (2, 3), (32, 64), (24,)),
}

_ACTIVATIONS = {
    "relu": ReLU,
    "gelu": GELU,
    "tanh": Tanh,
    "leaky_relu": LeakyReLU,
}


def family_config(family: str, modality: str) -> FamilyConfig:
    table = IMAGE_FAMILIES if modality == "image" else TEXT_FAMILIES
    try:
        return table[family]
    except KeyError:
        raise KeyError(f"unknown {modality} family {family!r}") from None


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one zoo model (its metadata, §IV-A2)."""

    model_id: str
    family: str
    architecture: str        # e.g. "vit-small"
    modality: str
    pretrain_dataset: str
    input_shape: int         # expected input dimensionality
    embedding_dim: int
    depth: int
    width: int
    activation: str
    use_layernorm: bool
    pretrain_epochs: int     # heterogeneous training budgets
    init_seed: int
    #: hidden representation-collapse strength in [0, 1].  Mimics
    #: checkpoints whose features collapsed towards the source classes
    #: (neural collapse): source accuracy is preserved, but transfer to
    #: new tasks degrades.  Deliberately NOT exported to the catalog —
    #: metadata-only strategies cannot see it, history-based ones can.
    feature_collapse: float = 0.0

    def num_params(self) -> int:
        """Parameter count of the backbone (weights + biases [+ LN])."""
        dims = [self.input_shape] + [self.width] * self.depth + [self.embedding_dim]
        count = sum(d_in * d_out + d_out for d_in, d_out in zip(dims[:-1], dims[1:]))
        if self.use_layernorm:
            count += sum(2 * d for d in dims[1:-1])
        return count

    def memory_mb(self) -> float:
        """Float64 parameter memory in MB (a model-complexity indicator)."""
        return self.num_params() * 8 / 1e6


def build_feature_extractor(spec: ModelSpec) -> Sequential:
    """Instantiate the backbone network described by ``spec``."""
    rng = np.random.default_rng(spec.init_seed)
    act = _ACTIVATIONS[spec.activation]
    init_scheme = "kaiming" if spec.activation in ("relu", "leaky_relu") else "xavier"
    layers: list[Module] = []
    dims = [spec.input_shape] + [spec.width] * spec.depth
    for d_in, d_out in zip(dims[:-1], dims[1:]):
        layers.append(Linear(d_in, d_out, rng=rng, init_scheme=init_scheme))
        if spec.use_layernorm:
            layers.append(LayerNorm(d_out))
        layers.append(act())
    layers.append(Linear(dims[-1], spec.embedding_dim, rng=rng,
                         init_scheme=init_scheme))
    return Sequential(*layers)


def sample_model_specs(modality: str, num_models: int, source_datasets: list[str],
                       rng: np.random.Generator,
                       input_dims: tuple[int, ...] = (24, 32, 48),
                       pretrain_epoch_choices: tuple[int, ...] = (8, 20, 40),
                       source_input_dims: dict[str, int] | None = None,
                       ) -> list[ModelSpec]:
    """Sample a heterogeneous roster of model specs.

    Families are cycled so every family is represented; the remaining
    attributes (size, source dataset, training budget) are drawn
    independently, mirroring the diversity of a public model zoo.

    ``source_input_dims`` maps source dataset → its input dimensionality;
    when given, each model's ``input_shape`` equals its source dataset's
    dimension (models are built *for* their pre-training data).  Input
    shape then matters through model×dataset compatibility rather than as
    a free capacity axis.
    """
    if num_models <= 0:
        raise ValueError("num_models must be positive")
    if not source_datasets:
        raise ValueError("need at least one source dataset to pre-train on")
    families = sorted((IMAGE_FAMILIES if modality == "image" else TEXT_FAMILIES))
    specs = []
    for i in range(num_models):
        family = families[i % len(families)]
        config = family_config(family, modality)
        depth = int(rng.choice(config.depth_choices))
        width = int(rng.choice(config.width_choices))
        embedding_dim = int(rng.choice(config.embedding_choices))
        size_label = config.size_labels[
            min(len(config.size_labels) - 1,
                int(np.searchsorted(np.quantile(config.width_choices, [0.5]), width)))
        ]
        pretrain_dataset = str(rng.choice(source_datasets))
        # Half the zoo is healthy; the rest ships with mild-to-severe
        # hidden damage (see ModelSpec.feature_collapse).  The spread is
        # wide on purpose: per-checkpoint quality must dominate per-
        # architecture-group quality, as it does in public zoos.
        collapse = float(rng.choice((0.0, 0.0, 0.65, 1.0)))
        if source_input_dims is not None:
            input_shape = int(source_input_dims[pretrain_dataset])
        else:
            input_shape = int(rng.choice(input_dims))
        spec = ModelSpec(
            model_id=f"{family}-{size_label}-{i:03d}",
            family=family,
            architecture=f"{family}-{size_label}",
            modality=modality,
            pretrain_dataset=pretrain_dataset,
            input_shape=input_shape,
            embedding_dim=embedding_dim,
            depth=depth,
            width=width,
            activation=config.activation,
            use_layernorm=config.use_layernorm,
            pretrain_epochs=int(rng.choice(pretrain_epoch_choices)),
            init_seed=int(rng.integers(0, 2**31 - 1)),
            feature_collapse=collapse,
        )
        specs.append(spec)
    return specs
