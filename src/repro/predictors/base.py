"""Common regressor interface for the Stage-3 prediction models."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_2d, check_finite, check_same_length

__all__ = ["Regressor", "validate_xy"]


def validate_xy(x, y) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    check_2d(x, "X")
    check_1d(y, "y")
    check_same_length(x, y, "X", "y")
    check_finite(x, "X")
    check_finite(y, "y")
    if x.shape[0] == 0:
        raise ValueError("cannot fit on an empty training set")
    return x, y


class Regressor:
    """fit/predict interface; all models are usable interchangeably."""

    name: str = "base"

    def fit(self, x, y) -> "Regressor":
        raise NotImplementedError  # pragma: no cover

    def predict(self, x) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover

    def get_state(self) -> dict:
        """Snapshot of the fitted model: hyperparameters + learned state.

        The returned dict holds only JSON-able scalars, ``None``, nested
        dicts/lists, and ``np.ndarray`` leaves, so the serving artifact
        layer can split it into JSON metadata and ``.npz`` arrays.
        ``set_state(get_state())`` on a fresh instance must reproduce
        ``predict`` bit-for-bit.
        """
        raise NotImplementedError  # pragma: no cover

    def set_state(self, state: dict) -> "Regressor":
        """Restore from :meth:`get_state`; returns ``self``."""
        raise NotImplementedError  # pragma: no cover

    def fit_predict(self, x, y, x_new) -> np.ndarray:
        return self.fit(x, y).predict(x_new)

    def _check_predict_input(self, x, n_features: int) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        check_2d(x, "X")
        if x.shape[1] != n_features:
            raise ValueError(
                f"X has {x.shape[1]} features, model was fit with {n_features}")
        return x
