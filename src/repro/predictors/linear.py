"""Linear regression (the paper's LR prediction model, §VI-C).

Solved in closed form with a small ridge term for numerical stability —
the one-hot metadata columns are frequently collinear, so pure OLS would
be ill-conditioned.
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import Regressor, validate_xy

__all__ = ["LinearRegression"]


class LinearRegression(Regressor):
    """Ridge-stabilised least squares with intercept."""

    name = "linear"

    def __init__(self, alpha: float = 1.0, standardize: bool = True):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.standardize = standardize
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, x, y) -> "LinearRegression":
        x, y = validate_xy(x, y)
        if self.standardize:
            self._mean = x.mean(axis=0)
            scale = x.std(axis=0)
            scale[scale == 0.0] = 1.0
            self._scale = scale
            x = (x - self._mean) / self._scale
        n, d = x.shape
        x_aug = np.hstack([x, np.ones((n, 1))])
        gram = x_aug.T @ x_aug
        # Do not penalise the intercept.
        penalty = self.alpha * np.eye(d + 1)
        penalty[d, d] = 0.0
        theta = np.linalg.solve(gram + penalty, x_aug.T @ y)
        self.coef_ = theta[:d]
        self.intercept_ = float(theta[d])
        return self

    def predict(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict() called before fit()")
        x = self._check_predict_input(x, self.coef_.shape[0])
        if self.standardize:
            x = (x - self._mean) / self._scale
        return x @ self.coef_ + self.intercept_

    # ------------------------------------------------------------------ #
    def get_state(self) -> dict:
        if self.coef_ is None:
            raise RuntimeError("get_state() called before fit()")
        return {
            "alpha": self.alpha,
            "standardize": self.standardize,
            "coef": self.coef_,
            "intercept": self.intercept_,
            "mean": self._mean,
            "scale": self._scale,
        }

    def set_state(self, state: dict) -> "LinearRegression":
        self.alpha = float(state["alpha"])
        self.standardize = bool(state["standardize"])
        self.coef_ = np.asarray(state["coef"], dtype=np.float64)
        self.intercept_ = float(state["intercept"])
        self._mean = None if state["mean"] is None \
            else np.asarray(state["mean"], dtype=np.float64)
        self._scale = None if state["scale"] is None \
            else np.asarray(state["scale"], dtype=np.float64)
        return self
