"""Gradient-boosted regression trees — the paper's "XGBoost" model.

§VI-C: "XGBoost is an ensemble of decision trees and minimizes the
objective function with gradient descent.  We set the number of trees as
500, and maximum depth as 5."

For squared loss, each boosting round fits a CART tree to the current
residuals and adds a shrunken copy to the ensemble.  Optional row
subsampling gives the stochastic variant; early rounds dominate thanks to
the learning rate, so 500 shallow trees remain well-behaved on small
training sets.
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import Regressor, validate_xy
from repro.predictors.tree import DecisionTreeRegressor
from repro.utils.rng import derive_seed

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(Regressor):
    """Squared-loss gradient boosting with shrinkage and subsampling."""

    name = "xgboost"

    def __init__(self, n_estimators: int = 500, max_depth: int = 5,
                 learning_rate: float = 0.05, subsample: float = 0.8,
                 min_samples_leaf: int = 2, seed: int = 0,
                 colsample: int | str | None = "sqrt"):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not (0.0 < learning_rate <= 1.0):
            raise ValueError("learning_rate must be in (0, 1]")
        if not (0.0 < subsample <= 1.0):
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        # per-node feature subsampling (XGBoost's colsample_bylevel);
        # "sqrt" keeps wide embedding blocks tractable.
        self.colsample = colsample
        self.base_prediction_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []
        self._n_features = 0

    def fit(self, x, y) -> "GradientBoostingRegressor":
        x, y = validate_xy(x, y)
        self._n_features = x.shape[1]
        n = x.shape[0]
        self.base_prediction_ = float(y.mean())
        current = np.full(n, self.base_prediction_)
        self.trees_ = []

        for i in range(self.n_estimators):
            residuals = y - current
            rng = np.random.default_rng(derive_seed(self.seed, "boost", str(i)))
            if self.subsample < 1.0:
                size = max(self.min_samples_leaf * 2,
                           int(round(self.subsample * n)))
                idx = rng.choice(n, size=min(size, n), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.colsample,
                rng=rng,
            )
            tree.fit(x[idx], residuals[idx])
            current += self.learning_rate * tree.predict(x)
            self.trees_.append(tree)
        return self

    def predict(self, x) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("predict() called before fit()")
        x = self._check_predict_input(x, self._n_features)
        out = np.full(x.shape[0], self.base_prediction_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(x)
        return out

    # ------------------------------------------------------------------ #
    def get_state(self) -> dict:
        if not self.trees_:
            raise RuntimeError("get_state() called before fit()")
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "learning_rate": self.learning_rate,
            "subsample": self.subsample,
            "min_samples_leaf": self.min_samples_leaf,
            "seed": self.seed,
            "colsample": self.colsample,
            "base_prediction": self.base_prediction_,
            "n_features": self._n_features,
            "trees": [tree.get_state() for tree in self.trees_],
        }

    def set_state(self, state: dict) -> "GradientBoostingRegressor":
        self.n_estimators = int(state["n_estimators"])
        self.max_depth = int(state["max_depth"])
        self.learning_rate = float(state["learning_rate"])
        self.subsample = float(state["subsample"])
        self.min_samples_leaf = int(state["min_samples_leaf"])
        self.seed = int(state["seed"])
        colsample = state["colsample"]
        self.colsample = int(colsample) \
            if isinstance(colsample, (int, np.integer)) else colsample
        self.base_prediction_ = float(state["base_prediction"])
        self._n_features = int(state["n_features"])
        self.trees_ = [DecisionTreeRegressor().set_state(ts)
                       for ts in state["trees"]]
        return self

    def staged_train_error(self, x, y) -> np.ndarray:
        """MSE on (x, y) after each boosting round (diagnostics/tests)."""
        x, y = validate_xy(x, y)
        out = np.empty(len(self.trees_))
        current = np.full(x.shape[0], self.base_prediction_)
        for i, tree in enumerate(self.trees_):
            current += self.learning_rate * tree.predict(x)
            out[i] = float(((y - current) ** 2).mean())
        return out
