"""CART regression trees — the building block of RF and gradient boosting.

Split search is vectorised per feature: sort once, then evaluate every
candidate threshold with prefix sums of y and y², choosing the split that
minimises the weighted sum of child variances (equivalently, maximises
variance reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictors.base import Regressor, validate_xy

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """Either a leaf (value set) or an internal node (feature/threshold)."""

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_for_feature(values: np.ndarray, y: np.ndarray,
                            min_leaf: int) -> tuple[float, float]:
    """(score, threshold) of the best split on one feature.

    Score = total squared-error reduction; -inf when no valid split.
    """
    order = np.argsort(values, kind="mergesort")
    v = values[order]
    ys = y[order]
    n = len(ys)

    csum = np.cumsum(ys)
    csq = np.cumsum(ys**2)
    total_sum, total_sq = csum[-1], csq[-1]

    # candidate split after position i (left = [0..i]), need both children
    # to satisfy min_leaf and the threshold to separate distinct values.
    idx = np.arange(min_leaf - 1, n - min_leaf)
    if idx.size == 0:
        return -np.inf, 0.0
    distinct = v[idx] < v[idx + 1]
    idx = idx[distinct]
    if idx.size == 0:
        return -np.inf, 0.0

    left_n = idx + 1.0
    right_n = n - left_n
    left_sum = csum[idx]
    right_sum = total_sum - left_sum
    left_sq = csq[idx]
    right_sq = total_sq - left_sq

    # SSE of a group = sum(y²) - (sum y)²/n ; minimise children total.
    sse = (left_sq - left_sum**2 / left_n) + (right_sq - right_sum**2 / right_n)
    parent_sse = total_sq - total_sum**2 / n
    gains = parent_sse - sse
    best = int(np.argmax(gains))
    threshold = 0.5 * (v[idx[best]] + v[idx[best] + 1])
    return float(gains[best]), threshold


class DecisionTreeRegressor(Regressor):
    """CART regressor with depth / leaf-size / feature-subsample controls."""

    name = "tree"

    def __init__(self, max_depth: int = 5, min_samples_split: int = 2,
                 min_samples_leaf: int = 1,
                 max_features: int | str | None = None,
                 rng: np.random.Generator | None = None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._root: _Node | None = None
        self._n_features = 0

    # ------------------------------------------------------------------ #
    def _features_to_consider(self, d: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(d)
        if self.max_features == "sqrt":
            k = max(1, int(np.sqrt(d)))
        elif isinstance(self.max_features, int):
            k = max(1, min(self.max_features, d))
        else:
            raise ValueError(f"bad max_features: {self.max_features!r}")
        return self._rng.choice(d, size=k, replace=False)

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or np.all(y == y[0])):
            return node

        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        for feature in self._features_to_consider(x.shape[1]):
            gain, threshold = _best_split_for_feature(
                x[:, feature], y, self.min_samples_leaf)
            if gain > best_gain + 1e-12:
                best_gain, best_feature, best_threshold = gain, int(feature), threshold

        if best_feature < 0:
            return node

        mask = x[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def fit(self, x, y) -> "DecisionTreeRegressor":
        x, y = validate_xy(x, y)
        self._n_features = x.shape[1]
        self._root = self._build(x, y, depth=0)
        return self

    # ------------------------------------------------------------------ #
    def predict(self, x) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("predict() called before fit()")
        x = self._check_predict_input(x, self._n_features)
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    # ------------------------------------------------------------------ #
    def get_state(self) -> dict:
        """Flatten the fitted tree into parallel preorder arrays.

        ``left``/``right`` hold child indices (-1 for leaves), so the
        structure round-trips exactly regardless of tree shape.
        """
        if self._root is None:
            raise RuntimeError("get_state() called before fit()")
        feature: list[int] = []
        threshold: list[float] = []
        value: list[float] = []
        left: list[int] = []
        right: list[int] = []

        def walk(node: _Node) -> int:
            i = len(feature)
            feature.append(node.feature)
            threshold.append(node.threshold)
            value.append(node.value)
            left.append(-1)
            right.append(-1)
            if not node.is_leaf:
                left[i] = walk(node.left)
                right[i] = walk(node.right)
            return i

        walk(self._root)
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "n_features": self._n_features,
            "nodes": {
                "feature": np.asarray(feature, dtype=np.int64),
                "threshold": np.asarray(threshold, dtype=np.float64),
                "value": np.asarray(value, dtype=np.float64),
                "left": np.asarray(left, dtype=np.int64),
                "right": np.asarray(right, dtype=np.int64),
            },
        }

    def set_state(self, state: dict) -> "DecisionTreeRegressor":
        self.max_depth = int(state["max_depth"])
        self.min_samples_split = int(state["min_samples_split"])
        self.min_samples_leaf = int(state["min_samples_leaf"])
        max_features = state["max_features"]
        self.max_features = int(max_features) \
            if isinstance(max_features, (int, np.integer)) else max_features
        nodes = state["nodes"]
        feature = np.asarray(nodes["feature"], dtype=np.int64)
        threshold = np.asarray(nodes["threshold"], dtype=np.float64)
        value = np.asarray(nodes["value"], dtype=np.float64)
        left = np.asarray(nodes["left"], dtype=np.int64)
        right = np.asarray(nodes["right"], dtype=np.int64)

        def build(i: int) -> _Node:
            node = _Node(value=float(value[i]), feature=int(feature[i]),
                         threshold=float(threshold[i]))
            if left[i] >= 0:
                node.left = build(int(left[i]))
                node.right = build(int(right[i]))
            return node

        self._root = build(0)
        self._n_features = int(state["n_features"])
        return self

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("tree not fitted")
        return walk(self._root)

    def num_leaves(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)
        if self._root is None:
            raise RuntimeError("tree not fitted")
        return walk(self._root)
