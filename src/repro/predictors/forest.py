"""Random forest regressor (§VI-C: "number of trees 100, max depth 5")."""

from __future__ import annotations

import numpy as np

from repro.predictors.base import Regressor, validate_xy
from repro.predictors.tree import DecisionTreeRegressor
from repro.utils.rng import derive_seed

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(Regressor):
    """Bootstrap-aggregated CART trees with feature subsampling."""

    name = "random_forest"

    def __init__(self, n_estimators: int = 100, max_depth: int = 5,
                 min_samples_leaf: int = 1, max_features: int | str = "sqrt",
                 seed: int = 0):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []
        self._n_features = 0

    def fit(self, x, y) -> "RandomForestRegressor":
        x, y = validate_xy(x, y)
        self._n_features = x.shape[1]
        n = x.shape[0]
        self.trees_ = []
        for i in range(self.n_estimators):
            rng = np.random.default_rng(derive_seed(self.seed, "tree", str(i)))
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, x) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("predict() called before fit()")
        x = self._check_predict_input(x, self._n_features)
        preds = np.zeros(x.shape[0])
        for tree in self.trees_:
            preds += tree.predict(x)
        return preds / len(self.trees_)

    # ------------------------------------------------------------------ #
    def get_state(self) -> dict:
        if not self.trees_:
            raise RuntimeError("get_state() called before fit()")
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "seed": self.seed,
            "n_features": self._n_features,
            "trees": [tree.get_state() for tree in self.trees_],
        }

    def set_state(self, state: dict) -> "RandomForestRegressor":
        self.n_estimators = int(state["n_estimators"])
        self.max_depth = int(state["max_depth"])
        self.min_samples_leaf = int(state["min_samples_leaf"])
        max_features = state["max_features"]
        self.max_features = int(max_features) \
            if isinstance(max_features, (int, np.integer)) else max_features
        self.seed = int(state["seed"])
        self._n_features = int(state["n_features"])
        self.trees_ = [DecisionTreeRegressor().set_state(ts)
                       for ts in state["trees"]]
        return self
