"""Stage-3 prediction models (§VI-C): LR, RF, and XGBoost-style boosting.

All three follow the same ``fit``/``predict`` interface and the paper's
stated hyperparameters (RF: 100 trees depth 5; XGB: 500 trees depth 5).
"""

from repro.predictors.base import Regressor, validate_xy
from repro.predictors.linear import LinearRegression
from repro.predictors.tree import DecisionTreeRegressor
from repro.predictors.forest import RandomForestRegressor
from repro.predictors.boosting import GradientBoostingRegressor

PREDICTORS: dict[str, type[Regressor]] = {
    "lr": LinearRegression,
    "rf": RandomForestRegressor,
    "xgb": GradientBoostingRegressor,
    "tree": DecisionTreeRegressor,
}


def get_predictor(name: str, **kwargs) -> Regressor:
    """Instantiate a prediction model by its paper alias (lr/rf/xgb/tree)."""
    try:
        return PREDICTORS[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {sorted(PREDICTORS)}"
        ) from None


__all__ = [
    "Regressor",
    "validate_xy",
    "LinearRegression",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "PREDICTORS",
    "get_predictor",
]
