"""Request tracing: contextvar-scoped span trees with zero ambient cost.

A *trace* is one request's record — a ``request_id``, labels (endpoint,
namespace, strategy), a cache outcome, and a tree of timed *spans*
covering the stages the request actually executed (graph build, walk
generation, SGNS, predictor training, artifact pack, predict, ...).

The design constraint is that instrumentation points live in hot code
(:meth:`SelectionService.cache_get`, :meth:`TransferGraph.fit`, the
router's executors) and must cost ~nothing when nobody is observing.
Everything therefore keys off one :class:`contextvars.ContextVar`:

- :func:`span` returns a context manager that is a no-op unless a trace
  is active (one ``ContextVar.get`` on the fast path);
- :func:`set_outcome` / :func:`record_cache` likewise vanish without an
  active trace;
- the serving layers never hold an observability handle on their hot
  paths — the request context (opened by the gateway or a replay
  harness) *is* the handle.

Worker threads don't inherit contextvars from the event loop, so the
router copies its context before submitting to an executor
(:func:`run_in_context`); spans recorded inside a fit job then attach to
the originating request's trace.  Trace mutation is lock-guarded — the
fit pool, predict pool, and event loop may all append concurrently.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid

__all__ = [
    "Span",
    "Trace",
    "span",
    "current_trace",
    "set_outcome",
    "annotate",
    "record_cache",
    "run_in_context",
    "graft_spans",
    "new_request_id",
    "OUTCOME_SEVERITY",
]

#: cache-outcome severity; a trace keeps the most severe outcome any
#: layer reported (a score_batch mixing warm and cold targets is "cold",
#: a coalesced wait that was shed is "shed")
OUTCOME_SEVERITY = {
    "ok": 0,
    "warm": 1,
    "coalesced": 2,
    "cold": 3,
    "error": 4,
    "shed": 5,
}

_current_trace: contextvars.ContextVar["Trace | None"] = \
    contextvars.ContextVar("repro_obs_trace", default=None)
_current_span: contextvars.ContextVar["Span | None"] = \
    contextvars.ContextVar("repro_obs_span", default=None)


def new_request_id() -> str:
    """A fresh opaque request id (128-bit random, 16 hex chars shown)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed stage; nests under a parent span of the same trace."""

    __slots__ = ("name", "started", "duration_ms", "children")

    def __init__(self, name: str):
        self.name = name
        self.started = time.perf_counter()
        self.duration_ms: float | None = None
        self.children: list[Span] = []

    def finish(self) -> None:
        self.duration_ms = (time.perf_counter() - self.started) * 1e3

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "duration_ms": round(self.duration_ms or 0.0, 3),
        }
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Trace:
    """One request's identity, labels, outcome, and span tree."""

    def __init__(
        self,
        request_id: str,
        endpoint: str,
        *,
        namespace: str = "-",
        strategy: str = "-",
        obs=None,
    ):
        self.request_id = request_id
        self.endpoint = endpoint
        self.namespace = namespace
        self.strategy = strategy
        #: the Observability plane collecting this trace (or None)
        self.obs = obs
        self.outcome = "ok"
        self.metadata: dict[str, object] = {}
        self.started_at = time.time()
        self.root = Span(endpoint)
        self._lock = threading.Lock()

    # -- mutation (any thread) ----------------------------------------- #
    def add_child(self, parent: Span, child: Span) -> None:
        with self._lock:
            parent.children.append(child)

    def raise_outcome(self, outcome: str) -> None:
        with self._lock:
            if OUTCOME_SEVERITY.get(outcome, 0) > OUTCOME_SEVERITY.get(self.outcome, 0):
                self.outcome = outcome

    def annotate(self, **fields) -> None:
        with self._lock:
            self.metadata.update(fields)

    def finish(self) -> None:
        self.root.finish()

    # -- views ---------------------------------------------------------- #
    @property
    def duration_ms(self) -> float:
        if self.root.duration_ms is not None:
            return self.root.duration_ms
        return (time.perf_counter() - self.root.started) * 1e3

    def stage_totals(self) -> dict[str, float]:
        """Top-level span name -> summed milliseconds.

        Depth-1 spans are the request's sequential stages (fit stages,
        registry I/O, predict), so for a single-target request their sum
        approximates the request total; nested detail (walks vs SGNS
        inside an embed) stays in the full tree.
        """
        with self._lock:
            totals: dict[str, float] = {}
            for child in self.root.children:
                totals[child.name] = totals.get(child.name, 0.0) + (
                    child.duration_ms or 0.0
                )
        return {name: round(ms, 3) for name, ms in totals.items()}

    def span_tree(self) -> list[dict]:
        with self._lock:
            return [child.to_dict() for child in self.root.children]

    def to_dict(self) -> dict:
        """The full trace record (what ``--trace-out`` writes per line)."""
        out = {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "namespace": self.namespace,
            "strategy": self.strategy,
            "outcome": self.outcome,
            "started_at": round(self.started_at, 6),
            "duration_ms": round(self.duration_ms, 3),
            "stages": self.stage_totals(),
            "spans": self.span_tree(),
        }
        if self.metadata:
            out["metadata"] = dict(self.metadata)
        return out


class _ActiveSpan:
    """Context manager recording one span on the active trace."""

    __slots__ = ("name", "_span", "_token")

    def __init__(self, name: str):
        self.name = name
        self._span = None
        self._token = None

    def __enter__(self) -> "Span | None":
        trace = _current_trace.get()
        if trace is None:
            return None
        parent = _current_span.get() or trace.root
        self._span = Span(self.name)
        trace.add_child(parent, self._span)
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is None:
            return
        self._span.finish()
        _current_span.reset(self._token)
        trace = _current_trace.get()
        if trace is not None and trace.obs is not None:
            trace.obs.observe_stage(trace, self.name, self._span.duration_ms)


def span(name: str) -> _ActiveSpan:
    """Time one stage of the active request; no-op without a trace.

    ::

        with span("fit.walks"):
            walks = generate_walks(...)
    """
    return _ActiveSpan(name)


def current_trace() -> Trace | None:
    return _current_trace.get()


def activate(trace: Trace):
    """Bind ``trace`` as the context's active trace; returns the tokens
    (pass them to :func:`deactivate`)."""
    return (_current_trace.set(trace), _current_span.set(trace.root))


def deactivate(tokens) -> None:
    trace_token, span_token = tokens
    _current_span.reset(span_token)
    _current_trace.reset(trace_token)


def set_outcome(outcome: str) -> None:
    """Report a cache outcome for the active request (severity-merged)."""
    trace = _current_trace.get()
    if trace is not None:
        trace.raise_outcome(outcome)


def annotate(**fields) -> None:
    """Attach metadata to the active request's trace; no-op without one."""
    trace = _current_trace.get()
    if trace is not None:
        trace.annotate(**fields)


def record_cache(hit: bool) -> None:
    """Count one warm-cache lookup against the active request's plane."""
    trace = _current_trace.get()
    if trace is not None:
        if hit:
            trace.raise_outcome("warm")
        if trace.obs is not None:
            trace.obs.record_cache(trace, hit)


def graft_spans(records: list[dict]) -> None:
    """Attach span records from another process onto the active trace.

    The process fit plane runs ``strategy.fit`` in a worker whose spans
    cannot nest under the parent's contextvar trace; the worker ships
    them back as :meth:`Trace.span_tree` records inside the packed
    payload, and the parent grafts them under its current span so the
    request's trace stays complete.  Grafted durations are re-reported
    to the trace's observability plane (which keeps only ``fit.*``
    stages, exactly as live spans are).  No-op without an active trace.
    """
    trace = _current_trace.get()
    if trace is None or not records:
        return
    parent = _current_span.get() or trace.root

    def build(record: dict) -> Span:
        grafted = Span(record["name"])
        grafted.duration_ms = float(record.get("duration_ms", 0.0))
        grafted.children = [build(c) for c in record.get("children", [])]
        return grafted

    def report(grafted: Span) -> None:
        if trace.obs is not None:
            trace.obs.observe_stage(trace, grafted.name, grafted.duration_ms or 0.0)
        for child in grafted.children:
            report(child)

    for record in records:
        grafted = build(record)
        trace.add_child(parent, grafted)
        report(grafted)


def run_in_context(fn, /, *args):
    """Freeze the calling context into a zero-arg callable for executors.

    ``loop.run_in_executor`` does not propagate contextvars, so spans
    recorded on a worker thread would otherwise detach from the request
    that scheduled the work.  The copy is cheap (~100 ns) and taken even
    without an active trace — branching on trace presence would race
    re-binding.
    """
    ctx = contextvars.copy_context()
    return lambda: ctx.run(fn, *args)
