"""Dependency-free metrics: counters, gauges, histograms, exposition.

A tiny Prometheus-compatible metrics core — the serving stack must stay
numpy-only, so this implements exactly the subset the observability
plane needs:

- three instrument kinds (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) addressed through a :class:`MetricsRegistry`;
- every instrument is a *family* keyed by a fixed label-name tuple;
  ``family.labels(a, b)`` (or ``family.labels(ns="x", ...)``) returns
  the child series, created on first use;
- all mutation is thread-safe: one lock per family guards child
  creation, and each child guards its own values (fit workers, predict
  workers, and the event loop all record concurrently);
- :meth:`MetricsRegistry.render` emits the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / sorted series; histograms render
  cumulative ``_bucket{le=...}`` plus ``_sum``/``_count``), which is
  what ``GET /v1/metrics`` serves.

Gauges additionally accept a zero-arg callback
(:meth:`_Gauge.set_function`) evaluated at render time — how queue
depth is exported without the router pushing a sample per admission.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EXPOSITION_CONTENT_TYPE",
]

#: the content type Prometheus scrapers expect from a metrics endpoint
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: fixed latency buckets (milliseconds): sub-ms warm predicts through
#: multi-second cold TG fits, roughly log-spaced
DEFAULT_LATENCY_BUCKETS_MS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)

_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers bare, floats shortest-repr."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def _format_series(
    name: str,
    labelnames: tuple[str, ...],
    labelvalues: tuple[str, ...],
    extra: tuple[tuple[str, str], ...] = (),
) -> str:
    pairs = [*zip(labelnames, labelvalues), *extra]
    if not pairs:
        return name
    inner = ",".join(f'{k}="{str(v).translate(_ESCAPES)}"' for k, v in pairs)
    return f"{name}{{{inner}}}"


class _Family:
    """Shared family behaviour: label-keyed children, render plumbing."""

    kind: str

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...]):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(str(n) for n in labelnames)
        self._children: dict[tuple[str, ...], object] = {}  # guarded by: self._lock
        self._lock = threading.Lock()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, *values, **kwvalues):
        """The child series for one label-value assignment."""
        if kwvalues:
            if values:
                raise ValueError(
                    "pass label values either positionally or by name, not both"
                )
            try:
                values = tuple(kwvalues.pop(n) for n in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"metric {self.name} is missing label {exc.args[0]!r}"
                ) from None
            if kwvalues:
                raise ValueError(
                    f"metric {self.name} got unexpected label(s) {sorted(kwvalues)}"
                )
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes {len(self.labelnames)} label "
                f"value(s) {list(self.labelnames)}, got {len(key)}"
            )
        # Lock-free fast path: dict reads are atomic under the GIL and a
        # missed racing insert only falls through to the locked setdefault.
        child = self._children.get(key)  # analyze: ignore[lock-discipline]
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _sorted_children(self):
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self._sorted_children():
            lines.extend(child.render_series(self.name, self.labelnames, key))
        return lines


class Counter:
    """A monotonically increasing sample (one labeled series)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render_series(self, name, labelnames, labelvalues):
        return [
            f"{_format_series(name, labelnames, labelvalues)} "
            f"{_format_value(self.value)}"
        ]


class Gauge:
    """A sample that can go up, down, or track a live callback."""

    __slots__ = ("_value", "_fn", "_lock")

    def __init__(self):
        self._value = 0.0
        self._fn = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn) -> None:
        """Evaluate ``fn()`` at render time instead of a stored value."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        return float(fn())

    def render_series(self, name, labelnames, labelvalues):
        return [
            f"{_format_series(name, labelnames, labelvalues)} "
            f"{_format_value(self.value)}"
        ]


class Histogram:
    """Fixed-bucket histogram (cumulative ``le`` buckets + sum/count)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(per-bucket counts, sum, count) under one lock acquisition."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def render_series(self, name, labelnames, labelvalues):
        counts, total, count = self.snapshot()
        lines, cumulative = [], 0
        bounds = [*(_format_value(b) for b in self.buckets), "+Inf"]
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            series = _format_series(
                f"{name}_bucket", labelnames, labelvalues, (("le", bound),)
            )
            lines.append(f"{series} {cumulative}")
        lines.append(
            f"{_format_series(name + '_sum', labelnames, labelvalues)} "
            f"{_format_value(total)}"
        )
        lines.append(
            f"{_format_series(name + '_count', labelnames, labelvalues)} {count}"
        )
        return lines


class _CounterFamily(_Family):
    kind = "counter"

    def _make_child(self):
        return Counter()


class _GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self):
        return Gauge()


class _HistogramFamily(_Family):
    kind = "histogram"

    def __init__(self, name, help_text, labelnames, buckets):
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def _make_child(self):
        return Histogram(self.buckets)


class MetricsRegistry:
    """A named collection of metric families with text exposition.

    Families are create-once: re-registering a name returns the existing
    family if the kind and label names match and raises otherwise (two
    subsystems silently sharing a name with different schemas would
    corrupt the exposition).
    """

    def __init__(self):
        self._families: dict[str, _Family] = {}  # guarded by: self._lock
        self._lock = threading.Lock()

    def _register(
        self,
        factory,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        **kwargs,
    ):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                wanted = factory(name, help_text, labelnames, **kwargs)
                if (
                    type(existing) is not type(wanted)
                    or existing.labelnames != wanted.labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        f"different kind or label set"
                    )
                return existing
            family = factory(name, help_text, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labelnames: tuple[str, ...] = ()
    ) -> _CounterFamily:
        return self._register(_CounterFamily, name, help_text, tuple(labelnames))

    def gauge(
        self, name: str, help_text: str, labelnames: tuple[str, ...] = ()
    ) -> _GaugeFamily:
        return self._register(_GaugeFamily, name, help_text, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> _HistogramFamily:
        return self._register(
            _HistogramFamily, name, help_text, tuple(labelnames), buckets=buckets
        )

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            families = sorted(self._families.items())
        lines: list[str] = []
        for _, family in families:
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")
