"""Request/replay event records and their human / JSON renderings.

One *event* is the flat, greppable record of one request (or of one
replay summary) — the thing ``--log-json`` emits per line and the human
log formats per line.  Live serving and offline replay build events
through the same two constructors so their records are shaped
identically (ISSUE 6 satellite: no more ad-hoc summary dicts).

Rendering is split from emission: :class:`EventLog` owns the sink
(stream + json flag + slow threshold), the ``format_*`` helpers are pure
so tests can golden them.
"""

from __future__ import annotations

import json
import sys
import threading

from .trace import Trace

__all__ = [
    "EventLog",
    "request_event",
    "summary_event",
    "format_event_human",
    "format_event_json",
]


def request_event(trace: Trace) -> dict:
    """The per-request event record derived from a finished trace."""
    event = {
        "event": "request",
        "request_id": trace.request_id,
        "endpoint": trace.endpoint,
        "namespace": trace.namespace,
        "strategy": trace.strategy,
        "outcome": trace.outcome,
        "duration_ms": round(trace.duration_ms, 3),
        "stages": trace.stage_totals(),
    }
    if trace.metadata:
        event.update({k: v for k, v in trace.metadata.items() if k not in event})
    return event


def summary_event(kind: str, **fields) -> dict:
    """A run-level summary record (replay totals, served eval, ...).

    ``kind`` distinguishes e.g. ``"replay"`` from ``"serve"``; fields
    are flat scalars so the JSON form stays one greppable line.
    """
    return {"event": "summary", "kind": kind, **fields}


def format_event_json(event: dict) -> str:
    return json.dumps(event, sort_keys=True, default=str)


def _format_stages(stages: dict[str, float]) -> str:
    return " ".join(f"{name}={ms:.1f}ms" for name, ms in sorted(stages.items()))


def format_event_human(event: dict) -> str:
    """One aligned line per event, span details appended when present."""
    if event.get("event") == "summary":
        fields = " ".join(
            f"{k}={v}" for k, v in event.items() if k not in ("event", "kind")
        )
        return f"[summary:{event.get('kind', '-')}] {fields}"
    parts = [
        f"[{event.get('outcome', '-'):>9}]",
        f"{event.get('endpoint', '-')}",
        f"ns={event.get('namespace', '-')}",
        f"strategy={event.get('strategy', '-')}",
        f"rid={event.get('request_id', '-')}",
        f"{event.get('duration_ms', 0.0):.1f}ms",
    ]
    stages = event.get("stages") or {}
    if stages:
        parts.append(f"({_format_stages(stages)})")
    line = " ".join(parts)
    spans = event.get("spans")
    if spans:
        line += "\n" + format_span_tree(spans)
    return line


def format_span_tree(spans: list[dict], indent: int = 1) -> str:
    """Indented one-span-per-line rendering of a nested span list."""
    lines = []
    for node in spans:
        lines.append(
            f"{'  ' * indent}- {node['name']} "
            f"{node.get('duration_ms', 0.0):.2f}ms"
        )
        children = node.get("children")
        if children:
            lines.append(format_span_tree(children, indent + 1))
    return "\n".join(lines)


class EventLog:
    """Serialises events to a stream, in human or JSON form.

    ``slow_ms`` sets the slow-request threshold: a request event slower
    than it carries its full span tree (JSON gets a ``spans`` key, the
    human form an indented dump), so the one trace you need to explain a
    200 ms-vs-2 s fit is in the log without tracing everything verbosely.
    """

    def __init__(
        self, stream=None, *, json_lines: bool = False, slow_ms: float = 1000.0
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.json_lines = json_lines
        self.slow_ms = slow_ms
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        text = (
            format_event_json(event) if self.json_lines else format_event_human(event)
        )
        with self._lock:
            print(text, file=self.stream, flush=True)

    def emit_request(self, trace: Trace) -> None:
        event = request_event(trace)
        if trace.duration_ms > self.slow_ms:
            event["slow"] = True
            event["spans"] = trace.span_tree()
        self.emit(event)

    def emit_summary(self, kind: str, **fields) -> None:
        self.emit(summary_event(kind, **fields))
