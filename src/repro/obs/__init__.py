"""Observability plane: metrics, request traces, structured events.

:class:`Observability` bundles the three concerns every serving layer
needs but none should own:

- a :class:`~repro.obs.metrics.MetricsRegistry` pre-registered with the
  repro metric catalog (request counts by endpoint/namespace/strategy/
  outcome, latency histograms, cache lookups, per-stage fit timings,
  live queue depth, HTTP response codes) rendered at ``GET /v1/metrics``;
- :meth:`Observability.request` — the per-request context manager that
  mints/propagates a ``request_id``, binds a :class:`~repro.obs.trace.Trace`
  into the ambient context (so ``span("fit.walks")`` deep inside a
  strategy lands on the right request), and on exit folds the trace into
  metrics, the event log, and the trace ring;
- an :class:`~repro.obs.events.EventLog` (human or ``--log-json``) with a
  slow-request threshold that dumps the full span tree.

:class:`NullObservability` is the same surface with every hook stubbed —
it is both the "tracing off" mode and the control arm of
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager

from .events import (
    EventLog,
    format_event_human,
    format_event_json,
    request_event,
    summary_event,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
)
from .trace import (
    OUTCOME_SEVERITY,
    Span,
    Trace,
    activate,
    annotate,
    current_trace,
    deactivate,
    graft_spans,
    new_request_id,
    record_cache,
    run_in_context,
    set_outcome,
    span,
)

__all__ = [
    "Observability", "NullObservability", "MetricsRegistry", "EventLog",
    "Trace", "Span", "span", "annotate", "set_outcome", "record_cache",
    "current_trace", "run_in_context", "graft_spans", "new_request_id",
    "request_event", "summary_event", "format_event_human",
    "format_event_json", "OUTCOME_SEVERITY",
    "DEFAULT_LATENCY_BUCKETS_MS", "EXPOSITION_CONTENT_TYPE",
]

#: buckets for per-stage fit timings: stages range from sub-ms feature
#: assembly to multi-second SGNS training
_STAGE_BUCKETS_MS = (
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
    30000.0,
)


class Observability:
    """The live observability plane shared by one gateway/process."""

    def __init__(
        self,
        *,
        event_log: EventLog | None = None,
        trace_capacity: int = 512,
        request_id_factory=new_request_id,
    ):
        self.metrics = MetricsRegistry()
        self.event_log = event_log
        self.new_request_id = request_id_factory
        # guarded by: self._trace_lock
        self._traces: deque[dict] = deque(maxlen=trace_capacity)
        self._trace_lock = threading.Lock()
        self._trace_sinks: list = []  # guarded by: self._trace_lock

        m = self.metrics
        self.requests_total = m.counter(
            "repro_requests_total",
            "Requests handled, by endpoint, namespace, strategy, and "
            "cache outcome (warm/cold/coalesced/shed/error).",
            ("endpoint", "namespace", "strategy", "outcome"),
        )
        self.request_latency = m.histogram(
            "repro_request_latency_ms",
            "End-to-end request latency in milliseconds.",
            ("endpoint", "namespace"),
        )
        self.cache_lookups = m.counter(
            "repro_cache_lookups_total",
            "Warm-cache lookups by result (hit/miss).",
            ("namespace", "strategy", "result"),
        )
        self.fit_stage = m.histogram(
            "repro_fit_stage_ms",
            "Cold-fit pipeline stage durations in milliseconds.",
            ("namespace", "strategy", "stage"),
            buckets=_STAGE_BUCKETS_MS,
        )
        self.queue_depth = m.gauge(
            "repro_queue_depth",
            "Cold-fit admission queue depth (live, per strategy).",
            ("namespace", "strategy"),
        )
        self.http_responses = m.counter(
            "repro_http_responses_total",
            "HTTP responses served, by path and status code.",
            ("path", "status"),
        )
        self.fleet_workers = m.gauge(
            "repro_fleet_workers",
            "Live fit-worker daemons registered with the fleet coordinator.",
            (),
        )
        self.fleet_dispatch = m.counter(
            "repro_fleet_dispatch_total",
            "Fleet fit dispatches by outcome (ok/fit_error/retry/crash/"
            "timeout/no_workers).",
            ("outcome",),
        )

    # -- request lifecycle --------------------------------------------- #
    @contextmanager
    def request(
        self,
        endpoint: str,
        *,
        namespace: str = "-",
        strategy: str = "-",
        request_id: str | None = None,
    ):
        """Trace one request; yields the bound :class:`Trace`.

        Nested calls (a compare fanning out through rank paths that also
        open contexts) reuse the outer trace rather than double-count.
        """
        outer = current_trace()
        if outer is not None:
            yield outer
            return
        trace = Trace(
            request_id or self.new_request_id(),
            endpoint,
            namespace=namespace,
            strategy=strategy,
            obs=self,
        )
        tokens = activate(trace)
        try:
            yield trace
        except BaseException:
            trace.raise_outcome("error")
            raise
        finally:
            deactivate(tokens)
            trace.finish()
            self._collect(trace)

    def _collect(self, trace: Trace) -> None:
        self.requests_total.labels(
            trace.endpoint, trace.namespace, trace.strategy, trace.outcome
        ).inc()
        self.request_latency.labels(trace.endpoint, trace.namespace).observe(
            trace.duration_ms
        )
        record = trace.to_dict()
        with self._trace_lock:
            self._traces.append(record)
            sinks = list(self._trace_sinks)
        for sink in sinks:
            sink(record)
        if self.event_log is not None:
            self.event_log.emit_request(trace)

    # -- hooks called from trace helpers -------------------------------- #
    def observe_stage(self, trace: Trace, name: str, duration_ms: float) -> None:
        if name.startswith("fit."):
            self.fit_stage.labels(trace.namespace, trace.strategy, name).observe(
                duration_ms
            )

    def record_cache(self, trace: Trace, hit: bool) -> None:
        self.cache_lookups.labels(
            trace.namespace, trace.strategy, "hit" if hit else "miss"
        ).inc()

    # -- standalone hooks ------------------------------------------------ #
    def record_http_response(self, path: str, status: int) -> None:
        self.http_responses.labels(path, str(status)).inc()

    def watch_queue_depth(self, namespace: str, strategy: str, fn) -> None:
        """Export ``fn()`` (live queue depth) as a gauge, lazily read at
        scrape time."""
        self.queue_depth.labels(namespace, strategy).set_function(fn)

    def watch_fleet_workers(self, fn) -> None:
        """Export ``fn()`` (live fleet size) as a gauge, lazily read at
        scrape time."""
        self.fleet_workers.labels().set_function(fn)

    def record_fleet_dispatch(self, outcome: str) -> None:
        self.fleet_dispatch.labels(outcome).inc()

    def emit_summary(self, kind: str, **fields) -> None:
        if self.event_log is not None:
            self.event_log.emit_summary(kind, **fields)

    # -- trace access ---------------------------------------------------- #
    def add_trace_sink(self, sink) -> None:
        """``sink(record: dict)`` is called for every finished trace."""
        with self._trace_lock:
            self._trace_sinks.append(sink)

    def drain_traces(self) -> list[dict]:
        """Remove and return the buffered trace records, oldest first."""
        with self._trace_lock:
            records = list(self._traces)
            self._traces.clear()
        return records

    def render_metrics(self) -> str:
        return self.metrics.render()


class _NullFamily:
    """Accepts any labels/values and drops them."""

    def labels(self, *_, **__):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NullObservability:
    """Same surface as :class:`Observability`, every hook a no-op.

    Requests still get ids (callers may echo them) but no trace is bound,
    so ``span()``/``record_cache()`` stay on their no-trace fast path —
    this is the baseline arm of the overhead benchmark.
    """

    def __init__(self, *, request_id_factory=new_request_id, **_):
        self.metrics = MetricsRegistry()
        self.event_log = None
        self.new_request_id = request_id_factory
        null = _NullFamily()
        self.requests_total = self.request_latency = null
        self.cache_lookups = self.fit_stage = null
        self.queue_depth = self.http_responses = null
        self.fleet_workers = self.fleet_dispatch = null

    @contextmanager
    def request(
        self,
        endpoint: str,
        *,
        namespace: str = "-",
        strategy: str = "-",
        request_id: str | None = None,
    ):
        yield None

    def observe_stage(self, trace, name, duration_ms) -> None:
        pass

    def record_cache(self, trace, hit) -> None:
        pass

    def record_http_response(self, path, status) -> None:
        pass

    def watch_queue_depth(self, namespace, strategy, fn) -> None:
        pass

    def watch_fleet_workers(self, fn) -> None:
        pass

    def record_fleet_dispatch(self, outcome) -> None:
        pass

    def emit_summary(self, kind: str, **fields) -> None:
        pass

    def add_trace_sink(self, sink) -> None:
        pass

    def drain_traces(self) -> list[dict]:
        return []

    def render_metrics(self) -> str:
        return self.metrics.render()
