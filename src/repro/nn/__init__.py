"""A minimal reverse-mode autograd neural-network substrate (numpy only).

The paper's substrate is PyTorch + HuggingFace; neither is available in
this environment, so ``repro.nn`` provides the pieces the reproduction
actually needs:

- :mod:`repro.nn.tensor` — a broadcasting-aware autograd ``Tensor``;
- :mod:`repro.nn.layers` — ``Module``/``Linear``/activations/``LayerNorm``/
  ``Dropout``/``Sequential``;
- :mod:`repro.nn.losses` — cross-entropy and MSE;
- :mod:`repro.nn.optim` — SGD with momentum and AdamW;
- :mod:`repro.nn.schedulers` — cyclical and linear LR schedules (the two
  schedules used for fine-tuning in §VII-A of the paper);
- :mod:`repro.nn.lora` — LoRA adapters for the Fig. 11 experiment.

The engine is intentionally small but real: gradients are exact (verified
against numeric differentiation in the test suite), training loops converge,
and every model in the simulated zoo is genuinely trained with it.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.layers import (
    Module,
    Linear,
    ReLU,
    LeakyReLU,
    Tanh,
    GELU,
    Sigmoid,
    Dropout,
    LayerNorm,
    Sequential,
    Identity,
)
from repro.nn.losses import cross_entropy, mse_loss, binary_cross_entropy_with_logits
from repro.nn.optim import SGD, AdamW, Optimizer
from repro.nn.schedulers import (
    LRScheduler,
    ConstantLR,
    CyclicalLR,
    LinearDecayLR,
)
from repro.nn.lora import LoRALinear, inject_lora, lora_parameters

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "GELU",
    "Sigmoid",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "Identity",
    "cross_entropy",
    "mse_loss",
    "binary_cross_entropy_with_logits",
    "SGD",
    "AdamW",
    "Optimizer",
    "LRScheduler",
    "ConstantLR",
    "CyclicalLR",
    "LinearDecayLR",
    "LoRALinear",
    "inject_lora",
    "lora_parameters",
]
