"""Loss functions for classifier training and link prediction."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["cross_entropy", "mse_loss", "binary_cross_entropy_with_logits"]


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy from raw logits and integer class labels."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("logits and labels disagree on batch size")
    n = labels.shape[0]
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def mse_loss(predicted: Tensor, target) -> Tensor:
    """Mean squared error; ``target`` may be an array or Tensor."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = predicted - target
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically-stable BCE from logits (used by link prediction).

    Uses the identity ``bce = max(z, 0) - z * y + log(1 + exp(-|z|))``
    expressed through the autograd primitives.
    """
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    # sigmoid+log formulation via log-sum-exp is stable enough in float64
    # for the logit ranges reached by our small models.
    probs = logits.sigmoid()
    eps = 1e-12
    loss = -(targets * (probs + eps).log() + (1.0 - targets) * (1.0 - probs + eps).log())
    return loss.mean()
