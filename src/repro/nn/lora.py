"""LoRA — low-rank adaptation of linear layers (Hu et al., 2021).

§VII-F of the paper repeats the text experiments with LoRA fine-tuning:
backbone weights are frozen and a trainable rank-``r`` update
``ΔW = (alpha / r) * A @ B`` is injected into each linear layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module, Sequential
from repro.nn.tensor import Tensor

__all__ = ["LoRALinear", "inject_lora", "lora_parameters"]


class LoRALinear(Module):
    """A frozen :class:`Linear` plus a trainable low-rank residual."""

    def __init__(self, base: Linear, rank: int = 4, alpha: float = 8.0,
                 rng: np.random.Generator | None = None):
        if rank <= 0:
            raise ValueError(f"LoRA rank must be positive, got {rank}")
        rng = rng or np.random.default_rng(0)
        self.base_weight = Tensor(base.weight.data.copy(), requires_grad=False)
        self.base_bias = (Tensor(base.bias.data.copy(), requires_grad=False)
                          if base.bias is not None else None)
        self.rank = rank
        self.scaling = alpha / rank
        in_features = base.in_features
        out_features = base.out_features
        # A ~ N(0, 0.02), B = 0 → ΔW starts at exactly zero (LoRA paper).
        self.lora_a = Tensor(rng.normal(0.0, 0.02, size=(in_features, rank)),
                             requires_grad=True, name="lora_a")
        self.lora_b = Tensor(np.zeros((rank, out_features)),
                             requires_grad=True, name="lora_b")
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.base_weight
        out = out + (x @ self.lora_a) @ self.lora_b * self.scaling
        if self.base_bias is not None:
            out = out + self.base_bias
        return out

    def merged_weight(self) -> np.ndarray:
        """Return the effective weight ``W + ΔW`` as a plain array."""
        delta = self.lora_a.data @ self.lora_b.data * self.scaling
        return self.base_weight.data + delta


def inject_lora(module: Module, rank: int = 4, alpha: float = 8.0,
                rng: np.random.Generator | None = None) -> Module:
    """Recursively replace every ``Linear`` in ``module`` with ``LoRALinear``.

    The replacement happens in-place for ``Sequential`` containers and
    module attributes; the (possibly new) module is returned.
    """
    rng = rng or np.random.default_rng(0)
    if isinstance(module, Linear):
        return LoRALinear(module, rank=rank, alpha=alpha, rng=rng)
    if isinstance(module, Sequential):
        module.layers = [inject_lora(layer, rank, alpha, rng) for layer in module.layers]
        return module
    for name, value in list(vars(module).items()):
        if isinstance(value, Linear):
            setattr(module, name, LoRALinear(value, rank=rank, alpha=alpha, rng=rng))
        elif isinstance(value, Module):
            setattr(module, name, inject_lora(value, rank, alpha, rng))
    return module


def lora_parameters(module: Module) -> list[Tensor]:
    """Return only the LoRA adapter parameters of ``module``."""
    return [p for name, p in module.named_parameters()
            if name.endswith("lora_a") or name.endswith("lora_b")]
