"""Learning-rate schedules.

§VII-A of the paper: image fine-tuning uses a *cyclical* learning rate
(Smith, WACV 2017); text fine-tuning uses a *linear* schedule.  Both are
implemented here as step-wise schedulers driving an optimizer's ``lr``.
"""

from __future__ import annotations

from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "CyclicalLR", "LinearDecayLR"]


class LRScheduler:
    """Base scheduler: call :meth:`step` once per optimisation step."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.step_count = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and push the new lr into the optimizer."""
        self.step_count += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, lr: float):
        super().__init__(optimizer)
        self.lr = lr
        optimizer.lr = lr

    def get_lr(self) -> float:
        return self.lr


class CyclicalLR(LRScheduler):
    """Triangular cyclical schedule between ``base_lr`` and ``max_lr``.

    One cycle spans ``2 * step_size_up`` steps: lr rises linearly from
    ``base_lr`` to ``max_lr`` and falls back.
    """

    def __init__(self, optimizer: Optimizer, base_lr: float, max_lr: float,
                 step_size_up: int):
        super().__init__(optimizer)
        if base_lr <= 0 or max_lr < base_lr:
            raise ValueError("need 0 < base_lr <= max_lr")
        if step_size_up <= 0:
            raise ValueError("step_size_up must be positive")
        self.base_lr = base_lr
        self.max_lr = max_lr
        self.step_size_up = step_size_up
        optimizer.lr = base_lr

    def get_lr(self) -> float:
        cycle_pos = self.step_count % (2 * self.step_size_up)
        if cycle_pos <= self.step_size_up:
            frac = cycle_pos / self.step_size_up
        else:
            frac = 2.0 - cycle_pos / self.step_size_up
        return self.base_lr + (self.max_lr - self.base_lr) * frac


class LinearDecayLR(LRScheduler):
    """Linear decay from ``initial_lr`` to zero over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, initial_lr: float, total_steps: int):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.initial_lr = initial_lr
        self.total_steps = total_steps
        optimizer.lr = initial_lr

    def get_lr(self) -> float:
        remaining = max(0.0, 1.0 - self.step_count / self.total_steps)
        return self.initial_lr * remaining
