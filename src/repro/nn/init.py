"""Weight-initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros", "normal"]


def kaiming_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He/Kaiming uniform init — default for ReLU-family networks."""
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform init — default for tanh/GELU networks."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)
