"""Reverse-mode automatic differentiation on numpy arrays.

The design follows the classic tape-based approach: every operation
records its inputs and a backward closure; :meth:`Tensor.backward` walks
the tape in reverse topological order accumulating gradients.  Shapes are
fully broadcasting-aware — gradients are "unbroadcast" (summed) back to the
shape of each input.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so its shape matches ``shape`` (inverse of broadcast)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array plus an optional autograd tape entry.

    Only float64 data is supported; integer inputs (e.g. class labels) stay
    plain numpy arrays outside the graph.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # tape plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        # Topological order over the tape.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        a, b = self.data, other.data
        if a.ndim > 2 or b.ndim > 2:
            raise ValueError("matmul supports 1-D and 2-D operands only")
        data = a @ b

        def backward(grad: np.ndarray) -> None:
            # Promote everything to 2-D, compute, then squeeze back.
            a2 = a.reshape(1, -1) if a.ndim == 1 else a
            b2 = b.reshape(-1, 1) if b.ndim == 1 else b
            g2 = grad.reshape(a2.shape[0], b2.shape[1])
            if self.requires_grad:
                self._accumulate((g2 @ b2.T).reshape(a.shape))
            if other.requires_grad:
                other._accumulate((a2.T @ g2).reshape(b.shape))

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            expanded = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None
                               else mask.sum(), 1.0)
            self._accumulate(mask * g)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(data, (self,), backward)

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        datas = [t.data for t in tensors]
        data = np.concatenate(datas, axis=axis)
        sizes = [d.shape[axis] for d in datas]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        out = Tensor(data)
        if _GRAD_ENABLED and any(t.requires_grad for t in tensors):
            out.requires_grad = True
            out._parents = tuple(t for t in tensors if t.requires_grad)
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data**2))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return self._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Tanh-approximation GELU (as used by BERT/GPT implementations)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            dt = (1.0 - t**2) * c * (1.0 + 3 * 0.044715 * x**2)
            self._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return self._make(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_z
        softmax = np.exp(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return self._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()
