"""Optimizers: SGD with momentum (image fine-tuning, §VII-A) and AdamW
(text fine-tuning and LoRA, §VII-A / §VII-F)."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "AdamW"]


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay.

    The paper fine-tunes image models with SGD, momentum 0.9 and a cyclical
    learning-rate schedule (max lr 1e-3).
    """

    def __init__(self, params: list[Tensor], lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    The paper fine-tunes text models with AdamW, betas (0.9, 0.999),
    epsilon 1e-8 and a linear learning-rate schedule.
    """

    def __init__(self, params: list[Tensor], lr: float,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
