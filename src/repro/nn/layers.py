"""Neural-network modules built on :class:`repro.nn.tensor.Tensor`.

The ``Module`` protocol mirrors the familiar torch one at a small scale:
``parameters()`` yields trainable tensors, ``train()``/``eval()`` toggle
dropout, and ``state_dict()``/``load_state_dict()`` allow snapshotting
pre-trained weights (used by the zoo to clone models before fine-tuning).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import init as _init
from repro.nn.tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "GELU",
    "Sigmoid",
    "Identity",
    "Dropout",
    "LayerNorm",
    "Sequential",
]


class Module:
    """Base class: parameter discovery via attribute inspection."""

    training: bool = True

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    # -------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -------------------------------------------------------------- #
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs "
                    f"{state[name].shape}"
                )
            param.data = state[name].copy()


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None, bias: bool = True,
                 init_scheme: str = "kaiming"):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        if init_scheme == "kaiming":
            weight = _init.kaiming_uniform(rng, in_features, out_features)
        elif init_scheme == "xavier":
            weight = _init.xavier_uniform(rng, in_features, out_features)
        else:
            raise ValueError(f"unknown init scheme {init_scheme!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(weight, requires_grad=True, name="weight")
        self.bias = Tensor(np.zeros(out_features), requires_grad=True, name="bias") \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        if not (0.0 <= p < 1.0):
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable affine."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        self.eps = eps
        self.gamma = Tensor(np.ones(normalized_shape), requires_grad=True, name="gamma")
        self.beta = Tensor(np.zeros(normalized_shape), requires_grad=True, name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self
