"""Pack/unpack a :class:`FittedTransferGraph` into portable artifacts.

An artifact is a pair ``(meta, arrays)``:

- ``meta`` is a JSON-able dict: format version, target, the full config,
  both fingerprints, feature names, graph statistics, and the predictor
  and assembler states with every numpy array replaced by an
  ``{"__array__": key}`` reference;
- ``arrays`` maps those keys to the actual ``np.ndarray`` values, stored
  losslessly in one ``.npz`` file by the registry.

This module lives in the *strategies* layer, not serving: pack/unpack
is the :class:`~repro.strategies.SelectionStrategy` artifact contract
(every strategy implements it, and the process fit plane ships fitted
state across it), while the serving registry is merely its persistence.
``repro.serving.artifacts`` remains as a compatibility re-export.

Splitting this way keeps the metadata human-inspectable while arrays
round-trip bit-for-bit.  The pruned LOO graph is stored too (node ids +
kinds and edge endpoints/kinds in the meta, edge weights in the arrays):
rebuilding it from the catalog dominated registry-warm loads (~200 ms on
the tiny zoo), so revival now reconstructs it from the artifact instead.
Drift is impossible because every load already validates the catalog
fingerprint — a catalog change stales the whole artifact, graph
included.  Artifacts written before the graph was stored (no ``graph``
key) still load via the deterministic rebuild.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro.core.config import TransferGraphConfig
from repro.core.features import FeatureAssembler
from repro.core.framework import FittedTransferGraph
from repro.graph import GraphBuilder
from repro.predictors import get_predictor
from repro.strategies.fingerprint import catalog_fingerprint, config_fingerprint

__all__ = ["ArtifactError", "ArtifactNotFoundError", "StaleArtifactError",
           "ARTIFACT_FORMAT_VERSION", "pack_fitted", "unpack_fitted"]

#: bump when the artifact layout changes; older artifacts refuse to load
ARTIFACT_FORMAT_VERSION = 1

#: separator inside ``.npz`` keys (same idiom as the zoo weight cache)
_SEP = "::"

_ARRAY_REF = "__array__"


class ArtifactError(RuntimeError):
    """Base class for registry/artifact failures."""


class ArtifactNotFoundError(ArtifactError):
    """No artifact stored for the requested (target, config)."""


class StaleArtifactError(ArtifactError):
    """A stored artifact no longer matches the live catalog or config."""


# ---------------------------------------------------------------------- #
# generic state <-> (json, arrays) flattening
# ---------------------------------------------------------------------- #
def _pack_value(value, arrays: dict, path: str):
    if isinstance(value, np.ndarray):
        arrays[path] = value
        return {_ARRAY_REF: path}
    if isinstance(value, dict):
        return {key: _pack_value(v, arrays, f"{path}{_SEP}{key}")
                for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_pack_value(v, arrays, f"{path}{_SEP}{i}")
                for i, v in enumerate(value)]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value


def _unpack_value(value, arrays: dict):
    if isinstance(value, dict):
        if set(value) == {_ARRAY_REF}:
            return arrays[value[_ARRAY_REF]]
        return {key: _unpack_value(v, arrays) for key, v in value.items()}
    if isinstance(value, list):
        return [_unpack_value(v, arrays) for v in value]
    return value


# ---------------------------------------------------------------------- #
def pack_fitted(fitted: FittedTransferGraph, config: TransferGraphConfig,
                zoo) -> tuple[dict, dict[str, np.ndarray]]:
    """Serialise a fitted pipeline into ``(meta, arrays)``."""
    arrays: dict[str, np.ndarray] = {}

    embedding_nodes = sorted(fitted.embeddings)
    for node in embedding_nodes:
        arrays[f"embeddings{_SEP}{node}"] = np.asarray(
            fitted.embeddings[node], dtype=np.float64)

    meta = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "target": fitted.target,
        "config": asdict(config),
        "config_fingerprint": config_fingerprint(config),
        "catalog_fingerprint": catalog_fingerprint(zoo.catalog),
        "feature_names": list(fitted.feature_names),
        "graph_stats": {k: _pack_value(v, arrays, f"graph_stats{_SEP}{k}")
                        for k, v in fitted.graph_stats.items()},
        "embedding_nodes": embedding_nodes,
        "predictor_state": _pack_value(fitted.predictor.get_state(), arrays,
                                       "predictor"),
        "assembler_state": _pack_value(fitted.assembler.get_state(), arrays,
                                       "assembler"),
    }

    graph = getattr(fitted.assembler, "graph", None)
    if graph is not None:
        edges = graph.edges()
        meta["graph"] = {
            "nodes": [[n, graph.node_kind(n)] for n in graph.nodes()],
            "edges": [[e.u, e.v, e.kind] for e in edges],
        }
        arrays[f"graph{_SEP}edge_weights"] = np.asarray(
            [e.weight for e in edges], dtype=np.float64)
    return meta, arrays


def _graph_from_meta(stored: dict, arrays: dict):
    """Reconstruct the pruned LOO graph persisted by :func:`pack_fitted`.

    Node features are deliberately not restored: after the fit, the
    assembler only walks edges (the two-hop affinity feature); the graph
    learner never runs again on a revived pipeline.
    """
    from repro.graph.graph import ModelDatasetGraph

    graph = ModelDatasetGraph()
    for node_id, kind in stored["nodes"]:
        graph.add_node(node_id, kind)
    weights = np.asarray(arrays[f"graph{_SEP}edge_weights"],
                         dtype=np.float64)
    if len(weights) != len(stored["edges"]):
        raise ValueError(
            f"graph edge list ({len(stored['edges'])}) and weight vector "
            f"({len(weights)}) disagree")
    for (u, v, kind), weight in zip(stored["edges"], weights):
        graph.add_edge(u, v, float(weight), kind)
    return graph


def unpack_fitted(meta: dict, arrays: dict, zoo,
                  config: TransferGraphConfig) -> FittedTransferGraph:
    """Revive a fitted pipeline, validating freshness first.

    Raises :class:`StaleArtifactError` when the artifact was written for
    a different config, a different catalog, or an older artifact format.
    """
    version = meta.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise StaleArtifactError(
            f"artifact format v{version} != supported v{ARTIFACT_FORMAT_VERSION}")
    if meta["config_fingerprint"] != config_fingerprint(config):
        raise StaleArtifactError(
            f"artifact for target {meta['target']!r} was fitted under a "
            "different TransferGraph configuration")
    live = catalog_fingerprint(zoo.catalog)
    if meta["catalog_fingerprint"] != live:
        raise StaleArtifactError(
            f"artifact for target {meta['target']!r} is stale: catalog "
            f"fingerprint {meta['catalog_fingerprint']} != live {live}")

    target = meta["target"]
    embeddings = {node: np.asarray(arrays[f"embeddings{_SEP}{node}"],
                                   dtype=np.float64)
                  for node in meta["embedding_nodes"]}

    graph = None
    if config.features.graph_features:
        stored = meta.get("graph")
        if stored is not None:
            # Warm path: the pruned LOO graph ships inside the artifact,
            # so revival skips the catalog rebuild entirely.  Derived
            # similarity tables may still be cold in a fresh process —
            # ensure them (a few lookups when already filled) without
            # paying for graph construction.
            graph = _graph_from_meta(stored, arrays)
            GraphBuilder(zoo, config.graph).ensure_similarities()
        else:
            # Legacy artifact (predates the stored graph): deterministic
            # rebuild from the catalog (no learner runs).
            graph, _ = GraphBuilder(zoo, config.graph).build(
                exclude_target=target)
    elif config.features.dataset_similarity:
        # Graph-less configs with the similarity feature (lr:all,
        # lr:all+logme) read pairwise dataset similarities from the
        # live catalog at predict time.  A fresh process — a registry
        # revival after restart, or the parent unpacking a
        # process-worker fit — has an empty derived table, and
        # _similarity_feature silently degrades to 0.0; ensure the
        # (deterministic) similarities so revived pipelines predict
        # identically to freshly-fitted ones.
        GraphBuilder(zoo, config.graph).ensure_similarities()

    assembler = FeatureAssembler(
        zoo=zoo,
        features=config.features,
        embeddings=embeddings if config.features.graph_features else None,
        transferability_metric=config.graph.transferability_metric,
        similarity_method=config.graph.similarity_method,
        graph=graph,
    )
    assembler.set_state(_unpack_value(meta["assembler_state"], arrays))

    predictor = get_predictor(config.predictor)
    predictor.set_state(_unpack_value(meta["predictor_state"], arrays))

    return FittedTransferGraph(
        target=target,
        assembler=assembler,
        predictor=predictor,
        embeddings=embeddings,
        graph_stats=_unpack_value(meta["graph_stats"], arrays),
        feature_names=list(meta["feature_names"]),
    )
