"""The SelectionStrategy protocol: one interface for every ranker.

The paper's evaluation is comparative — TransferGraph variants against
the Amazon-LR baseline and transferability-only selectors — so the repo
needs every ranker behind one abstraction that the whole serving stack
(registry → service → router → gateway → HTTP) can drive:

- ``fit(zoo, target) -> FittedSelection`` — produce a servable, warm
  pipeline for one target (strategies without a Stage-2/3 learning
  phase, e.g. LogME, fit in one forward-pass sweep);
- ``rank(zoo, target)`` / ``scores_for_target(zoo, target)`` — the
  evaluation-harness face, shared with ``repro.core.evaluate_strategy``;
- ``fingerprint()`` — a content hash keying registry artifacts, so two
  strategies can never serve each other's state;
- ``pack(fitted, zoo)`` / ``unpack(meta, arrays, zoo)`` — the portable
  artifact form the :class:`~repro.serving.ArtifactRegistry` persists.
  The same pair is the *process boundary*: the serving fit plane
  (:mod:`repro.serving.fit_plane`) fits in a worker process, packs
  there, and unpacks in the parent — so anything a fitted pipeline
  needs at predict time must live in the packed state (or be
  deterministically derivable from the catalog), and strategy
  instances themselves must be picklable (module-level classes with
  plain attributes — no closures);
- ``spec`` — the canonical string key under which the strategy registry
  (:func:`repro.strategies.get_strategy`) and the serving gateway's
  per-namespace strategy maps address it;
- ``name`` — the human-readable paper notation (``TG:LR,N2V,all``,
  ``LR{all,LogME}``, ``LogME``, ``Random``).

:class:`FittedSelection` is duck-typed: anything with ``target``,
``predict(model_ids) -> np.ndarray`` and ``rank(model_ids)`` serves
(:class:`~repro.core.FittedTransferGraph` already conforms;
:class:`FittedScoreTable` covers the no-history strategies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np
import numpy.typing as npt

__all__ = ["SelectionStrategy", "FittedSelection", "FittedScoreTable",
           "sort_ranking", "SCORE_TABLE_KIND"]

#: meta["kind"] discriminant of score-table artifacts (TG artifacts
#: predate the field and carry no kind)
SCORE_TABLE_KIND = "score_table"


def sort_ranking(scores: dict[str, float]) -> list[tuple[str, float]]:
    """Best-first ordering, ties broken by model id.

    The single sort rule every strategy shares — the same ordering
    :meth:`repro.core.FittedTransferGraph.rank` applies, so rankings
    cannot diverge across strategy families.
    """
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))


class FittedSelection(Protocol):
    """Structural interface of a fitted, servable selection pipeline.

    Anything with these three members serves — the class exists for type
    checkers and documentation, not for inheritance
    (:class:`~repro.core.FittedTransferGraph` conforms without importing
    this module).
    """

    target: str

    def predict(self, model_ids: list[str]) -> npt.NDArray[np.float64]: ...

    def rank(self, model_ids: list[str]) -> list[tuple[str, float]]: ...


class SelectionStrategy:
    """Base class of every model-selection strategy.

    Subclasses set :attr:`spec` and :attr:`name` and implement
    :meth:`fit`, :meth:`fingerprint`, :meth:`pack`, :meth:`unpack`.
    """

    #: canonical registry key, e.g. ``"tg:lr,n2v,all"`` or ``"logme"``
    spec: str
    #: paper notation, e.g. ``"TG:LR,N2V,all"``
    name: str
    #: whether Stage-2/3 fitting consumes fine-tuning history (False for
    #: transferability-only and random strategies — the no-history fast
    #: path: their fit is a catalog sweep, not a learning phase)
    requires_history: bool = True

    #: relative cost of one cold fit, used by the serving gateway's
    #: weighted per-strategy fit budgets: a namespace's
    #: ``max_pending_fits`` is the queue bound for a weight-1.0 strategy,
    #: and each strategy's router gets ``max(1, round(bound / weight))``
    #: slots.  Heavy fits (graph learning, ~s) declare weights > 1 so a
    #: storm of them saturates a *small* queue instead of starving the
    #: ~ms strategies; catalog-sweep fits declare weights < 1 and get
    #: proportionally deeper queues.
    fit_weight: float = 1.0

    # ------------------------------------------------------------------ #
    def fit(self, zoo: Any, target: str) -> FittedSelection:
        """Produce a :class:`FittedSelection` for one target."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Content hash keying this strategy's registry artifacts."""
        raise NotImplementedError

    def pack(
        self, fitted: FittedSelection, zoo: Any
    ) -> tuple[dict[str, Any], dict[str, npt.NDArray[Any]]]:
        """Serialise a fitted pipeline into ``(meta, arrays)``."""
        raise NotImplementedError

    def unpack(
        self, meta: dict[str, Any], arrays: dict[str, npt.NDArray[Any]], zoo: Any
    ) -> FittedSelection:
        """Revive a fitted pipeline, validating freshness first."""
        raise NotImplementedError

    def refresh(self, zoo: Any, target: str, fitted: FittedSelection,
                dirty_nodes: set[str]) -> FittedSelection:
        """Update ``fitted`` after catalog writes touching ``dirty_nodes``.

        The default is the honest fallback — a clean :meth:`fit` —
        which is already cheap for the no-history strategies (their fit
        is a catalog sweep).  Strategies with an expensive Stage-2
        learning phase override this with an O(changed-nodes) refresh
        (:class:`~repro.strategies.TransferGraphStrategy` re-walks only
        the dirty neighborhood and warm-starts SGNS).
        """
        return self.fit(zoo, target)

    # ------------------------------------------------------------------ #
    # shared faces (evaluation harness + convenience)
    # ------------------------------------------------------------------ #
    def rank(self, zoo: Any, target: str) -> list[tuple[str, float]]:
        """Models ranked best-first for ``target`` (fits, then ranks)."""
        return self.fit(zoo, target).rank(zoo.model_ids())

    def scores_for_target(self, zoo: Any, target: str) -> dict[str, float]:
        """The evaluation-harness protocol shared with the baselines."""
        fitted = self.fit(zoo, target)
        model_ids = zoo.model_ids()
        scores = fitted.predict(model_ids)
        return {m: float(s) for m, s in zip(model_ids, scores)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(spec={self.spec!r})"


@dataclass
class FittedScoreTable:
    """A fitted no-history selection: one precomputed score per model.

    The :class:`FittedSelection` form of transferability-only and random
    strategies — ``fit`` materialises the whole score column for the
    target, so serving is pure table lookups.
    """

    target: str
    scores: dict[str, float] = field(repr=False)

    def predict(self, model_ids: list[str]) -> npt.NDArray[np.float64]:
        return np.asarray([self.scores[m] for m in model_ids],
                          dtype=np.float64)

    def rank(self, model_ids: list[str]) -> list[tuple[str, float]]:
        return sort_ranking({m: self.scores[m] for m in model_ids})
