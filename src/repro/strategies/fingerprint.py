"""Stable fingerprints that guard the artifact registry against staleness.

Two fingerprints gate every artifact load:

- **config fingerprint** — a content hash of the full
  :class:`~repro.core.TransferGraphConfig` (graph heuristics, learner,
  feature set, predictor, seed).  Artifacts fitted under a different
  configuration live in a different registry namespace and can never be
  served for a query with this one.
- **catalog fingerprint** — a content hash of the zoo's *ground-truth*
  tables (models, datasets, fine-tuning history).  Similarity and
  transferability tables are deliberately excluded: they are derived
  caches recomputed deterministically from the ground truth, and they
  grow lazily (scores are recorded on first use), so hashing them would
  invalidate artifacts that are in fact still correct.

Like :mod:`repro.strategies.artifacts`, this lives in the strategies
layer: fingerprints are part of every strategy's contract
(:meth:`~repro.strategies.SelectionStrategy.fingerprint`), and the
serving registry above consumes them.  ``repro.serving.fingerprint``
remains as a compatibility re-export.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.core.config import FeatureSet, TransferGraphConfig
from repro.graph import GraphConfig

__all__ = ["config_fingerprint", "catalog_fingerprint", "config_from_dict",
           "stable_digest", "CATALOG_FINGERPRINT_TABLES"]

#: the ground-truth tables whose content invalidates fitted artifacts
CATALOG_FINGERPRINT_TABLES = ("models", "datasets", "history")


def stable_digest(payload) -> str:
    """THE digest rule keying registry directories (strategy, config,
    and catalog fingerprints all share it — see also
    :meth:`repro.strategies.ScoreTableStrategy.fingerprint`)."""
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=10).hexdigest()


_digest = stable_digest


def config_fingerprint(config: TransferGraphConfig) -> str:
    """Content hash of a TG configuration (registry namespace key)."""
    return _digest(asdict(config))


def catalog_fingerprint(catalog) -> str:
    """Content hash of the catalog's ground-truth tables."""
    payload = {name: getattr(catalog, name).to_records()
               for name in CATALOG_FINGERPRINT_TABLES}
    return _digest(payload)


def config_from_dict(payload: dict) -> TransferGraphConfig:
    """Rebuild a :class:`TransferGraphConfig` from its ``asdict`` form."""
    payload = dict(payload)
    payload["graph"] = GraphConfig(**payload["graph"])
    payload["features"] = FeatureSet(**payload["features"])
    return TransferGraphConfig(**payload)
