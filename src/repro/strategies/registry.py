"""String-keyed strategy registry: ``get_strategy("tg:lr,n2v,all")``.

Spec grammar (case-insensitive; canonical form is lowercase):

========================  ==============================================
spec                      strategy
========================  ==============================================
``tg``                    TransferGraph with config defaults
``tg:PRED``               … with predictor ``PRED`` (lr/rf/xgb/tree)
``tg:PRED,LEARNER``       … and graph learner (n2v/n2v+/sage/gat, full
                          registry names also accepted)
``tg:PRED,LEARNER,FEAT``  … and feature set: ``all`` (metadata +
                          similarity + graph) or ``graph`` (graph only)
``lr`` / ``lr:basic``     Amazon LR (metadata only)
``lr:all``                LR{all} (+ dataset similarity)
``lr:all+logme``          LR{all,LogME} (+ LogME feature)
``logme`` … ``hscore``    transferability-only ranker (any estimator in
                          :data:`repro.transferability.ESTIMATORS`)
``random`` / ``random:N`` uniform scores, seed N
========================  ==============================================

``tg``/``lr`` specs accept keyword overrides applied to the underlying
:class:`~repro.core.TransferGraphConfig` (the CLI passes
``embedding_dim=32`` so served strategies match its classic defaults);
the spec remains the routing key, the config fingerprint remains the
artifact key.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.core.config import FeatureSet, TransferGraphConfig
from repro.strategies.base import SelectionStrategy
from repro.strategies.score_based import RandomStrategy, TransferabilityStrategy
from repro.strategies.transfer_graph import (
    LEARNER_ALIASES,
    LR_VARIANTS,
    TransferGraphStrategy,
)

__all__ = ["get_strategy", "resolve_strategy", "canonical_spec",
           "normalize_spec", "available_specs", "UnknownStrategyError"]

_FEATURE_TAGS = {"all": FeatureSet.everything, "graph": FeatureSet.graph_only}


class UnknownStrategyError(KeyError):
    """The request names a strategy this endpoint does not serve."""

    def __init__(self, spec: str, known: list[str]):
        super().__init__(
            f"unknown strategy {spec!r}; serving {sorted(known)}")
        self.spec = spec

    def __str__(self) -> str:  # KeyError str() wraps args in quotes
        return self.args[0]


def canonical_spec(spec: str) -> str:
    """Lower-cased, whitespace-stripped spec — the lookup key form."""
    return spec.strip().lower()


@lru_cache(maxsize=1024)
def normalize_spec(spec: str) -> str:
    """The fully-normalized spec of *any* accepted spelling.

    :func:`get_strategy` tolerates alias spellings (``tg:lr,node2vec,all``
    for ``tg:lr,n2v,all``, ``random:0`` for ``random``), so request
    routing must too: this resolves the spelling through the parser and
    returns the canonical spec the strategy registers under.  Specs that
    don't parse (custom strategy objects carry arbitrary specs) fall
    back to the plain :func:`canonical_spec` form.

    Memoised (bounded): spellings arrive per wire request, and resolving
    one builds a throwaway strategy object just to read its spec.
    """
    try:
        return get_strategy(spec).spec
    except UnknownStrategyError:
        return canonical_spec(spec)


def _transferability_metrics() -> list[str]:
    from repro.transferability import ESTIMATORS

    return sorted(ESTIMATORS)


def available_specs() -> list[str]:
    """Canonical specs of every registered strategy family/variant.

    TG specs are enumerated over the live predictor and graph-learner
    registries, so a new predictor is servable without touching this
    module.
    """
    from repro.graph import GRAPH_LEARNERS
    from repro.predictors import PREDICTORS
    from repro.strategies.transfer_graph import _LEARNER_TOKENS

    specs = [f"tg:{p},{_LEARNER_TOKENS.get(g, g)},{tag}"
             for p in sorted(PREDICTORS) for g in sorted(GRAPH_LEARNERS)
             for tag in sorted(_FEATURE_TAGS)]
    specs += [f"lr:{variant}" for variant in sorted(LR_VARIANTS)]
    specs += _transferability_metrics()
    specs += ["random"]
    return specs


def _tg_strategy(args: str, overrides: dict) -> TransferGraphStrategy:
    from repro.graph import GRAPH_LEARNERS
    from repro.predictors import PREDICTORS

    parts = [p.strip() for p in args.split(",")] if args else []
    if len(parts) > 3:
        raise UnknownStrategyError(f"tg:{args}", available_specs())
    defaults = TransferGraphConfig()
    predictor = parts[0] if len(parts) > 0 and parts[0] \
        else defaults.predictor
    learner = LEARNER_ALIASES.get(parts[1], parts[1]) \
        if len(parts) > 1 and parts[1] else defaults.graph_learner
    tag = parts[2] if len(parts) > 2 and parts[2] else "all"
    if predictor not in PREDICTORS or learner not in GRAPH_LEARNERS \
            or tag not in _FEATURE_TAGS:
        raise UnknownStrategyError(
            f"tg:{args}" if args else "tg", available_specs())
    config = TransferGraphConfig(predictor=predictor, graph_learner=learner,
                                 features=_FEATURE_TAGS[tag]())
    if overrides:
        config = replace(config, **overrides)
    return TransferGraphStrategy(config)


def _lr_strategy(args: str, overrides: dict) -> TransferGraphStrategy:
    variant = args or "basic"
    if variant not in LR_VARIANTS:
        raise UnknownStrategyError(f"lr:{variant}", available_specs())
    feature_set, name = LR_VARIANTS[variant]
    config = TransferGraphConfig(predictor="lr", features=feature_set())
    if overrides:
        config = replace(config, **overrides)
    return TransferGraphStrategy(config, spec=f"lr:{variant}", name=name)


def _random_strategy(args: str) -> RandomStrategy:
    if not args:
        return RandomStrategy()
    try:
        seed = int(args)
    except ValueError:
        raise UnknownStrategyError(f"random:{args}",
                                   available_specs()) from None
    return RandomStrategy(seed=seed)


def get_strategy(spec: str, **tg_overrides) -> SelectionStrategy:
    """Instantiate a strategy from its spec string.

    ``tg_overrides`` are :class:`~repro.core.TransferGraphConfig` field
    overrides applied to the ``tg:``/``lr:`` families (ignored by
    strategies without a TG config).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise UnknownStrategyError(repr(spec), available_specs())
    key = canonical_spec(spec)
    family, _, args = key.partition(":")
    if family == "tg":
        return _tg_strategy(args, tg_overrides)
    if family == "lr":
        return _lr_strategy(args, tg_overrides)
    if family == "random":
        return _random_strategy(args)
    if not args and family in _transferability_metrics():
        return TransferabilityStrategy(metric=family)
    raise UnknownStrategyError(spec, available_specs())


def resolve_strategy(obj) -> SelectionStrategy:
    """Coerce a strategy-ish value into a :class:`SelectionStrategy`.

    Accepts a strategy instance (returned as-is), a spec string, a
    :class:`~repro.core.TransferGraphConfig` (the pre-redesign service
    and registry signature), or ``None`` (config defaults) — so every
    call site that used to take a config keeps working unchanged.
    """
    if obj is None:
        return TransferGraphStrategy(TransferGraphConfig())
    if isinstance(obj, SelectionStrategy):
        return obj
    if isinstance(obj, TransferGraphConfig):
        return TransferGraphStrategy(obj)
    if isinstance(obj, str):
        return get_strategy(obj)
    raise TypeError(
        f"cannot resolve a strategy from {type(obj).__name__!r}; expected "
        "a SelectionStrategy, TransferGraphConfig, spec string, or None")
