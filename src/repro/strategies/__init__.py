"""Unified strategy layer: every ranker behind one fit/rank/pack API.

- :mod:`repro.strategies.base` — the :class:`SelectionStrategy` protocol
  and :class:`FittedScoreTable`;
- :mod:`repro.strategies.transfer_graph` — TG variants and the Amazon-LR
  baselines (Stage 3 with graph features off);
- :mod:`repro.strategies.score_based` — transferability-only rankers
  (no-history fast path) and random selection;
- :mod:`repro.strategies.registry` — the string-keyed registry:
  ``get_strategy("tg:lr,n2v,all" | "lr:all+logme" | "logme" | ...)``;
- :mod:`repro.strategies.fingerprint` /
  :mod:`repro.strategies.artifacts` — the content hashes and
  pack/unpack forms of the strategy artifact contract (consumed by the
  serving registry one layer up, and by the process fit plane as its
  wire format).
"""

from repro.strategies.base import (
    SCORE_TABLE_KIND,
    FittedScoreTable,
    SelectionStrategy,
    sort_ranking,
)
from repro.strategies.score_based import (
    SCORE_TABLE_FORMAT_VERSION,
    RandomStrategy,
    ScoreTableStrategy,
    TransferabilityStrategy,
)
from repro.strategies.transfer_graph import (
    TransferGraphStrategy,
    spec_for_config,
)
from repro.strategies.registry import (
    UnknownStrategyError,
    available_specs,
    canonical_spec,
    get_strategy,
    normalize_spec,
    resolve_strategy,
)

__all__ = [
    "SCORE_TABLE_KIND",
    "FittedScoreTable",
    "SelectionStrategy",
    "sort_ranking",
    "SCORE_TABLE_FORMAT_VERSION",
    "RandomStrategy",
    "ScoreTableStrategy",
    "TransferabilityStrategy",
    "TransferGraphStrategy",
    "spec_for_config",
    "UnknownStrategyError",
    "available_specs",
    "canonical_spec",
    "get_strategy",
    "normalize_spec",
    "resolve_strategy",
]
