"""No-history strategies: transferability estimators and random selection.

These rankers have no Stage-2/3 learning phase — the fast path the
strategy API promises them:

- :class:`TransferabilityStrategy` scores every zoo model on the target
  with a forward pass + estimator (LogME, LEEP, NCE, PARC, TransRate,
  H-score), reading catalog-cached scores when present and recording
  fresh ones for reuse as graph edges;
- :class:`RandomStrategy` draws i.i.d. uniform scores, deterministic per
  (seed, target) — Fig. 2's naive floor.

Both fit into a :class:`~repro.strategies.base.FittedScoreTable`, whose
artifact form is a tiny meta + one score vector; loads validate the
strategy fingerprint and the catalog fingerprint exactly like TG
artifacts do.
"""

from __future__ import annotations

import numpy as np

from repro.obs import span
from repro.strategies.base import (
    SCORE_TABLE_KIND,
    FittedScoreTable,
    SelectionStrategy,
)
from repro.utils.rng import derive_seed

__all__ = ["ScoreTableStrategy", "TransferabilityStrategy", "RandomStrategy",
           "SCORE_TABLE_FORMAT_VERSION"]

#: bump when the score-table artifact layout changes
SCORE_TABLE_FORMAT_VERSION = 1


class ScoreTableStrategy(SelectionStrategy):
    """Shared artifact plumbing for strategies that fit a score table."""

    requires_history = False

    #: a "fit" here is a catalog sweep (~ms), so weighted router budgets
    #: give these strategies 4x the queue depth of the reference cost —
    #: a TransferGraph fit storm must never starve them
    fit_weight: float = 0.25

    def _fingerprint_payload(self) -> dict:
        raise NotImplementedError

    def fingerprint(self) -> str:
        from repro.strategies.fingerprint import stable_digest

        return stable_digest(self._fingerprint_payload())

    # ------------------------------------------------------------------ #
    def pack(self, fitted: FittedScoreTable, zoo
             ) -> tuple[dict, dict[str, np.ndarray]]:
        from repro.strategies.fingerprint import catalog_fingerprint

        model_ids = sorted(fitted.scores)
        meta = {
            "format_version": SCORE_TABLE_FORMAT_VERSION,
            "kind": SCORE_TABLE_KIND,
            "target": fitted.target,
            "strategy_spec": self.spec,
            "strategy_fingerprint": self.fingerprint(),
            "catalog_fingerprint": catalog_fingerprint(zoo.catalog),
            "model_ids": model_ids,
        }
        arrays = {"scores": np.asarray([fitted.scores[m] for m in model_ids],
                                       dtype=np.float64)}
        return meta, arrays

    def unpack(self, meta: dict, arrays: dict, zoo) -> FittedScoreTable:
        from repro.strategies.artifacts import StaleArtifactError
        from repro.strategies.fingerprint import catalog_fingerprint

        version = meta.get("format_version")
        if version != SCORE_TABLE_FORMAT_VERSION or \
                meta.get("kind") != SCORE_TABLE_KIND:
            raise StaleArtifactError(
                f"score-table artifact format v{version} "
                f"(kind {meta.get('kind')!r}) is not supported")
        if meta["strategy_fingerprint"] != self.fingerprint():
            raise StaleArtifactError(
                f"artifact for target {meta['target']!r} was fitted by a "
                f"different strategy ({meta.get('strategy_spec')!r})")
        live = catalog_fingerprint(zoo.catalog)
        if meta["catalog_fingerprint"] != live:
            raise StaleArtifactError(
                f"artifact for target {meta['target']!r} is stale: catalog "
                f"fingerprint {meta['catalog_fingerprint']} != live {live}")
        scores = dict(zip(meta["model_ids"],
                          np.asarray(arrays["scores"], dtype=np.float64)))
        return FittedScoreTable(target=meta["target"],
                                scores={m: float(s)
                                        for m, s in scores.items()})


class TransferabilityStrategy(ScoreTableStrategy):
    """Rank directly by a transferability estimator — no history used.

    Catalog-cached scores are read under the catalog lock; missing ones
    are computed lock-free (the forward passes dominate, and concurrent
    fits for other targets should overlap them) and merged back under
    the lock — the same scoped-recorder discipline as
    :meth:`repro.core.FeatureAssembler._raw_transferability_scores`.
    """

    def __init__(self, metric: str = "logme", record: bool = True):
        from repro.transferability import get_estimator

        get_estimator(metric)  # fail fast on unknown metric
        self.metric = metric
        self.record = record
        self.spec = metric
        self.name = {"logme": "LogME", "leep": "LEEP", "nce": "NCE",
                     "parc": "PARC", "transrate": "TransRate",
                     "hscore": "H-score"}.get(metric, metric.upper())

    def _fingerprint_payload(self) -> dict:
        return {"kind": "transferability", "metric": self.metric}

    def fit(self, zoo, target: str) -> FittedScoreTable:
        from repro.transferability import score_model_on_dataset

        catalog = zoo.catalog
        model_ids = zoo.model_ids()
        with span("fit.catalog_lookup"), catalog.lock:
            scores = {m: catalog.get_transferability(m, target,
                                                     metric=self.metric)
                      for m in model_ids}
        missing = [m for m, s in scores.items() if s is None]
        if missing:
            with span("fit.estimate"):
                batch = {m: score_model_on_dataset(zoo, m, target,
                                                   self.metric)
                         for m in missing}
            if self.record:
                with catalog.lock:
                    for model_id, score in batch.items():
                        catalog.record_transferability(
                            model_id, target, self.metric, score)
            scores.update(batch)
        return FittedScoreTable(target=target,
                                scores={m: float(s)
                                        for m, s in scores.items()})


class RandomStrategy(ScoreTableStrategy):
    """I.i.d. uniform scores; deterministic per (seed, target)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.spec = "random" if seed == 0 else f"random:{seed}"
        self.name = "Random"

    def _fingerprint_payload(self) -> dict:
        return {"kind": "random", "seed": self.seed}

    def fit(self, zoo, target: str) -> FittedScoreTable:
        rng = np.random.default_rng(derive_seed(self.seed, "random", target))
        model_ids = zoo.model_ids()
        values = rng.random(len(model_ids))
        return FittedScoreTable(target=target,
                                scores=dict(zip(model_ids, values.tolist())))
