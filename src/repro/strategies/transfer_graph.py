"""TransferGraph-family strategies: the paper's TG variants and Amazon LR.

Both families share the Stage 2–4 machinery of
:class:`repro.core.TransferGraph` — Amazon LR is exactly TG's Stage 3
with graph features switched off, which is how the paper positions it —
so one strategy class covers ``tg:*`` and ``lr:*`` specs, parameterised
by the :class:`~repro.core.TransferGraphConfig`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FeatureSet, TransferGraphConfig
from repro.core.framework import TransferGraph
from repro.strategies.base import SelectionStrategy

__all__ = ["TransferGraphStrategy", "spec_for_config",
           "LEARNER_ALIASES", "LR_VARIANTS"]

#: spec token -> graph-learner registry name (and identity mappings)
LEARNER_ALIASES = {
    "n2v": "node2vec",
    "n2v+": "node2vec+",
    "sage": "graphsage",
    "node2vec": "node2vec",
    "node2vec+": "node2vec+",
    "graphsage": "graphsage",
    "gat": "gat",
}

#: graph-learner registry name -> canonical spec token
_LEARNER_TOKENS = {"node2vec": "n2v", "node2vec+": "n2v+",
                   "graphsage": "sage", "gat": "gat"}

#: lr variant -> (FeatureSet constructor, paper name)
LR_VARIANTS = {
    "basic": (FeatureSet.basic, "LR"),
    "all": (FeatureSet.all_no_graph, "LR{all}"),
    "all+logme": (FeatureSet.all_logme, "LR{all,LogME}"),
}


def _lr_variant_of(features: FeatureSet) -> str | None:
    """The ``lr:`` variant a graph-less feature set corresponds to."""
    for variant, (constructor, _) in LR_VARIANTS.items():
        if features == constructor():
            return variant
    return None


def spec_for_config(config: TransferGraphConfig) -> str:
    """Canonical strategy spec of a TG configuration.

    Graph-less configs under the ``lr`` predictor map to the baseline
    family (``lr:basic`` / ``lr:all`` / ``lr:all+logme``); everything
    else is a ``tg:`` spec mirroring the paper notation.
    """
    if not config.features.graph_features and config.predictor == "lr":
        variant = _lr_variant_of(config.features)
        if variant is not None:
            return f"lr:{variant}"
    learner = _LEARNER_TOKENS.get(config.graph_learner, config.graph_learner)
    suffix = "all" if (config.features.metadata
                       or config.features.dataset_similarity) else "graph"
    return f"tg:{config.predictor},{learner},{suffix}"


class TransferGraphStrategy(SelectionStrategy):
    """A TG variant (or LR baseline) behind the strategy protocol."""

    requires_history = True

    def __init__(self, config: TransferGraphConfig | None = None, *,
                 spec: str | None = None, name: str | None = None):
        self.config = config or TransferGraphConfig()
        self._tg = TransferGraph(self.config)
        self.spec = spec or spec_for_config(self.config)
        self.name = name or self._default_name()

    def _default_name(self) -> str:
        if self.spec.startswith("lr:"):
            variant = self.spec.partition(":")[2]
            if variant in LR_VARIANTS:
                return LR_VARIANTS[variant][1]
        return self.config.strategy_name()

    @property
    def fit_weight(self) -> float:
        """Cold-fit cost hint for weighted router budgets.

        Graph-feature configs pay for walk generation + SGNS training
        (~seconds); the graph-less ``lr:`` baselines fit a linear model
        over tabular features (~the weight-1.0 reference cost).
        """
        return 4.0 if self.config.features.graph_features else 1.0

    # ------------------------------------------------------------------ #
    def fit(self, zoo, target: str):
        return self._tg.fit(zoo, target)

    def refresh(self, zoo, target: str, fitted, dirty_nodes: set[str]):
        """Incremental Stage-2 refresh (localized walks + warm SGNS).

        Delegates to :meth:`repro.core.TransferGraph.refresh`, which
        falls back to a clean fit for graph-less configs and learners
        without a localized-refresh path.
        """
        return self._tg.refresh(zoo, target, fitted, dirty_nodes)

    def fingerprint(self) -> str:
        from repro.strategies.fingerprint import config_fingerprint

        return config_fingerprint(self.config)

    def pack(self, fitted, zoo) -> tuple[dict, dict[str, np.ndarray]]:
        from repro.strategies.artifacts import pack_fitted

        return pack_fitted(fitted, self.config, zoo)

    def unpack(self, meta: dict, arrays: dict, zoo):
        from repro.strategies.artifacts import unpack_fitted

        return unpack_fitted(meta, arrays, zoo, self.config)
