"""Length-prefixed fleet wire protocol: HELLO through FIT_ERROR.

The fleet speaks a tiny framed protocol over a plain TCP stream.  Every
frame is::

    !I payload_len | payload
    payload = !I header_len | header JSON | binary tail

The header is canonical JSON (sorted keys, compact separators — the
same byte-stability rule :mod:`repro.serving.protocol` enforces for the
HTTP wire), so encoding the same frame twice yields identical bytes.
The binary tail carries what JSON cannot: the pickled strategy and zoo
reference on the way out (FIT), and raw C-order numpy array bytes on
the way back (FIT_RESULT) — the *strategy-packed* artifact, exactly the
``(meta, arrays)`` pair the registry persists, so socket-fitted
artifacts stay byte-identical to thread- and process-fitted ones.

Frames and their direction:

========== ======================= ===================================
frame      direction               carries
========== ======================= ===================================
HELLO      worker -> coordinator   wire version, worker name, pid, nonce
CHALLENGE  coordinator -> worker   auth nonce + coordinator's HMAC proof
AUTH       worker -> coordinator   worker's HMAC proof of the challenge
REGISTER   coordinator -> worker   assigned worker id, heartbeat cadence
HEARTBEAT  worker -> coordinator   liveness + outstanding/fits_done
FIT        coordinator -> worker   fit id, target, pickled strategy+zoo ref
FIT_RESULT worker -> coordinator   meta JSON, span records, packed arrays
FIT_ERROR  worker -> coordinator   typed kind, exception module/type, message
========== ======================= ===================================

A frame that fails to parse (bad magic sizes, unknown type, missing
fields) raises :class:`~repro.fleet.errors.WireError`; both ends treat
that as a dead peer and drop the connection.  ``WIRE_VERSION`` is
checked once at HELLO — a version-skewed worker is refused before it
can receive work.

Trust model: the gateway never evaluates bytes a worker sends — the
worker->coordinator frames are pure JSON headers plus raw numpy array
bytes (FIT_ERROR names the exception by module/type string; nothing is
unpickled).  Pickle travels only coordinator->worker inside FIT, which
is why the CHALLENGE/AUTH handshake is *mutual*: when a shared secret
is configured (``--fleet-secret`` / ``REPRO_FLEET_SECRET``) each side
proves knowledge of it with an HMAC over the other side's fresh nonce
(:func:`coordinator_proof` / :func:`worker_proof`,
``multiprocessing.connection``-style) before any FIT is exchanged.
Without a secret the listener must stay on a loopback/trusted
interface — anyone who can connect can join the fleet.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.errors import WireError

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "Hello",
    "Challenge",
    "Auth",
    "Register",
    "Heartbeat",
    "Fit",
    "FitResult",
    "FitError",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "new_nonce",
    "coordinator_proof",
    "worker_proof",
]

#: bumped on any frame-shape change; checked at HELLO
WIRE_VERSION = 2

#: hard frame-size ceiling — a corrupt length prefix must not make a
#: reader allocate gigabytes (tiny-zoo artifacts are a few MB)
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct("!I")


@dataclass(frozen=True)
class Hello:
    """Worker's opening frame: who it is and what protocol it speaks.

    ``nonce`` is the worker's fresh challenge material: a secured
    coordinator must echo ``coordinator_proof(secret, nonce)`` in its
    CHALLENGE, proving *it* knows the secret before the worker will
    accept (and later unpickle) FIT payloads from it.
    """

    worker_name: str
    pid: int
    wire_version: int = WIRE_VERSION
    nonce: str = ""


@dataclass(frozen=True)
class Challenge:
    """Coordinator's auth demand: prove knowledge of the fleet secret.

    ``proof`` is the coordinator's own HMAC over the HELLO nonce, so
    authentication is mutual — a worker never registers with (or takes
    pickled FIT payloads from) a coordinator that cannot produce it.
    """

    nonce: str
    proof: str


@dataclass(frozen=True)
class Auth:
    """Worker's answer to CHALLENGE: HMAC proof over the challenge nonce."""

    proof: str


@dataclass(frozen=True)
class Register:
    """Coordinator's acceptance: assigned id + heartbeat cadence."""

    worker_id: str
    heartbeat_interval_s: float


@dataclass(frozen=True)
class Heartbeat:
    """Periodic worker liveness with a load snapshot."""

    worker_id: str
    outstanding: int
    fits_done: int


@dataclass(frozen=True)
class Fit:
    """One dispatched cold fit (strategy and zoo ref travel pickled)."""

    fit_id: str
    target: str
    strategy_blob: bytes
    zoo_blob: bytes


@dataclass(frozen=True, eq=False)
class FitResult:
    """A finished fit: the strategy-packed artifact + span records.

    ``arrays`` preserves the worker's insertion order — the parent
    passes the dict to ``registry.save_packed`` as-is, so order must
    survive the wire for the npz payload to match the thread path.
    """

    fit_id: str
    meta: dict
    spans: list
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


@dataclass(frozen=True)
class FitError:
    """A failed fit: ``kind`` separates plane failures from ordinary
    fit exceptions.

    The exception travels as ``(exc_module, exc_type, message)`` strings
    in the JSON header — never pickled, so a worker cannot make the
    gateway execute bytes.  The coordinator re-raises with the original
    type when it names an importable ``builtins``/``repro.*`` exception
    class, else degrades to a RuntimeError carrying the message.
    """

    fit_id: str
    kind: str  # "fit" (strategy raised) | "plane" (hydration/infra)
    message: str
    exc_module: str = ""
    exc_type: str = ""


_FRAME_NAMES = {
    Hello: "HELLO",
    Challenge: "CHALLENGE",
    Auth: "AUTH",
    Register: "REGISTER",
    Heartbeat: "HEARTBEAT",
    Fit: "FIT",
    FitResult: "FIT_RESULT",
    FitError: "FIT_ERROR",
}


# ---------------------------------------------------------------------- #
# fleet-secret authentication (multiprocessing.connection-style HMAC)
# ---------------------------------------------------------------------- #
def new_nonce() -> str:
    """Fresh per-connection challenge material (hex, 256 bits)."""
    return os.urandom(32).hex()


def _proof(secret, role: bytes, nonce: str) -> str:
    key = secret.encode("utf-8") if isinstance(secret, str) else bytes(secret)
    return hmac.new(key, role + nonce.encode("ascii"), hashlib.sha256).hexdigest()


def coordinator_proof(secret, worker_nonce: str) -> str:
    """The coordinator's HMAC over the worker's HELLO nonce.

    Domain-separated from :func:`worker_proof` so a proof captured in
    one direction can never be replayed in the other.
    """
    return _proof(secret, b"repro-fleet-coordinator:", worker_nonce)


def worker_proof(secret, challenge_nonce: str) -> str:
    """The worker's HMAC over the coordinator's CHALLENGE nonce."""
    return _proof(secret, b"repro-fleet-worker:", challenge_nonce)


def _header_bytes(header: dict) -> bytes:
    return json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_frame(frame) -> bytes:
    """One frame as its full on-wire byte string (byte-stable)."""
    name = _FRAME_NAMES.get(type(frame))
    if name is None:
        raise WireError(f"not a fleet frame: {type(frame).__name__}")
    blobs: list[bytes] = []
    if isinstance(frame, Hello):
        header = {
            "frame": name,
            "worker_name": frame.worker_name,
            "pid": int(frame.pid),
            "wire_version": int(frame.wire_version),
            "nonce": frame.nonce,
        }
    elif isinstance(frame, Challenge):
        header = {"frame": name, "nonce": frame.nonce, "proof": frame.proof}
    elif isinstance(frame, Auth):
        header = {"frame": name, "proof": frame.proof}
    elif isinstance(frame, Register):
        header = {
            "frame": name,
            "worker_id": frame.worker_id,
            "heartbeat_interval_s": float(frame.heartbeat_interval_s),
        }
    elif isinstance(frame, Heartbeat):
        header = {
            "frame": name,
            "worker_id": frame.worker_id,
            "outstanding": int(frame.outstanding),
            "fits_done": int(frame.fits_done),
        }
    elif isinstance(frame, Fit):
        blobs = [frame.strategy_blob, frame.zoo_blob]
        header = {
            "frame": name,
            "fit_id": frame.fit_id,
            "target": frame.target,
            "blobs": [len(b) for b in blobs],
        }
    elif isinstance(frame, FitResult):
        descriptors = []
        for key, array in frame.arrays.items():
            # ascontiguousarray promotes 0-d to 1-d, so the descriptor
            # shape must come from the original array
            data = np.ascontiguousarray(array)
            blobs.append(data.tobytes())
            descriptors.append(
                {
                    "name": str(key),
                    "dtype": data.dtype.str,
                    "shape": list(array.shape),
                    "nbytes": len(blobs[-1]),
                }
            )
        header = {
            "frame": name,
            "fit_id": frame.fit_id,
            "meta": frame.meta,
            "spans": frame.spans,
            "arrays": descriptors,
        }
    else:  # FitError
        header = {
            "frame": name,
            "fit_id": frame.fit_id,
            "kind": frame.kind,
            "message": frame.message,
            "exc_module": frame.exc_module,
            "exc_type": frame.exc_type,
        }
    try:
        head = _header_bytes(header)
    except (TypeError, ValueError) as exc:
        raise WireError(f"{name} header is not JSON-encodable: {exc}") from exc
    payload = b"".join([_LEN.pack(len(head)), head, *blobs])
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"{name} frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return _LEN.pack(len(payload)) + payload


def _require(header: dict, name: str, *fields: str) -> list:
    try:
        return [header[f] for f in fields]
    except KeyError as exc:
        raise WireError(f"{name} frame is missing field {exc.args[0]!r}") from None


def _split_blobs(tail: bytes, lengths: list, name: str) -> list[bytes]:
    if not all(isinstance(n, int) and n >= 0 for n in lengths):
        raise WireError(f"{name} frame declares invalid blob lengths {lengths!r}")
    if sum(lengths) != len(tail):
        raise WireError(
            f"{name} frame declares {sum(lengths)} blob bytes "
            f"but carries {len(tail)}"
        )
    blobs, offset = [], 0
    for length in lengths:
        blobs.append(tail[offset : offset + length])
        offset += length
    return blobs


def decode_frame(payload: bytes):
    """Parse one frame payload (everything after the outer length)."""
    if len(payload) < _LEN.size:
        raise WireError(f"truncated frame payload ({len(payload)} bytes)")
    (header_len,) = _LEN.unpack_from(payload)
    if header_len > len(payload) - _LEN.size:
        raise WireError(
            f"frame declares a {header_len}-byte header but only "
            f"{len(payload) - _LEN.size} payload bytes follow"
        )
    try:
        header = json.loads(payload[_LEN.size : _LEN.size + header_len])
    except ValueError as exc:
        raise WireError(f"frame header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise WireError("frame header must be a JSON object")
    tail = payload[_LEN.size + header_len :]
    name = header.get("frame")

    if name == "HELLO":
        worker_name, pid, version = _require(
            header, name, "worker_name", "pid", "wire_version"
        )
        return Hello(
            worker_name=str(worker_name),
            pid=int(pid),
            wire_version=int(version),
            nonce=str(header.get("nonce", "")),
        )
    if name == "CHALLENGE":
        nonce, proof = _require(header, name, "nonce", "proof")
        return Challenge(nonce=str(nonce), proof=str(proof))
    if name == "AUTH":
        (proof,) = _require(header, name, "proof")
        return Auth(proof=str(proof))
    if name == "REGISTER":
        worker_id, interval = _require(
            header, name, "worker_id", "heartbeat_interval_s"
        )
        return Register(worker_id=str(worker_id), heartbeat_interval_s=float(interval))
    if name == "HEARTBEAT":
        worker_id, outstanding, fits_done = _require(
            header, name, "worker_id", "outstanding", "fits_done"
        )
        return Heartbeat(
            worker_id=str(worker_id),
            outstanding=int(outstanding),
            fits_done=int(fits_done),
        )
    if name == "FIT":
        fit_id, target, lengths = _require(header, name, "fit_id", "target", "blobs")
        if len(lengths) != 2:
            raise WireError(f"FIT frame needs 2 blobs, got {len(lengths)}")
        strategy_blob, zoo_blob = _split_blobs(tail, lengths, name)
        return Fit(
            fit_id=str(fit_id),
            target=str(target),
            strategy_blob=strategy_blob,
            zoo_blob=zoo_blob,
        )
    if name == "FIT_RESULT":
        fit_id, meta, spans, descriptors = _require(
            header, name, "fit_id", "meta", "spans", "arrays"
        )
        if not isinstance(meta, dict) or not isinstance(spans, list):
            raise WireError("FIT_RESULT meta/spans have the wrong JSON shape")
        lengths = [
            d.get("nbytes") if isinstance(d, dict) else None for d in descriptors
        ]
        raws = _split_blobs(tail, lengths, name)
        arrays: dict[str, np.ndarray] = {}
        for descriptor, raw in zip(descriptors, raws):
            key, dtype, shape = _require(descriptor, name, "name", "dtype", "shape")
            try:
                # .copy(): frombuffer views are read-only; the parent
                # must receive arrays as writable as pickle would make
                arrays[str(key)] = (
                    np.frombuffer(raw, dtype=np.dtype(dtype))
                    .reshape([int(n) for n in shape])
                    .copy()
                )
            except (TypeError, ValueError) as exc:
                raise WireError(
                    f"FIT_RESULT array {key!r} does not match its "
                    f"descriptor: {exc}"
                ) from exc
        return FitResult(fit_id=str(fit_id), meta=meta, spans=spans, arrays=arrays)
    if name == "FIT_ERROR":
        fit_id, kind, message = _require(header, name, "fit_id", "kind", "message")
        if tail:
            raise WireError(
                f"FIT_ERROR frame carries {len(tail)} unexpected blob bytes"
            )
        return FitError(
            fit_id=str(fit_id),
            kind=str(kind),
            message=str(message),
            exc_module=str(header.get("exc_module", "")),
            exc_type=str(header.get("exc_type", "")),
        )
    raise WireError(f"unknown fleet frame {name!r}")


async def read_frame(reader):
    """Read one frame from an asyncio stream reader.

    Raises :class:`asyncio.IncompleteReadError` on a clean peer close
    (callers treat it as disconnect) and :class:`WireError` on a frame
    that cannot be parsed.
    """
    (length,) = _LEN.unpack(await reader.readexactly(_LEN.size))
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"incoming frame declares {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    return decode_frame(await reader.readexactly(length))


async def write_frame(writer, frame) -> None:
    """Write one frame to an asyncio stream writer and drain."""
    writer.write(encode_frame(frame))
    await writer.drain()
