"""FleetCoordinator: registration, heartbeat, dispatch, typed failover.

The coordinator is the gateway-side half of the fit fleet.  It runs an
asyncio socket server on its *own* daemon thread and private event loop
— the serving event loop never touches fleet IO — and exposes the same
blocking ``submit_fit(strategy, zoo, target) -> (meta, arrays, spans)``
surface as :class:`repro.serving.fit_plane.ProcessFitExecutor`, so the
router's ``fit_executor="socket"`` path drops into the existing
``_remote_fit`` plumbing unchanged: router fit threads block on
``run_coroutine_threadsafe(...).result()`` while the dispatch runs on
the coordinator loop.

Worker lifecycle:

1. a ``repro fit-worker`` connects and sends HELLO (wire version, name,
   pid, auth nonce); a version-skewed or silent client is dropped
   before it can receive work;
2. with a fleet secret configured the coordinator interposes a mutual
   CHALLENGE/AUTH round — its CHALLENGE carries an HMAC proof over the
   worker's nonce, the worker answers with a proof over the challenge
   nonce, and a client that cannot produce it is dropped unregistered
   (see the trust-model note in :mod:`repro.fleet.wire`); then the
   coordinator replies REGISTER with an assigned worker id and the
   heartbeat cadence, and the worker joins the live set;
3. HEARTBEAT frames (and any result frame) refresh ``last_seen``; a
   worker silent for ``heartbeat_misses`` intervals is reaped;
4. on disconnect or reaping, every fit outstanding on that worker is
   retried **once** on another live worker — if none remains (or the
   retry's worker also dies) the coalesced group sheds with
   :class:`~repro.fleet.errors.FitWorkerCrashError`.

Dispatch picks the live worker with the fewest outstanding fits
(ties broken by registration order), bounds each fit by
``fit_timeout_s`` (:class:`~repro.fleet.errors.FitTimeoutError`, the
worker's late result is discarded), and surfaces an empty fleet as
:class:`~repro.fleet.errors.NoWorkersError` — always typed, never hung.

Observability: pass the gateway's :class:`~repro.obs.Observability` to
export ``repro_fleet_workers`` (live gauge) and
``repro_fleet_dispatch_total{outcome}`` with outcomes ``ok`` /
``fit_error`` (the strategy or the worker-side plane raised) /
``retry`` / ``crash`` / ``timeout`` / ``no_workers``.
"""

from __future__ import annotations

import asyncio
import hmac
import importlib
import itertools
import pickle
import threading
import time

from repro.fleet import wire
from repro.fleet.errors import (
    FitPlaneError,
    FitTimeoutError,
    FitWorkerCrashError,
    NoWorkersError,
    WireError,
)
from repro.fleet.work import zoo_ref_for

__all__ = ["FleetCoordinator"]

#: a connection that has not completed HELLO within this window is not
#: a fleet worker; drop it before it can occupy the accept loop
_HELLO_TIMEOUT_S = 10.0


class _WorkerLost(Exception):
    """Internal: the worker holding an attempt died; the dispatch loop
    decides whether to retry or shed."""


class _Pending:
    """One in-flight fit attempt awaiting its FIT_RESULT/FIT_ERROR."""

    __slots__ = ("fit_id", "target", "future")

    def __init__(self, fit_id: str, target: str, future: asyncio.Future):
        self.fit_id = fit_id
        self.target = target
        self.future = future


class _Worker:
    """Coordinator-side state for one registered fit worker."""

    __slots__ = (
        "worker_id",
        "name",
        "pid",
        "writer",
        "write_lock",
        "outstanding",
        "last_seen",
        "fits_done",
        "alive",
        "order",
    )

    def __init__(self, worker_id, name, pid, writer, order, now):
        self.worker_id = worker_id
        self.name = name
        self.pid = pid
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.outstanding: dict[str, _Pending] = {}
        self.last_seen = now
        self.fits_done = 0
        self.alive = True
        self.order = order


class FleetCoordinator:
    """Accept fit workers; dispatch cold fits with typed failover.

    All mutable worker/dispatch state lives on the coordinator's event
    loop thread; ``self._lock`` only makes the worker map readable from
    other threads (``worker_count``, ``fleet_summary``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_interval_s: float = 2.0,
        heartbeat_misses: int = 3,
        fit_timeout_s: float | None = None,
        secret: str | bytes | None = None,
        obs=None,
    ):
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        self._host = host
        self._requested_port = port
        #: shared fleet-auth secret; None accepts any client that can
        #: reach the listener (loopback/trusted networks only)
        self._secret = secret
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_misses = heartbeat_misses
        self.fit_timeout_s = fit_timeout_s
        self._obs = obs
        self.address: tuple[str, int] | None = None
        self._lock = threading.Lock()
        self._workers: dict[str, _Worker] = {}  # guarded by: self._lock
        self._pending: dict[str, _Pending] = {}  # loop thread only
        self._worker_seq = itertools.count(1)
        self._fit_seq = itertools.count(1)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._closed = False
        if obs is not None:
            obs.watch_fleet_workers(lambda: self.worker_count)

    # ------------------------------------------------------------------ #
    # lifecycle (called from any thread)
    # ------------------------------------------------------------------ #
    def start(self) -> tuple[str, int]:
        """Bind the listener (port 0 = ephemeral); returns (host, port)."""
        with self._lock:
            if self._closed:
                raise FitPlaneError("fleet coordinator is closed")
            if self._thread is not None:
                raise FitPlaneError("fleet coordinator already started")
            self._thread = threading.Thread(
                target=self._thread_main, name="fleet-coordinator", daemon=True
            )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise FitPlaneError(
                f"fleet coordinator failed to bind "
                f"{self._host}:{self._requested_port}: {self._startup_error}"
            ) from self._startup_error
        if self.address is None:
            raise FitPlaneError("fleet coordinator did not start in time")
        return self.address

    def close(self) -> None:
        """Stop accepting, drop every worker, join the loop; idempotent."""
        with self._lock:
            already = self._closed
            self._closed = True
            thread = self._thread
        if already or thread is None:
            return
        # A close() racing startup must not miss the shutdown event:
        # _loop/_shutdown are published before _started is set (even on
        # early loop death, via _thread_main's finally), so wait for it.
        self._started.wait(timeout=30.0)
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and thread.is_alive():
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass  # loop already gone
        thread.join(timeout=10.0)

    def __enter__(self) -> "FleetCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        finally:
            self._started.set()  # unblock start() even on early death

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._serve, self._host, self._requested_port
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        reaper = asyncio.create_task(self._reap())
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            reaper.cancel()
            for worker in list(self._workers.values()):
                self._lose_worker(worker, "coordinator shutting down")

    # ------------------------------------------------------------------ #
    # fit submission (called from router fit threads)
    # ------------------------------------------------------------------ #
    def submit_fit(self, strategy, zoo, target: str, *, timeout_s=None):
        """Fit ``target`` on a fleet worker; returns ``(meta, arrays, spans)``.

        Blocking, like the process plane's ``submit_fit`` — the caller
        is a router fit thread.  Raises the typed
        :class:`~repro.fleet.errors.FitPlaneError` family for plane
        failures and re-raises ordinary fit exceptions with their
        original type.
        """
        with self._lock:
            if self._closed:
                raise FitPlaneError("fleet coordinator is closed")
            loop = self._loop
        if loop is None or not loop.is_running():
            raise FitPlaneError("fleet coordinator is not started")
        try:
            blob = pickle.dumps(strategy)
        except Exception as exc:
            raise FitPlaneError(
                f"strategy {getattr(strategy, 'spec', strategy)!r} is not "
                f"picklable and cannot fit on a fleet worker (use "
                f"fit_executor='thread'): {exc}"
            ) from exc
        zoo_blob = pickle.dumps(zoo_ref_for(zoo))
        timeout = timeout_s if timeout_s is not None else self.fit_timeout_s
        future = asyncio.run_coroutine_threadsafe(
            self._run_fit(blob, zoo_blob, target, timeout), loop
        )
        return future.result()

    def prestart(self, zoo=None, hold_s: float = 0.0) -> int:
        """Fleet planes have no pool to spawn; reports live workers.

        Workers hydrate the zoo themselves on their first fit (cached
        per zoo fingerprint thereafter); ``zoo``/``hold_s`` exist for
        signature parity with the process plane's ``prestart``.
        """
        return self.worker_count

    def wait_for_workers(self, count: int, timeout_s: float = 30.0) -> int:
        """Block until ``count`` workers are registered; returns the count."""
        deadline = time.monotonic() + timeout_s
        while True:
            live = self.worker_count
            if live >= count:
                return live
            if time.monotonic() >= deadline:
                raise FitPlaneError(
                    f"only {live}/{count} fleet workers registered "
                    f"within {timeout_s:.0f}s"
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------ #
    # introspection (called from any thread)
    # ------------------------------------------------------------------ #
    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def fleet_summary(self) -> dict:
        """Live fleet snapshot (embedded in ``/v1/healthz``)."""
        with self._lock:
            workers = sorted(self._workers.values(), key=lambda w: w.order)
        details = [
            {
                "id": w.worker_id,
                "name": w.name,
                "pid": w.pid,
                "outstanding": len(w.outstanding),
                "fits_done": w.fits_done,
            }
            for w in workers
        ]
        return {
            "workers": len(details),
            "outstanding": sum(d["outstanding"] for d in details),
            "details": details,
        }

    # ------------------------------------------------------------------ #
    # coordinator loop: connections, dispatch, failover
    # ------------------------------------------------------------------ #
    def _count(self, outcome: str) -> None:
        if self._obs is not None:
            self._obs.record_fleet_dispatch(outcome)

    async def _serve(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        try:
            hello = await asyncio.wait_for(wire.read_frame(reader), _HELLO_TIMEOUT_S)
        except Exception:
            writer.close()
            return
        if (
            not isinstance(hello, wire.Hello)
            or hello.wire_version != wire.WIRE_VERSION
        ):
            writer.close()
            return
        if self._secret is not None:
            # Mutual HMAC handshake: prove we know the secret over the
            # worker's nonce, demand proof over ours. A client that
            # cannot answer is dropped before it holds a worker id or
            # can address any fit.
            challenge_nonce = wire.new_nonce()
            try:
                await wire.write_frame(
                    writer,
                    wire.Challenge(
                        nonce=challenge_nonce,
                        proof=wire.coordinator_proof(self._secret, hello.nonce),
                    ),
                )
                answer = await asyncio.wait_for(
                    wire.read_frame(reader), _HELLO_TIMEOUT_S
                )
            except Exception:
                writer.close()
                return
            if not isinstance(answer, wire.Auth) or not hmac.compare_digest(
                answer.proof, wire.worker_proof(self._secret, challenge_nonce)
            ):
                writer.close()
                return
        order = next(self._worker_seq)
        worker = _Worker(
            worker_id=f"w{order}:{hello.worker_name}",
            name=hello.worker_name,
            pid=hello.pid,
            writer=writer,
            order=order,
            now=loop.time(),
        )
        try:
            await wire.write_frame(
                writer,
                wire.Register(worker.worker_id, self.heartbeat_interval_s),
            )
        except (ConnectionError, OSError):
            writer.close()
            return
        with self._lock:
            self._workers[worker.worker_id] = worker
        try:
            while True:
                frame = await wire.read_frame(reader)
                worker.last_seen = loop.time()
                if isinstance(frame, wire.Heartbeat):
                    # max(): the worker's count is authoritative but a
                    # beat can race the _resolve bump for a fit it has
                    # not counted yet; never step the summary backwards
                    worker.fits_done = max(worker.fits_done, frame.fits_done)
                elif isinstance(frame, (wire.FitResult, wire.FitError)):
                    self._resolve(worker, frame)
                # anything else from a registered worker is ignored
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionError,
            OSError,
            WireError,
        ):
            # CancelledError: asyncio.run tears reader tasks down at
            # shutdown — the finally below already records the loss.
            pass
        finally:
            self._lose_worker(worker, "disconnected")

    def _resolve(self, worker: _Worker, frame) -> None:
        if frame.fit_id not in worker.outstanding:
            # Only the worker a fit was dispatched to may resolve it —
            # a result/error from any other worker (or a late frame for
            # a timed-out/retried fit) must not touch self._pending.
            return
        worker.outstanding.pop(frame.fit_id)
        pending = self._pending.pop(frame.fit_id, None)
        if pending is None or pending.future.done():
            return  # orphan: the fit timed out or was retried elsewhere
        if isinstance(frame, wire.FitResult):
            # heartbeats carry the worker's authoritative count; bump
            # here so summaries between beats stay fresh
            worker.fits_done += 1
            pending.future.set_result((frame.meta, frame.arrays, frame.spans))
        else:
            pending.future.set_exception(_revive_error(frame))

    def _lose_worker(self, worker: _Worker, reason: str) -> None:
        if not worker.alive:
            return
        worker.alive = False
        with self._lock:
            self._workers.pop(worker.worker_id, None)
        worker.writer.close()
        outstanding = list(worker.outstanding.values())
        worker.outstanding.clear()
        for pending in outstanding:
            self._pending.pop(pending.fit_id, None)
            if not pending.future.done():
                pending.future.set_exception(
                    _WorkerLost(f"{worker.worker_id} {reason}")
                )

    async def _reap(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval_s)
            cutoff = (
                asyncio.get_running_loop().time()
                - self.heartbeat_interval_s * self.heartbeat_misses
            )
            with self._lock:
                stale = [w for w in self._workers.values() if w.last_seen < cutoff]
            for worker in stale:
                self._lose_worker(
                    worker,
                    f"missed {self.heartbeat_misses} heartbeats",
                )

    def _pick_worker(self) -> _Worker | None:
        with self._lock:
            live = list(self._workers.values())
        if not live:
            return None
        return min(live, key=lambda w: (len(w.outstanding), w.order))

    async def _run_fit(self, strategy_blob, zoo_blob, target, timeout_s):
        loop = asyncio.get_running_loop()
        deadline = None if timeout_s is None else loop.time() + timeout_s
        attempts, lost_on = 0, "<none>"
        while True:
            worker = self._pick_worker()
            if worker is None:
                if attempts:
                    self._count("crash")
                    raise FitWorkerCrashError(
                        f"fit worker {lost_on} died while fitting target "
                        f"{target!r} and no live worker remains to retry on"
                    )
                self._count("no_workers")
                raise NoWorkersError(
                    f"no live fit workers registered for target {target!r} "
                    f"— start one with `repro fit-worker --connect "
                    f"{self._host}:{self.address[1] if self.address else '?'}`"
                )
            attempts += 1
            if attempts > 1:
                self._count("retry")
            fit_id = f"f{next(self._fit_seq)}"
            pending = _Pending(fit_id, target, loop.create_future())
            self._pending[fit_id] = pending
            worker.outstanding[fit_id] = pending
            try:
                async with worker.write_lock:
                    await wire.write_frame(
                        worker.writer,
                        wire.Fit(fit_id, target, strategy_blob, zoo_blob),
                    )
            except (ConnectionError, OSError, WireError):
                self._pending.pop(fit_id, None)
                worker.outstanding.pop(fit_id, None)
                self._lose_worker(worker, "write failed")
                lost_on = worker.worker_id
                continue
            remaining = None if deadline is None else max(0.0, deadline - loop.time())
            try:
                result = await asyncio.wait_for(pending.future, remaining)
            except asyncio.TimeoutError:
                # Late results for this fit_id are discarded in _resolve;
                # the worker finishes as an orphan, like the process pool.
                self._pending.pop(fit_id, None)
                worker.outstanding.pop(fit_id, None)
                self._count("timeout")
                raise FitTimeoutError(
                    f"fit for target {target!r} exceeded {timeout_s:.1f}s "
                    f"in the fleet"
                ) from None
            except _WorkerLost as lost:
                lost_on = worker.worker_id
                if attempts < 2:
                    continue  # retry once on another live worker
                self._count("crash")
                raise FitWorkerCrashError(
                    f"fit worker died while fitting target {target!r} "
                    f"({lost}; retry exhausted)"
                ) from None
            except BaseException:
                self._count("fit_error")
                raise
            self._count("ok")
            return result


def _revive_error(frame) -> BaseException:
    """The exception a FIT_ERROR frame sheds its coalesced group with.

    The frame names the exception as ``(exc_module, exc_type, message)``
    strings — the coordinator never unpickles worker-supplied bytes, so
    a worker cannot make the gateway execute code.  Types importable
    from ``builtins`` or this package's own ``repro.*`` modules re-raise
    with their original type (matching the process plane); anything else
    — third-party or test-local exception classes, or constructors that
    reject a lone message argument — degrades to RuntimeError carrying
    the worker's message, and worker-side plane failures (zoo hydration,
    unencodable payloads) stay typed :class:`FitPlaneError`.
    """
    module, type_name = frame.exc_module, frame.exc_type
    if type_name and (module == "builtins" or module.startswith("repro.")):
        try:
            candidate = getattr(importlib.import_module(module), type_name, None)
        except ImportError:
            candidate = None
        if (
            isinstance(candidate, type)
            and issubclass(candidate, BaseException)
            and not issubclass(candidate, (SystemExit, KeyboardInterrupt))
        ):
            try:
                return candidate(frame.message)
            except Exception:
                pass  # constructor wants more than a message
    if frame.kind == "plane":
        return FitPlaneError(frame.message)
    prefix = f"{type_name}: " if type_name else ""
    return RuntimeError(f"{prefix}{frame.message}")
