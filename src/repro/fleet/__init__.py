"""The fit fleet: distributed cold fitting over the artifact boundary.

PR 7 put cold fits behind the strategy pack/unpack boundary in a
spawn-based process pool; this package lifts the *same* boundary onto a
socket so N machines become a fit fleet (ROADMAP item 1b) — rankings
stay instant at the edge while heavy TransferGraph fitting happens
elsewhere, the operational shape evaluation-free selectors assume.

- :mod:`repro.fleet.errors` — the typed :class:`FitPlaneError` family
  every executor (thread pool, process pool, socket fleet) sheds with;
- :mod:`repro.fleet.work` — the worker-side fit task (hydrate → fit →
  warm → pack) shared by process-pool and socket workers, which is what
  keeps thread/process/socket artifacts byte-identical;
- :mod:`repro.fleet.wire` — the length-prefixed, versioned, byte-stable
  frame protocol (HELLO/CHALLENGE/AUTH/REGISTER/HEARTBEAT/FIT/
  FIT_RESULT/FIT_ERROR) and the mutual HMAC fleet-secret handshake;
- :mod:`repro.fleet.coordinator` — :class:`FleetCoordinator`, the
  gateway-side registry/heartbeat/dispatch loop with least-outstanding
  worker selection and retry-once failover;
- :mod:`repro.fleet.worker` — :class:`FitWorker`, the
  ``repro fit-worker`` daemon.

Layering: ``serving`` imports ``fleet`` (the router's
``fit_executor="socket"`` plane), never the reverse — enforced by the
``import-layering`` rule in ``repro analyze``.
"""

from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.errors import (
    FitPlaneError,
    FitTimeoutError,
    FitWorkerCrashError,
    NoWorkersError,
    WireError,
)
from repro.fleet.work import run_fit, warm_worker, zoo_ref_for
from repro.fleet.worker import FitWorker

__all__ = [
    "FleetCoordinator",
    "FitWorker",
    "FitPlaneError",
    "FitTimeoutError",
    "FitWorkerCrashError",
    "NoWorkersError",
    "WireError",
    "run_fit",
    "warm_worker",
    "zoo_ref_for",
]
