"""Worker-side fit execution: hydrate the zoo, fit, warm, pack.

One module runs the actual cold fit for *every* remote executor — the
spawn-based process pool (:class:`repro.serving.fit_plane.ProcessFitExecutor`)
submits :func:`run_fit` by reference, and the socket fleet's
``repro fit-worker`` daemon (:mod:`repro.fleet.worker`) calls it for
each FIT frame.  Keeping it shared is what makes thread-, process- and
socket-fitted artifacts byte-identical: the payload crossing any
boundary is always the strategy-packed ``(meta, arrays)`` pair plus a
span-record list, never a live pipeline.

Zoo hydration is paid once per zoo fingerprint per worker process:
:data:`_ZOO_CACHE` is a module global, so a long-lived worker re-uses
its hydrated zoo across fits.  Zoos with a :class:`~repro.zoo.ZooConfig`
cross the boundary as a config reference and re-hydrate from the local
disk cache (or a deterministic rebuild); anything else — stub zoos in
tests — ships whole via pickle.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass

from repro.fleet.errors import FitPlaneError
from repro.obs.trace import Trace, activate, deactivate, span
from repro.zoo.cache import load_zoo, zoo_cache_key
from repro.zoo.zoo import ZooConfig, build_zoo

__all__ = ["zoo_ref_for", "run_fit", "warm_worker"]


# ---------------------------------------------------------------------- #
# zoo references: what crosses the boundary instead of a live zoo
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ConfigZooRef:
    """Re-hydrate from a :class:`ZooConfig`: disk cache, else rebuild."""

    config: ZooConfig
    cache_dir: str | None

    @property
    def key(self) -> str:
        return zoo_cache_key(self.config)


@dataclass(frozen=True)
class _PickleZooRef:
    """A directly-pickled zoo (test stubs without a ZooConfig)."""

    payload: bytes
    key: str


def zoo_ref_for(zoo, cache_dir=None):
    """The picklable reference a worker re-hydrates ``zoo`` from.

    Zoos built through :func:`repro.zoo.get_or_build_zoo` carry a
    :class:`ZooConfig` and re-hydrate from the disk cache (or a
    deterministic rebuild); anything else — stub zoos in tests — must
    itself be picklable and ships whole.
    """
    config = getattr(zoo, "config", None)
    if isinstance(config, ZooConfig):
        return _ConfigZooRef(
            config=config, cache_dir=None if cache_dir is None else str(cache_dir)
        )
    try:
        payload = pickle.dumps(zoo)
    except Exception as exc:
        raise FitPlaneError(
            f"zoo {type(zoo).__name__} has no ZooConfig and cannot be "
            f"pickled for a fit worker: {exc}"
        ) from exc
    digest = hashlib.blake2b(payload, digest_size=10).hexdigest()
    return _PickleZooRef(payload=payload, key=f"pickled-{digest}")


# ---------------------------------------------------------------------- #
# worker side (top-level functions: spawn pickles them by reference)
# ---------------------------------------------------------------------- #
#: per-worker-process zoo cache, keyed by zoo fingerprint — hydration
#: (disk load or rebuild) is paid once per worker, not once per fit
_ZOO_CACHE: dict[str, object] = {}


def _hydrate_zoo(ref):
    zoo = _ZOO_CACHE.get(ref.key)
    if zoo is not None:
        return zoo
    if isinstance(ref, _PickleZooRef):
        zoo = pickle.loads(ref.payload)
    else:
        # Mirrors get_or_build_zoo WITHOUT the cache write: concurrent
        # workers racing identical np.savez calls onto one cache path
        # could tear it for a later loader, and the rebuild is
        # deterministic in the config anyway.
        zoo = load_zoo(ref.config, ref.cache_dir)
        if zoo is None:
            zoo = build_zoo(ref.config)
        if ref.config.include_lora:
            zoo.ensure_lora_history()
    _ZOO_CACHE[ref.key] = zoo
    return zoo


def _fit_in_worker(strategy_blob: bytes, zoo_ref, target: str):
    """Worker entrypoint: hydrate, fit, warm, pack.

    The warm predict materialises the target's lazy transferability
    normalisation *before* packing, so the derived scores the fit
    recorded into this process's catalog copy fold back to the parent
    inside the assembler state.  Spans are collected on a local trace
    and returned as records; the parent grafts them onto the live
    request trace (:func:`repro.obs.trace.graft_spans`).
    """
    strategy = pickle.loads(strategy_blob)
    with span("fit.zoo_hydrate"):
        zoo = _hydrate_zoo(zoo_ref)
    fitted = strategy.fit(zoo, target)
    with span("fit.warm_predict"):
        fitted.predict(zoo.model_ids())
    with span("fit.artifact_pack"):
        meta, arrays = strategy.pack(fitted, zoo)
    return meta, arrays


def run_fit(strategy_blob: bytes, zoo_ref, target: str):
    """One remote cold fit; returns ``(meta, arrays, span records)``."""
    trace = Trace("fit-worker", "fit_worker")
    tokens = activate(trace)
    try:
        meta, arrays = _fit_in_worker(strategy_blob, zoo_ref, target)
    finally:
        deactivate(tokens)
        trace.finish()
    return meta, arrays, trace.span_tree()


def warm_worker(zoo_ref, hold_s: float):
    """Pool warmup task: hydrate the zoo, then hold the worker briefly.

    The hold makes N concurrently-submitted warmup tasks land on N
    *distinct* workers with high probability, so every worker pays its
    interpreter start + zoo hydration before traffic arrives instead of
    on its first cold fit.
    """
    if zoo_ref is not None:
        _hydrate_zoo(zoo_ref)
    if hold_s > 0:
        time.sleep(hold_s)
    return True
