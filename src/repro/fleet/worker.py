"""FitWorker: the `repro fit-worker` daemon serving cold fits.

A worker is an asyncio client that connects to a
:class:`~repro.fleet.coordinator.FleetCoordinator`, introduces itself
with HELLO, and then serves FIT frames until the coordinator closes the
connection (or the process dies).  The fit itself —
:func:`repro.fleet.work.run_fit`: hydrate the zoo, fit, warm-predict,
pack — runs in a thread-pool executor so the worker's event loop stays
responsive for heartbeats while a multi-second TG fit is in flight.
Zoo hydration is cached per zoo fingerprint in the process-global
:data:`repro.fleet.work._ZOO_CACHE`, so a long-lived worker pays the
disk load once, exactly like a process-pool worker.

Error discipline mirrors the process plane: an ordinary exception from
``strategy.fit`` ships back inside FIT_ERROR (``kind="fit"``) as its
``(module, type, message)`` strings — never pickled, so the gateway
needs no trust in worker bytes — and re-raises with its original type
in the parent when that names a ``builtins``/``repro.*`` exception,
while worker-side infrastructure failures (zoo hydration, an
unencodable result) ship as ``kind="plane"`` and surface as
:class:`~repro.fleet.errors.FitPlaneError`.  The worker never dies on a
failed fit — only on disconnect.  ``fits_done`` counts *successful*
fits only (failures are visible as FIT_ERROR outcomes on the
coordinator), so healthz summaries mean the same thing on both ends.

When the coordinator was started with a fleet secret, pass the same
``secret`` here: registration then runs the mutual CHALLENGE/AUTH
handshake from :mod:`repro.fleet.wire`, and the worker refuses a
coordinator that cannot prove knowledge of the secret — FIT frames
carry pickled payloads, so the worker must authenticate the
coordinator, not just the reverse.
"""

from __future__ import annotations

import asyncio
import hmac
import os
import pickle
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.fleet import wire
from repro.fleet.errors import FitPlaneError, WireError
from repro.fleet.work import run_fit

__all__ = ["FitWorker"]


class FitWorker:
    """One fit-serving daemon process (or in-process test double).

    Parameters
    ----------
    host, port:
        The coordinator's fleet listener.
    name:
        Human-readable worker name, embedded in the assigned worker id
        (default ``host-pid``).
    concurrency:
        Fits this worker runs at once (executor threads).  The default
        1 keeps one fit per worker — the coordinator's least-outstanding
        dispatch then spreads a multi-target burst across the fleet.
    secret:
        Shared fleet-auth secret (``--fleet-secret`` /
        ``REPRO_FLEET_SECRET``); must match the coordinator's.  None
        registers unauthenticated with an open coordinator — and
        refuses a coordinator that demands authentication.
    echo:
        Optional ``print``-like callable for lifecycle lines (the CLI
        passes one; tests and benchmarks leave it None).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str | None = None,
        concurrency: int = 1,
        secret: str | bytes | None = None,
        echo=None,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.concurrency = concurrency
        self._secret = secret
        self.worker_id: str | None = None
        self.fits_done = 0
        self._outstanding = 0
        self._echo = echo
        #: test hook — False suppresses heartbeats so reaping is testable
        self._send_heartbeats = True

    def _say(self, message: str) -> None:
        if self._echo is not None:
            self._echo(message)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def run(self) -> None:
        """Connect, register, serve fits until the coordinator hangs up."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        pool = ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="fleet-fit"
        )
        write_lock = asyncio.Lock()
        heartbeat_task = None
        # Strong references: the loop only weakly references tasks, so a
        # bare create_task could be collected mid-fit, silently dropping
        # the reply and stranding the coordinator until fit_timeout_s.
        fit_tasks: set[asyncio.Task] = set()
        try:
            nonce = wire.new_nonce()
            await wire.write_frame(
                writer,
                wire.Hello(worker_name=self.name, pid=os.getpid(), nonce=nonce),
            )
            registration = await wire.read_frame(reader)
            if isinstance(registration, wire.Challenge):
                registration = await self._answer_challenge(
                    reader, writer, registration, nonce
                )
            elif self._secret is not None:
                raise FitPlaneError(
                    "coordinator did not request fleet-secret "
                    "authentication but this worker has one configured — "
                    "refusing to take fits from an unauthenticated "
                    "coordinator"
                )
            if not isinstance(registration, wire.Register):
                raise FitPlaneError(
                    f"coordinator answered HELLO with "
                    f"{type(registration).__name__}, not REGISTER"
                )
            self.worker_id = registration.worker_id
            self._say(
                f"fit-worker {self.name!r} registered as "
                f"{self.worker_id} with {self.host}:{self.port} "
                f"(concurrency {self.concurrency})"
            )
            heartbeat_task = asyncio.create_task(
                self._heartbeats(writer, write_lock, registration.heartbeat_interval_s)
            )
            while True:
                frame = await wire.read_frame(reader)
                if isinstance(frame, wire.Fit):
                    task = asyncio.create_task(
                        self._handle_fit(frame, writer, write_lock, pool)
                    )
                    fit_tasks.add(task)
                    task.add_done_callback(fit_tasks.discard)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, WireError):
            self._say(
                f"fit-worker {self.worker_id or self.name!r}: "
                f"coordinator connection closed"
            )
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            for task in fit_tasks:
                task.cancel()
            pool.shutdown(wait=False)
            writer.close()

    async def _answer_challenge(self, reader, writer, challenge, nonce):
        """Mutual auth: verify the coordinator's proof, send ours back."""
        if self._secret is None:
            raise FitPlaneError(
                f"coordinator {self.host}:{self.port} requires a fleet "
                f"secret — start this worker with --fleet-secret / "
                f"REPRO_FLEET_SECRET"
            )
        if not hmac.compare_digest(
            challenge.proof, wire.coordinator_proof(self._secret, nonce)
        ):
            raise FitPlaneError(
                f"coordinator {self.host}:{self.port} failed fleet-secret "
                f"authentication — refusing to take fits from it"
            )
        await wire.write_frame(
            writer, wire.Auth(proof=wire.worker_proof(self._secret, challenge.nonce))
        )
        return await wire.read_frame(reader)

    def run_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread (tests/benchmarks); returns it.

        The thread exits when the coordinator closes the connection —
        closing the coordinator is how a test stops its workers.
        """
        thread = threading.Thread(
            target=lambda: asyncio.run(self.run()),
            name=f"fleet-worker-{self.name}",
            daemon=True,
        )
        thread.start()
        return thread

    # ------------------------------------------------------------------ #
    # frame handlers
    # ------------------------------------------------------------------ #
    async def _heartbeats(self, writer, write_lock, interval_s: float) -> None:
        try:
            while True:
                await asyncio.sleep(interval_s)
                if not self._send_heartbeats:
                    continue
                async with write_lock:
                    await wire.write_frame(
                        writer,
                        wire.Heartbeat(
                            worker_id=self.worker_id,
                            outstanding=self._outstanding,
                            fits_done=self.fits_done,
                        ),
                    )
        except (ConnectionError, OSError):
            pass  # run()'s reader loop notices the dead connection

    def _execute(self, frame: wire.Fit):
        """Runs on the fit executor: unpickle the zoo ref, fit, pack."""
        try:
            zoo_ref = pickle.loads(frame.zoo_blob)
        except Exception as exc:
            raise FitPlaneError(
                f"fit {frame.fit_id}: zoo reference does not unpickle: {exc}"
            ) from exc
        return run_fit(frame.strategy_blob, zoo_ref, frame.target)

    async def _handle_fit(self, frame, writer, write_lock, pool) -> None:
        loop = asyncio.get_running_loop()
        self._outstanding += 1
        try:
            meta, arrays, spans = await loop.run_in_executor(
                pool, self._execute, frame
            )
            reply = wire.FitResult(
                fit_id=frame.fit_id, meta=meta, spans=spans, arrays=arrays
            )
            self.fits_done += 1  # successes only; both ends agree
        except Exception as exc:
            reply = wire.FitError(
                fit_id=frame.fit_id,
                kind="plane" if isinstance(exc, FitPlaneError) else "fit",
                message=str(exc),
                exc_module=type(exc).__module__,
                exc_type=type(exc).__name__,
            )
        finally:
            self._outstanding -= 1
        try:
            async with write_lock:
                await wire.write_frame(writer, reply)
        except WireError as exc:
            # An unencodable FIT_RESULT (non-JSON meta) must still shed
            # the parent's coalesced group typed, not strand it.
            fallback = wire.FitError(
                fit_id=frame.fit_id,
                kind="plane",
                message=f"fit result failed to encode: {exc}",
            )
            try:
                async with write_lock:
                    await wire.write_frame(writer, fallback)
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError):
            pass  # connection died; run()'s reader loop is shutting down
