"""Typed fit-plane failures shared by every cold-fit executor.

These classes started life in :mod:`repro.serving.fit_plane` (the
process fit plane, PR 7) and moved down here when the socket fleet
arrived: the coordinator, the worker daemon, and the process pool all
shed a router's coalesced group with *the same* typed errors, so the
hierarchy has to live below both ``serving`` and ``fleet`` in the
import DAG.  ``repro.serving.fit_plane`` re-exports every name, so
existing ``from repro.serving import FitPlaneError`` imports keep
working unchanged.

The contract, regardless of executor:

- :class:`FitPlaneError` and subclasses mean the *plane* failed — the
  infrastructure running the fit, not the fit itself.  Ordinary
  exceptions raised by ``strategy.fit`` always propagate with their
  original type.
- A plane error sheds the whole coalesced group for its target; the
  router stays serviceable for other targets.
"""

from __future__ import annotations

__all__ = [
    "FitPlaneError",
    "FitWorkerCrashError",
    "FitTimeoutError",
    "NoWorkersError",
    "WireError",
]


class FitPlaneError(RuntimeError):
    """Base class for fit-plane failures (not fit exceptions)."""


class FitWorkerCrashError(FitPlaneError):
    """A worker died mid-fit (process pool broken, or a fleet worker
    disconnected / missed its heartbeats with the fit outstanding and
    no retry succeeded)."""


class FitTimeoutError(FitPlaneError):
    """A fit exceeded ``fit_timeout_s``; its coalesced group is shed."""


class NoWorkersError(FitPlaneError):
    """The fleet has no live registered worker to dispatch a fit to."""


class WireError(FitPlaneError):
    """A malformed or over-sized fleet wire frame; the connection that
    produced it is dropped (treated as a worker death)."""
