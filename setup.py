"""Legacy setup entry point.

The execution environment has no ``wheel`` package and no network, so the
modern PEP 517 editable-install path (which needs ``bdist_wheel``) fails.
``pip install -e . --no-use-pep517`` takes the ``setup.py develop`` route
instead, which this file enables.

``package_data`` ships the PEP 561 ``py.typed`` marker so installed
copies expose the package's inline annotations to type checkers (the
serving protocol and the strategy base are checked under
``mypy --strict`` in CI).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
)
