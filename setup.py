"""Legacy setup entry point.

The execution environment has no ``wheel`` package and no network, so the
modern PEP 517 editable-install path (which needs ``bdist_wheel``) fails.
``pip install -e . --no-use-pep517`` takes the ``setup.py develop`` route
instead, which this file enables.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
