"""SelectionGateway: namespace routing, shard isolation, fleet stats."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import (
    RankRequest,
    RankResponse,
    ScoreBatchRequest,
    SelectionGateway,
    UnknownModelError,
    UnknownNamespaceError,
    UnknownTargetError,
)

from serving_stubs import stub_gateway


@pytest.fixture(scope="module")
def lr_config():
    return TransferGraphConfig(predictor="lr", embedding_dim=16,
                               features=FeatureSet.everything())


def run(coro):
    return asyncio.run(coro)


class TestRouting:
    def test_requests_route_to_their_namespace(self):
        gateway = stub_gateway(names=("alpha", "beta"))
        try:
            a = run(gateway.rank(RankRequest(target="t0",
                                             namespace="alpha")))
            b = run(gateway.rank(RankRequest(target="t0", namespace="beta")))
            assert a.namespace == "alpha" and b.namespace == "beta"
            assert a.ranking == b.ranking  # identical stub zoos
            stats = gateway.stats()
            assert stats.namespaces["alpha"]["queries"] == 1
            assert stats.namespaces["beta"]["queries"] == 1
            assert stats.fleet["queries"] == 2
            assert stats.fleet["namespaces"] == 2.0
        finally:
            gateway.close()

    def test_handle_dispatches_by_request_type(self):
        gateway = stub_gateway(names=("alpha",))
        try:
            rank = run(gateway.handle(RankRequest(target="t0",
                                                  namespace="alpha")))
            batch = run(gateway.handle(ScoreBatchRequest(
                pairs=(("m0", "t0"), ("m1", "t1")), namespace="alpha")))
            assert isinstance(rank, RankResponse)
            assert len(batch.scores) == 2
        finally:
            gateway.close()

    def test_unknown_namespace_is_typed(self):
        gateway = stub_gateway(names=("alpha",))
        try:
            with pytest.raises(UnknownNamespaceError) as exc_info:
                run(gateway.rank(RankRequest(target="t0", namespace="nope")))
            assert exc_info.value.namespace == "nope"
            assert "alpha" in str(exc_info.value)
        finally:
            gateway.close()

    def test_unknown_target_and_model_are_typed(self):
        gateway = stub_gateway(names=("alpha",))
        try:
            with pytest.raises(UnknownTargetError):
                run(gateway.rank(RankRequest(target="zzz",
                                             namespace="alpha")))
            with pytest.raises(UnknownModelError):
                run(gateway.score_batch(ScoreBatchRequest(
                    pairs=(("not_a_model", "t0"),), namespace="alpha")))
        finally:
            gateway.close()

    def test_rejects_duplicate_and_bad_names(self):
        gateway = stub_gateway(names=("alpha",))
        try:
            from serving_stubs import StubZoo
            # '..'/'.' would escape the registry shard root as a path
            # segment; slugs must start alphanumeric.
            for bad in ("", "a/b", " padded ", "..", ".", ".hidden",
                        "a\\b"):
                with pytest.raises(ValueError):
                    gateway.add_namespace(bad, StubZoo())
            with pytest.raises(ValueError):
                gateway.add_namespace("alpha", StubZoo())
        finally:
            gateway.close()

    def test_source_datasets_are_not_servable_targets(self, tiny_image_zoo,
                                                      lr_config):
        """The gateway enforces the CLI's contract: only *target*
        datasets rank; a source dataset must not burn a cold fit."""
        gateway = SelectionGateway()
        gateway.add_namespace("image", tiny_image_zoo, lr_config)
        source = tiny_image_zoo.source_names()[0]
        try:
            with pytest.raises(UnknownTargetError):
                run(gateway.rank(RankRequest(target=source,
                                             namespace="image")))
            assert gateway.stats().fleet["fits"] == 0
        finally:
            gateway.close()


class TestRegistrySharding:
    def test_namespaces_get_disjoint_shards(self, tiny_image_zoo, lr_config,
                                            tmp_path):
        """Two namespaces over one zoo+config never share artifacts:
        shards are keyed by (namespace, config fingerprint)."""
        gateway = SelectionGateway(registry_root=tmp_path)
        gateway.add_namespace("one", tiny_image_zoo, lr_config)
        gateway.add_namespace("two", tiny_image_zoo, lr_config)
        target = tiny_image_zoo.target_names()[0]
        try:
            run(gateway.rank(RankRequest(target=target, namespace="one")))
            one, two = gateway.service("one"), gateway.service("two")
            assert one.registry.root == tmp_path / "one"
            assert two.registry.root == tmp_path / "two"
            assert one.registry.targets(lr_config) == [target]
            assert two.registry.targets(lr_config) == []

            # namespace "two" must cold-fit despite "one"'s artifact
            run(gateway.rank(RankRequest(target=target, namespace="two")))
            stats = gateway.stats()
            assert stats.namespaces["two"]["fits"] == 1
            assert stats.namespaces["two"]["registry_hits"] == 0
        finally:
            gateway.close()


class TestWarmPathParity:
    def test_gateway_matches_selection_service_exactly(self, tiny_image_zoo,
                                                       tiny_text_zoo,
                                                       lr_config):
        """Acceptance: two live namespaces (distinct zoos), warm-path
        rankings identical to the namespace's SelectionService.rank."""
        gateway = SelectionGateway()
        gateway.add_namespace("image", tiny_image_zoo, lr_config)
        gateway.add_namespace("text", tiny_text_zoo, lr_config)
        try:
            for namespace, zoo in (("image", tiny_image_zoo),
                                   ("text", tiny_text_zoo)):
                target = zoo.target_names()[0]
                request = RankRequest(target=target, namespace=namespace)
                cold = run(gateway.rank(request))      # fits the pipeline
                warm = run(gateway.rank(request))      # served from memory
                expected = gateway.service(namespace).rank(target)
                assert warm.ranking == tuple(expected)  # bit-exact floats
                assert cold.ranking == warm.ranking
        finally:
            gateway.close()


class TestLifecycle:
    def test_close_closes_every_router(self):
        gateway = stub_gateway(names=("alpha", "beta"))
        gateway.close()
        with pytest.raises(RuntimeError):
            run(gateway.rank(RankRequest(target="t0", namespace="alpha")))

    def test_async_context_manager(self):
        async def scenario():
            async with stub_gateway(names=("alpha",)) as gateway:
                return await gateway.rank(RankRequest(target="t0",
                                                      namespace="alpha"))

        response = run(scenario())
        assert response.ranking[0][0] == "m0"
