"""HTTP front door: live loopback round-trips, typed failures, 429s.

Every test starts a real :class:`GatewayHTTPServer` on an ephemeral
loopback port and talks raw HTTP/1.1 over ``asyncio.open_connection`` —
no HTTP client library, mirroring the server's no-dependency stance.
"""

from __future__ import annotations

import asyncio
import json

from repro.serving import (
    ErrorResponse,
    GatewayHTTPServer,
    RankRequest,
    RankResponse,
    ScoreBatchResponse,
    StatsResponse,
)

from serving_stubs import stub_gateway


def run(coro):
    return asyncio.run(coro)


async def http_request(host, port, method, path, body=None,
                       raw_head: str | None = None):
    """One HTTP/1.1 exchange; returns (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if raw_head is not None:
            writer.write(raw_head.encode())
        else:
            payload = body.encode() if isinstance(body, str) else (body or b"")
            head = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
            if payload:
                head.append(f"Content-Length: {len(payload)}")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head_raw, _, body_raw = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body_raw


async def serve(gateway):
    """Started server bound to an ephemeral loopback port."""
    server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
    await server.start()
    return server


class TestEndpoints:
    def test_healthz(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha", "beta"))
            try:
                server = await serve(gateway)
                host, port = server.address
                status, headers, body = await http_request(
                    host, port, "GET", "/v1/healthz")
                await server.close()
                return status, headers, json.loads(body)
            finally:
                gateway.close()

        status, headers, payload = run(scenario())
        assert status == 200
        assert headers["content-type"] == "application/json"
        zero_cost = {"fit_ms_p50": 0.0, "fit_ms_p95": 0.0,
                     "fits_timed": 0.0}
        assert payload == {"namespaces": ["alpha", "beta"],
                           "protocol": "v1", "status": "ok",
                           "strategies": {"alpha": ["tg:lr,n2v,all"],
                                          "beta": ["tg:lr,n2v,all"]},
                           "fit_ms": {
                               "alpha": {"tg:lr,n2v,all": zero_cost},
                               "beta": {"tg:lr,n2v,all": zero_cost}}}

    def test_rank_round_trip(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = await serve(gateway)
                host, port = server.address
                status, _, body = await http_request(
                    host, port, "POST", "/v1/rank",
                    body='{"namespace": "alpha", "target": "t0", "top_k": 2}')
                await server.close()
                return status, body, gateway.service("alpha").rank("t0",
                                                                   top_k=2)
            finally:
                gateway.close()

        status, body, expected = run(scenario())
        assert status == 200
        response = RankResponse.from_json(body)
        assert response.namespace == "alpha"
        assert response.target == "t0"
        assert response.ranking == tuple(expected)  # bit-exact parity

    def test_score_batch_round_trip(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = await serve(gateway)
                host, port = server.address
                request = {"namespace": "alpha",
                           "pairs": [["m0", "t0"], ["m2", "t1"]]}
                status, _, body = await http_request(
                    host, port, "POST", "/v1/score_batch",
                    body=json.dumps(request))
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 200
        response = ScoreBatchResponse.from_json(body)
        assert response.pairs == (("m0", "t0"), ("m2", "t1"))
        assert len(response.scores) == 2

    def test_expect_100_continue_gets_interim_reply(self):
        """curl sends Expect: 100-continue for larger bodies and stalls
        ~1 s unless the server answers the interim 100."""
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = await serve(gateway)
                host, port = server.address
                payload = b'{"namespace": "alpha", "target": "t0"}'
                head = (f"POST /v1/rank HTTP/1.1\r\nHost: {host}\r\n"
                        f"Expect: 100-continue\r\n"
                        f"Content-Length: {len(payload)}\r\n\r\n")
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(head.encode())
                    await writer.drain()
                    interim = await reader.readuntil(b"\r\n\r\n")
                    writer.write(payload)
                    await writer.drain()
                    final = await reader.read()
                finally:
                    writer.close()
                await server.close()
                return interim, final
            finally:
                gateway.close()

        interim, final = run(scenario())
        assert interim.startswith(b"HTTP/1.1 100 Continue")
        assert final.startswith(b"HTTP/1.1 200 OK")
        assert b'"kind":"rank_response"' in final

    def test_stats_reports_served_traffic(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha", "beta"))
            try:
                server = await serve(gateway)
                host, port = server.address
                await http_request(
                    host, port, "POST", "/v1/rank",
                    body='{"namespace": "alpha", "target": "t0"}')
                status, _, body = await http_request(host, port, "GET",
                                                     "/v1/stats")
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 200
        stats = StatsResponse.from_json(body)
        assert stats.namespaces["alpha"]["queries"] == 1
        assert stats.namespaces["beta"]["queries"] == 0
        assert stats.fleet["queries"] == 1


class TestTypedFailures:
    def _exchange(self, method, path, body=None, raw_head=None,
                  names=("alpha",)):
        async def scenario():
            gateway = stub_gateway(names=names)
            try:
                server = await serve(gateway)
                host, port = server.address
                result = await http_request(host, port, method, path,
                                            body=body, raw_head=raw_head)
                await server.close()
                return result
            finally:
                gateway.close()

        return run(scenario())

    def test_malformed_json_is_structured_400(self):
        status, _, body = self._exchange("POST", "/v1/rank",
                                         body="{not json at all")
        assert status == 400
        error = ErrorResponse.from_json(body)
        assert error.code == "bad_request"

    def test_validation_failure_is_structured_400(self):
        status, _, body = self._exchange(
            "POST", "/v1/rank", body='{"target": "t0", "bogus": true}')
        assert status == 400
        assert ErrorResponse.from_json(body).code == "bad_request"

    def test_unknown_namespace_is_structured_404(self):
        status, _, body = self._exchange(
            "POST", "/v1/rank",
            body='{"namespace": "nope", "target": "t0"}')
        assert status == 404
        error = ErrorResponse.from_json(body)
        assert error.code == "unknown_namespace"
        assert "nope" in error.message

    def test_unknown_target_is_structured_404(self):
        status, _, body = self._exchange(
            "POST", "/v1/rank",
            body='{"namespace": "alpha", "target": "zzz"}')
        assert status == 404
        assert ErrorResponse.from_json(body).code == "unknown_target"

    def test_unknown_route_and_method(self):
        status, _, body = self._exchange("GET", "/v2/rank")
        assert status == 404
        assert ErrorResponse.from_json(body).code == "not_found"

        status, headers, body = self._exchange("GET", "/v1/rank")
        assert status == 405
        assert headers["allow"] == "POST"
        assert ErrorResponse.from_json(body).code == "method_not_allowed"

    def test_malformed_request_line(self):
        status, _, body = self._exchange(
            None, None, raw_head="BANANAS\r\n\r\n")
        assert status == 400
        assert ErrorResponse.from_json(body).code == "bad_request"

    def test_idle_connection_times_out_without_response(self):
        """A connection that never sends a request (probe/slowloris)
        must be dropped by the read timeout, not pinned forever."""
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = GatewayHTTPServer(gateway, "127.0.0.1", 0,
                                           read_timeout_s=0.2)
                await server.start()
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    # no request bytes at all; server must hang up
                    raw = await asyncio.wait_for(reader.read(), timeout=5)
                finally:
                    writer.close()
                await server.close()
                return raw
            finally:
                gateway.close()

        assert run(scenario()) == b""  # dropped, no 500 invented

    def test_oversized_body_is_413(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = GatewayHTTPServer(gateway, "127.0.0.1", 0,
                                           max_body_bytes=64)
                await server.start()
                host, port = server.address
                result = await http_request(host, port, "POST", "/v1/rank",
                                            body="x" * 65)
                await server.close()
                return result
            finally:
                gateway.close()

        status, _, body = run(scenario())
        assert status == 413
        assert ErrorResponse.from_json(body).code == "payload_too_large"


class TestTwoZooAcceptance:
    def test_two_real_namespaces_serve_byte_identical_rankings(
            self, tiny_image_zoo, tiny_text_zoo):
        """Acceptance: a gateway with two distinct zoos over live HTTP
        answers rank with bodies byte-identical to the in-process
        SelectionService for the same (namespace, target)."""
        from repro.core import FeatureSet, TransferGraphConfig
        from repro.serving import SelectionGateway

        config = TransferGraphConfig(predictor="lr", embedding_dim=16,
                                     features=FeatureSet.everything())
        gateway = SelectionGateway()
        gateway.add_namespace("image", tiny_image_zoo, config)
        gateway.add_namespace("text", tiny_text_zoo, config)

        async def scenario():
            server = await serve(gateway)
            host, port = server.address
            exchanges = {}
            for namespace, zoo in (("image", tiny_image_zoo),
                                   ("text", tiny_text_zoo)):
                target = zoo.target_names()[0]
                body = json.dumps({"namespace": namespace,
                                   "target": target})
                await http_request(host, port, "POST", "/v1/rank",
                                   body=body)          # cold fit
                status, _, warm = await http_request(
                    host, port, "POST", "/v1/rank", body=body)
                exchanges[namespace] = (status, target, warm)
            await server.close()
            return exchanges

        try:
            exchanges = run(scenario())
            for namespace in ("image", "text"):
                status, target, body = exchanges[namespace]
                assert status == 200
                served = RankResponse.from_json(body)
                expected = gateway.service(namespace).rank(target)
                assert served.ranking == tuple(expected)  # bit-exact
                # and the wire encoding itself is stable
                assert RankResponse.from_json(
                    served.to_json()).to_json() == body.decode()
        finally:
            gateway.close()


class TestBackpressure:
    def test_saturated_queue_is_429_with_retry_after(self):
        """Concurrent cold ranks for distinct targets overflow a
        one-slot fit queue: shed requests get 429 + Retry-After."""
        async def scenario():
            gateway = stub_gateway(names=("alpha",), fit_seconds=0.3,
                                   max_pending_fits=1, retry_after_s=0.25)
            try:
                server = await serve(gateway)
                host, port = server.address

                async def rank(target):
                    return await http_request(
                        host, port, "POST", "/v1/rank",
                        body=json.dumps({"namespace": "alpha",
                                         "target": target}))

                results = await asyncio.gather(rank("t0"), rank("t1"),
                                               rank("t2"))
                await server.close()
                return results
            finally:
                gateway.close()

        results = run(scenario())
        shed = [(headers, body) for status, headers, body in results
                if status == 429]
        served = [body for status, _, body in results if status == 200]
        assert len(served) >= 1 and len(shed) >= 1
        assert len(served) + len(shed) == 3
        for headers, body in shed:
            error = ErrorResponse.from_json(body)
            assert error.code == "queue_full"
            assert error.retry_after_s >= 0.25
            # integral header ceiling of the machine-readable hint
            assert int(headers["retry-after"]) >= 1


class TestStrategyRouting:
    """The additive strategy field, end to end over the wire."""

    def test_explicit_strategy_served_byte_identical(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",), strategies=("random",))
            try:
                server = await serve(gateway)
                host, port = server.address
                request = RankRequest(target="t0", namespace="alpha",
                                      strategy="random", top_k=2)
                status, _, body = await http_request(
                    host, port, "POST", "/v1/rank", body=request.to_json())
                await server.close()
                expected = gateway.service("alpha", "random") \
                    .handle(request).to_json()
                return status, body, expected
            finally:
                gateway.close()

        status, body, expected = run(scenario())
        assert status == 200
        assert body.decode() == expected          # wire == in-process
        response = RankResponse.from_json(body)
        assert response.strategy == "random"

    def test_healthz_lists_the_strategy_map(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",), strategies=("random",))
            try:
                server = await serve(gateway)
                host, port = server.address
                _, _, body = await http_request(host, port, "GET",
                                                "/v1/healthz")
                await server.close()
                return json.loads(body)
            finally:
                gateway.close()

        payload = run(scenario())
        assert payload["strategies"] == {
            "alpha": ["tg:lr,n2v,all", "random"]}

    def test_unknown_strategy_is_a_typed_404(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = await serve(gateway)
                host, port = server.address
                status, _, body = await http_request(
                    host, port, "POST", "/v1/rank",
                    body='{"namespace": "alpha", "target": "t0", '
                         '"strategy": "nope"}')
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 404
        error = ErrorResponse.from_json(body)
        assert error.code == "unknown_strategy"
        assert "nope" in error.message

    def test_invalid_strategy_type_is_a_400(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = await serve(gateway)
                host, port = server.address
                status, _, body = await http_request(
                    host, port, "POST", "/v1/rank",
                    body='{"namespace": "alpha", "target": "t0", '
                         '"strategy": 7}')
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 400
        assert ErrorResponse.from_json(body).code == "bad_request"


class TestCompareEndpoint:
    """POST /v1/compare: the strategy-map fan-out over the wire."""

    def test_compare_round_trip(self):
        from repro.serving import CompareResponse

        async def scenario():
            gateway = stub_gateway(names=("alpha",), strategies=("random",))
            try:
                server = await serve(gateway)
                host, port = server.address
                status, _, body = await http_request(
                    host, port, "POST", "/v1/compare",
                    body='{"namespace": "alpha", "target": "t0"}')
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 200
        response = CompareResponse.from_json(body)
        assert response.namespace == "alpha"
        assert response.target == "t0"
        assert response.reference == "tg:lr,n2v,all"
        assert set(response.results) == {"tg:lr,n2v,all", "random"}
        reference = response.results[response.reference]
        assert reference.status == "ok"
        assert reference.pearson == 1.0
        assert reference.top_k_overlap == 1.0
        assert "p95_ms" in reference.latency
        # the wire bytes survive a decode/encode cycle unchanged
        assert response.to_json() == body.decode()

    def test_compare_unknown_strategy_is_a_typed_404(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = await serve(gateway)
                host, port = server.address
                status, _, body = await http_request(
                    host, port, "POST", "/v1/compare",
                    body='{"namespace": "alpha", "target": "t0", '
                         '"strategies": ["nope"]}')
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 404
        error = ErrorResponse.from_json(body)
        assert error.code == "unknown_strategy"
        assert "nope" in error.message

    def test_compare_empty_strategy_map_is_a_typed_400(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = await serve(gateway)
                host, port = server.address
                status, _, body = await http_request(
                    host, port, "POST", "/v1/compare",
                    body='{"namespace": "alpha", "target": "t0", '
                         '"strategies": []}')
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 400
        error = ErrorResponse.from_json(body)
        assert error.code == "bad_request"
        assert "non-empty" in error.message

    def test_compare_unknown_namespace_is_a_typed_404(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = await serve(gateway)
                host, port = server.address
                status, _, body = await http_request(
                    host, port, "POST", "/v1/compare",
                    body='{"namespace": "ghost", "target": "t0"}')
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 404
        assert ErrorResponse.from_json(body).code == "unknown_namespace"

    def test_compare_marks_shed_strategy_instead_of_429(self):
        from repro.serving import CompareResponse, QueueFullError

        async def scenario():
            gateway = stub_gateway(names=("alpha",), strategies=("random",))
            try:
                router = gateway.router("alpha", "random")

                async def shed_rank(target, top_k=None):
                    raise QueueFullError("queue full", retry_after_s=3.0)

                router.rank = shed_rank
                server = await serve(gateway)
                host, port = server.address
                status, _, body = await http_request(
                    host, port, "POST", "/v1/compare",
                    body='{"namespace": "alpha", "target": "t0"}')
                await server.close()
                return status, body
            finally:
                gateway.close()

        status, body = run(scenario())
        assert status == 200  # partial failure is still an answer
        response = CompareResponse.from_json(body)
        assert response.results["random"].status == "shed"
        assert response.results["random"].retry_after_s == 3.0
        assert response.results["tg:lr,n2v,all"].status == "ok"
