"""Tests for repro.utils.tabular — encoders and the feature-matrix builder."""

import numpy as np
import pytest

from repro.utils import FeatureMatrixBuilder, OneHotEncoder, StandardScaler


class TestOneHotEncoder:
    def test_round_trip(self):
        enc = OneHotEncoder().fit(["vit", "resnet", "vit"])
        out = enc.transform(["resnet", "vit"])
        assert out.shape == (2, 2)
        assert out[0].tolist() == [1.0, 0.0]
        assert out[1].tolist() == [0.0, 1.0]

    def test_unknown_category_maps_to_zero(self):
        enc = OneHotEncoder().fit(["a", "b"])
        out = enc.transform(["c"])
        assert out.sum() == 0.0

    def test_stable_category_order(self):
        enc1 = OneHotEncoder().fit(["b", "a", "c"])
        enc2 = OneHotEncoder().fit(["c", "b", "a"])
        assert enc1.categories_ == enc2.categories_

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform(["a"])

    def test_feature_names(self):
        enc = OneHotEncoder().fit(["x", "y"])
        assert enc.feature_names("arch") == ["arch=x", "arch=y"]


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        m = rng.normal(3.0, 2.0, size=(100, 4))
        scaled = StandardScaler().fit_transform(m)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_maps_to_zero(self):
        m = np.hstack([np.ones((10, 1)), np.arange(10.0).reshape(-1, 1)])
        scaled = StandardScaler().fit_transform(m)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_transform_checks_width(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ValueError, match="columns"):
            scaler.transform(np.ones((5, 4)))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestFeatureMatrixBuilder:
    def test_mixed_columns(self):
        builder = FeatureMatrixBuilder()
        builder.add_numeric("params", [1.0, 2.0])
        builder.add_categorical("arch", ["vit", "resnet"])
        builder.add_embedding("emb", np.eye(2))
        X, names = builder.build()
        assert X.shape == (2, 1 + 2 + 2)
        assert names == ["params", "arch=resnet", "arch=vit", "emb[0]", "emb[1]"]

    def test_row_count_mismatch_raises(self):
        builder = FeatureMatrixBuilder()
        builder.add_numeric("a", [1.0, 2.0])
        with pytest.raises(ValueError, match="rows"):
            builder.add_numeric("b", [1.0, 2.0, 3.0])

    def test_empty_build_raises(self):
        with pytest.raises(ValueError):
            FeatureMatrixBuilder().build()

    def test_encoder_reuse_aligns_columns(self):
        train = FeatureMatrixBuilder()
        train.add_categorical("arch", ["vit", "resnet", "swin"])
        encoders = train.encoders()

        predict = FeatureMatrixBuilder()
        predict.add_categorical("arch", ["swin"], encoder=encoders["arch"])
        X, names = predict.build()
        assert X.shape == (1, 3)
        assert names == ["arch=resnet", "arch=swin", "arch=vit"]
        assert X[0].tolist() == [0.0, 1.0, 0.0]

    def test_embedding_must_be_2d(self):
        builder = FeatureMatrixBuilder()
        with pytest.raises(ValueError):
            builder.add_embedding("e", np.ones(3))
