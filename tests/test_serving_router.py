"""AsyncSelectionRouter: coalescing, backpressure, result correctness.

The deterministic concurrency tests (overflow, error propagation) run
against a stub service whose "fit" is a controllable sleep, so queue
states are forced rather than raced; the integration tests run real fits
on the shared tiny zoo.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import (
    AsyncSelectionRouter,
    QueueFullError,
    RouterStats,
    SelectionService,
    WorkloadConfig,
    generate_workload,
    replay_async,
    replay_concurrent,
)

from serving_stubs import stub_service


@pytest.fixture(scope="module")
def lr_config():
    return TransferGraphConfig(predictor="lr", embedding_dim=16,
                               features=FeatureSet.everything())


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------- #
# coalescing
# ---------------------------------------------------------------------- #
class TestCoalescing:
    def test_fifty_concurrent_cold_ranks_fit_once(self, tiny_image_zoo,
                                                  lr_config):
        """The headline invariant: N concurrent misses, exactly one fit."""
        service = SelectionService(tiny_image_zoo, lr_config)
        router = AsyncSelectionRouter(service)
        target = tiny_image_zoo.target_names()[0]

        async def storm():
            return await asyncio.gather(
                *(router.rank(target, top_k=3) for _ in range(50)))

        rankings = run(storm())
        stats = router.stats()
        router.close()
        assert stats["fits"] == 1
        assert stats["cold_fits"] == 1
        assert stats["coalesced"] == 49
        assert stats["queries"] == 50
        assert all(r == rankings[0] for r in rankings)

    def test_mixed_target_storm_fits_once_per_target(self, tiny_image_zoo,
                                                     lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        router = AsyncSelectionRouter(service)
        targets = tiny_image_zoo.target_names()

        async def storm():
            requests = [router.rank(t) for t in targets for _ in range(10)]
            return await asyncio.gather(*requests)

        run(storm())
        stats = router.stats()
        router.close()
        assert stats["fits"] == len(targets)
        assert stats["coalesced"] == 9 * len(targets)
        assert stats["queries"] == 10 * len(targets)

    def test_coalesced_waiters_hold_no_queue_slot(self):
        """Same-key waiters must never trip the cold-fit bound."""
        service = stub_service(fit_seconds=0.05)
        router = AsyncSelectionRouter(service, max_pending_fits=1)

        async def storm():
            return await asyncio.gather(
                *(router.rank("t0") for _ in range(10)))

        run(storm())
        stats = router.stats()
        router.close()
        assert stats["fits"] == 1
        assert stats["rejections"] == 0
        assert stats["coalesced"] == 9
        assert stats["peak_pending_fits"] == 1

    def test_fit_failure_propagates_then_recovers(self):
        """All coalesced waiters see the originator's error; the key is
        not poisoned — the next request refits."""
        service = stub_service(fit_seconds=0.02, fail_first=1)
        router = AsyncSelectionRouter(service)

        async def storm():
            return await asyncio.gather(
                *(router.rank("t0") for _ in range(5)),
                return_exceptions=True)

        results = run(storm())
        assert all(isinstance(r, RuntimeError) for r in results)

        recovered = run(router.rank("t0"))
        router.close()
        assert recovered[0][0] == "m0"

    def test_unknown_target_raises(self, tiny_image_zoo, lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        router = AsyncSelectionRouter(service)
        with pytest.raises(KeyError):
            run(router.rank("not_a_dataset"))
        router.close()


# ---------------------------------------------------------------------- #
# backpressure
# ---------------------------------------------------------------------- #
class TestBackpressure:
    def test_reject_overflow_sheds_with_retry_hint(self):
        service = stub_service(fit_seconds=0.1)
        router = AsyncSelectionRouter(service, max_pending_fits=1,
                                      overflow="reject", retry_after_s=0.25)

        async def storm():
            return await asyncio.gather(
                router.rank("t0"), router.rank("t1"), router.rank("t2"),
                return_exceptions=True)

        results = run(storm())
        stats = router.stats()
        router.close()
        shed = [r for r in results if isinstance(r, QueueFullError)]
        served = [r for r in results if isinstance(r, list)]
        assert len(shed) == 2 and len(served) == 1
        assert all(exc.retry_after_s >= 0.25 for exc in shed)
        assert stats["rejections"] == 2
        assert stats["fits"] == 1
        assert stats["peak_pending_fits"] == 1

    def test_wait_overflow_coalesces_same_key(self):
        """Same-key requests arriving while the originator waits for a
        queue slot must coalesce, never start a second fit (regression:
        the future used to be registered only after admission, so the
        capacity wait opened a double-fit + KeyError window)."""
        service = stub_service(fit_seconds=0.05)
        router = AsyncSelectionRouter(service, max_pending_fits=1,
                                      overflow="wait")

        async def storm():
            # "A" twice and "B" twice, while "t0" occupies the only slot.
            return await asyncio.gather(
                router.rank("t0"), router.rank("t1"), router.rank("t1"),
                router.rank("t2"), router.rank("t2"))

        results = run(storm())
        stats = router.stats()
        router.close()
        assert len(results) == 5
        assert stats["fits"] == 3          # one per distinct target
        assert stats["coalesced"] == 2
        assert stats["peak_pending_fits"] == 1

    def test_rejection_leaves_no_poisoned_inflight_entry(self):
        """A shed request must clean up its pre-registered future so the
        key refits normally once capacity frees up."""
        service = stub_service(fit_seconds=0.05)
        router = AsyncSelectionRouter(service, max_pending_fits=1,
                                      overflow="reject")

        async def scenario():
            blocker = asyncio.ensure_future(router.rank("t0"))
            await asyncio.sleep(0.01)       # t0 now holds the only slot
            with pytest.raises(QueueFullError):
                await router.rank("t1")     # shed at admission
            await blocker                   # slot frees
            return await router.rank("t1")  # must fit cleanly now

        ranking = run(scenario())
        stats = router.stats()
        router.close()
        assert ranking[0][0] == "m0"
        assert stats["fits"] == 2
        assert stats["rejections"] == 1

    def test_wait_overflow_serves_everyone(self):
        service = stub_service(fit_seconds=0.05)
        router = AsyncSelectionRouter(service, max_pending_fits=1,
                                      overflow="wait")

        async def storm():
            return await asyncio.gather(
                *(router.rank(t) for t in ("t0", "t1", "t2", "t3")))

        results = run(storm())
        stats = router.stats()
        router.close()
        assert len(results) == 4
        assert stats["fits"] == 4
        assert stats["rejections"] == 0
        assert stats["peak_pending_fits"] == 1  # the bound held

    def test_warmup_never_sheds(self):
        service = stub_service(fit_seconds=0.02)
        router = AsyncSelectionRouter(service, max_pending_fits=1,
                                      overflow="reject")
        timings = run(router.warmup())
        stats = router.stats()
        router.close()
        assert sorted(timings) == ["t0", "t1", "t2", "t3"]
        assert stats["rejections"] == 0
        assert stats["fits"] == 4
        assert stats["queries"] == 0  # warmup is not traffic

    def test_rejects_bad_parameters(self):
        service = stub_service()
        with pytest.raises(ValueError):
            AsyncSelectionRouter(service, max_pending_fits=0)
        with pytest.raises(ValueError):
            AsyncSelectionRouter(service, overflow="panic")
        with pytest.raises(ValueError):
            AsyncSelectionRouter(service, fit_workers=0)


# ---------------------------------------------------------------------- #
# result correctness vs the serial facade
# ---------------------------------------------------------------------- #
class TestCorrectness:
    def test_rank_matches_serial_service(self, tiny_image_zoo, lr_config):
        target = tiny_image_zoo.target_names()[0]
        serial = SelectionService(tiny_image_zoo, lr_config)
        expected = serial.rank(target, top_k=4)

        router = AsyncSelectionRouter(
            SelectionService(tiny_image_zoo, lr_config))
        got = run(router.rank(target, top_k=4))
        router.close()
        assert [m for m, _ in got] == [m for m, _ in expected]
        assert [s for _, s in got] == pytest.approx(
            [s for _, s in expected], rel=1e-12)

    def test_score_batch_matches_serial_service(self, tiny_image_zoo,
                                                lr_config):
        t1, t2 = tiny_image_zoo.target_names()[:2]
        models = tiny_image_zoo.model_ids()
        pairs = [(models[0], t1), (models[1], t2), (models[2], t1)]
        expected = SelectionService(tiny_image_zoo, lr_config).score_batch(
            pairs)

        router = AsyncSelectionRouter(
            SelectionService(tiny_image_zoo, lr_config))
        got = run(router.score_batch(pairs))
        router.close()
        assert got == pytest.approx(expected, rel=1e-12)

    def test_score_batch_empty(self):
        router = AsyncSelectionRouter(stub_service())
        assert run(router.score_batch([])).shape == (0,)
        router.close()

    def test_stats_merge_service_and_router_fields(self):
        router = AsyncSelectionRouter(stub_service())
        run(router.rank("t0"))
        stats = router.stats()
        router.close()
        for key in ("queries", "hit_rate", "p50_ms",          # service
                    "coalesced", "rejections", "peak_pending_fits",
                    "fit_p95_ms", "predict_p95_ms"):          # router
            assert key in stats

    def test_router_reusable_across_event_loops(self):
        """serve-sim style: sequential asyncio.run calls on one router."""
        router = AsyncSelectionRouter(stub_service())
        first = run(router.rank("t0"))
        second = run(router.rank("t0"))
        stats = router.stats()
        router.close()
        assert first == second
        assert stats["fits"] == 1
        assert stats["cache_hits"] == 1

    def test_closed_router_refuses_requests(self):
        router = AsyncSelectionRouter(stub_service())
        router.close()
        with pytest.raises(RuntimeError):
            run(router.rank("t0"))


# ---------------------------------------------------------------------- #
# async workload replay
# ---------------------------------------------------------------------- #
class TestAsyncReplay:
    def test_shared_replay_coalesces_fits(self, tiny_image_zoo, lr_config):
        """8 clients replaying one stream cost one fit per cold target."""
        workload = generate_workload(
            tiny_image_zoo, WorkloadConfig(num_queries=20, seed=3))
        router = AsyncSelectionRouter(
            SelectionService(tiny_image_zoo, lr_config))
        summary = replay_concurrent(router, workload, clients=8)
        router.close()
        assert summary["queries"] == 8 * 20
        assert summary["fits"] == len({q.target for q in workload})
        assert summary["coalesced"] > 0
        assert summary["retries"] == 0

    def test_partitioned_replay_splits_traffic(self):
        service = stub_service()
        workload = [q for t in ("t0", "t1", "t2", "t3") for q in
                    generate_workload(service.zoo, WorkloadConfig(
                        num_queries=3, batch_fraction=0.0, seed=1))]
        router = AsyncSelectionRouter(service)
        summary = replay_concurrent(router, workload, clients=3,
                                    partition=True)
        router.close()
        assert summary["queries"] == len(workload)
        assert summary["clients"] == 3

    def test_replay_retries_shed_queries(self):
        """With a tiny queue, shed queries retry and eventually land."""
        service = stub_service(fit_seconds=0.05)
        router = AsyncSelectionRouter(service, max_pending_fits=1,
                                      overflow="reject", retry_after_s=0.02)
        from repro.serving import RankRequest
        workload = [RankRequest(target=t) for t in
                    ("t0", "t1", "t2", "t3")]
        summary = replay_concurrent(router, workload, clients=4)
        router.close()
        assert summary["queries"] == 16
        assert summary["fits"] == 4
        assert summary["retries"] == summary["rejections"]
        assert summary["peak_pending_fits"] == 1

    def test_replay_async_runs_inside_existing_loop(self):
        router = AsyncSelectionRouter(stub_service())
        from repro.serving import RankRequest
        workload = [RankRequest(target="t0")]

        async def drive():
            return await replay_async(router, workload, clients=2)

        summary = run(drive())
        router.close()
        assert summary["queries"] == 2


# ---------------------------------------------------------------------- #
# RouterStats arithmetic
# ---------------------------------------------------------------------- #
class TestRouterStats:
    def test_since_subtracts_counters_and_slices_latencies(self):
        stats = RouterStats()
        stats.requests, stats.coalesced = 10, 4
        stats.record_latency("fit_ms", 1.0)
        stats.record_latency("fit_ms", 2.0)
        earlier = stats.copy()
        stats.requests, stats.coalesced = 15, 6
        stats.record_latency("fit_ms", 3.0)
        stats.record_latency("fit_ms", 4.0)
        delta = stats.since(earlier)
        assert delta.requests == 5
        assert delta.coalesced == 2
        assert delta.fits_timed == 2
        assert list(delta.fit_ms) == [3.0, 4.0]

    def test_since_survives_window_wrap(self):
        """Latency deltas must come from the append counters: once the
        bounded deque is full its *length* stops growing, and a
        length-based diff would report zero fresh samples."""
        from repro.serving.router import ROUTER_LATENCY_WINDOW

        stats = RouterStats()
        for i in range(ROUTER_LATENCY_WINDOW):
            stats.record_latency("predict_ms", float(i))
        earlier = stats.copy()
        for i in range(500):
            stats.record_latency("predict_ms", 1000.0 + i)
        delta = stats.since(earlier)
        assert delta.predicts_timed == 500
        assert list(delta.predict_ms) == [1000.0 + i for i in range(500)]
        assert delta.summary()["predict_p50_ms"] > 999.0

    def test_summary_handles_empty_latencies(self):
        summary = RouterStats().summary()
        assert summary["fit_p95_ms"] == 0.0
        assert summary["router_requests"] == 0


class TestCancellation:
    def test_cancelled_waiter_does_not_cancel_the_group(self):
        """One impatient client must not take down the originator or the
        other coalesced waiters (regression: the shared future was
        awaited unshielded, so Task.cancel() cancelled it and the
        originator crashed on set_result with InvalidStateError)."""
        service = stub_service(fit_seconds=0.1)
        router = AsyncSelectionRouter(service)

        async def scenario():
            originator = asyncio.ensure_future(router.rank("t0"))
            await asyncio.sleep(0.01)  # fit now in flight
            impatient = asyncio.ensure_future(router.rank("t0"))
            patient = asyncio.ensure_future(router.rank("t0"))
            await asyncio.sleep(0.01)
            impatient.cancel()
            results = await asyncio.gather(originator, impatient, patient,
                                           return_exceptions=True)
            return results

        originator, impatient, patient = run(scenario())
        stats = router.stats()
        router.close()
        assert isinstance(originator, list)      # unharmed
        assert isinstance(impatient, asyncio.CancelledError)
        assert isinstance(patient, list)         # unharmed
        assert originator == patient
        assert stats["fits"] == 1


# ---------------------------------------------------------------------- #
# probabilistic early shedding
# ---------------------------------------------------------------------- #
class TestEarlyShedding:
    """shed_start < 1 trades the hard admission cliff for a linear ramp."""

    def test_default_never_sheds_below_the_cliff(self):
        """shed_start=1.0 (the default) must reproduce the pre-existing
        hard-cliff behaviour exactly, even with an always-shed RNG."""
        service = stub_service(fit_seconds=0.05)
        router = AsyncSelectionRouter(service, max_pending_fits=4,
                                      shed_rng=lambda: 0.0)

        async def storm():
            return await asyncio.gather(
                *(router.rank(f"t{i}") for i in range(3)),
                return_exceptions=True)

        results = run(storm())
        stats = router.stats()
        router.close()
        assert all(isinstance(r, list) for r in results)
        assert stats["early_sheds"] == 0
        assert stats["rejections"] == 0

    def test_sheds_probabilistically_above_the_start_depth(self):
        """With shed_start=0 every admitted fit raises the draw floor;
        an always-shed RNG rejects everything after the first fit."""
        service = stub_service(targets=("t0", "t1", "t2", "t3"),
                               fit_seconds=0.1)
        router = AsyncSelectionRouter(service, max_pending_fits=4,
                                      shed_start=0.0,
                                      shed_rng=lambda: 0.0)

        async def scenario():
            first = asyncio.ensure_future(router.rank("t0"))
            await asyncio.sleep(0.02)  # t0 now occupies one slot
            shed = await asyncio.gather(router.rank("t1"), router.rank("t2"),
                                        return_exceptions=True)
            return await first, shed

        served, shed = run(scenario())
        stats = router.stats()
        router.close()
        assert isinstance(served, list)
        assert all(isinstance(r, QueueFullError) for r in shed)
        assert all(r.retry_after_s > 0 for r in shed)
        assert stats["early_sheds"] == 2
        assert stats["rejections"] == 2   # early sheds count as rejections
        assert stats["fits"] == 1

    def test_lucky_draws_are_admitted(self):
        """An RNG that never crosses the ramp admits everything: the
        ramp is probabilistic, not a second cliff."""
        service = stub_service(fit_seconds=0.05)
        router = AsyncSelectionRouter(service, max_pending_fits=8,
                                      shed_start=0.0,
                                      shed_rng=lambda: 1.0)

        async def storm():
            return await asyncio.gather(
                *(router.rank(f"t{i}") for i in range(4)),
                return_exceptions=True)

        results = run(storm())
        stats = router.stats()
        router.close()
        assert all(isinstance(r, list) for r in results)
        assert stats["early_sheds"] == 0

    def test_wait_overflow_ignores_early_shedding(self):
        """Warmup and overflow='wait' paths park instead of shedding."""
        service = stub_service(fit_seconds=0.02)
        router = AsyncSelectionRouter(service, max_pending_fits=2,
                                      overflow="wait", shed_start=0.0,
                                      shed_rng=lambda: 0.0)
        timings = run(router.warmup())
        stats = router.stats()
        router.close()
        assert len(timings) == 4
        assert stats["early_sheds"] == 0
        assert stats["fits"] == 4

    def test_shed_probability_ramps_linearly(self):
        service = stub_service()
        router = AsyncSelectionRouter(service, max_pending_fits=8,
                                      shed_start=0.5)
        try:
            for depth, expected in ((0, 0.0), (4, 0.0), (5, 0.25),
                                    (6, 0.5), (7, 0.75)):
                router._pending_fits = depth
                assert router._shed_probability() == pytest.approx(expected)
        finally:
            router._pending_fits = 0
            router.close()

    def test_rejects_bad_shed_start(self):
        service = stub_service()
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError):
                AsyncSelectionRouter(service, shed_start=bad)


# ---------------------------------------------------------------------- #
# PR 7 regressions: predict-lock lifecycle, failed coalesced waits
# ---------------------------------------------------------------------- #
class TestPredictLockEviction:
    def test_lock_map_bounded_by_cache_size(self):
        """Regression: predict locks used to outlive their cache entries,
        leaking one lock per target ever served."""
        targets = tuple(f"t{i}" for i in range(8))
        service = stub_service(targets=targets, cache_size=2)
        router = AsyncSelectionRouter(service)
        try:
            for target in targets:
                run(router.rank(target))
            assert len(router._predict_locks) <= service.cache_size
            assert set(router._predict_locks) == {
                (t, service.config_fp) for t in service.cached_targets()}
        finally:
            router.close()

    def test_invalidate_drops_the_lock(self):
        service = stub_service()
        router = AsyncSelectionRouter(service)
        try:
            run(router.rank("t0"))
            key = ("t0", service.config_fp)
            assert key in router._predict_locks
            service.invalidate("t0")
            assert key not in router._predict_locks
            # invalidating a target that is not cached is a no-op for
            # the lock map too
            service.invalidate("t1")
        finally:
            router.close()

    def test_relocking_after_eviction_still_serves(self):
        service = stub_service(targets=("t0", "t1", "t2"), cache_size=1)
        router = AsyncSelectionRouter(service)
        try:
            assert run(router.rank("t0"))[0][0] == "m0"
            assert run(router.rank("t1"))[0][0] == "m0"  # evicts t0
            assert run(router.rank("t0"))[0][0] == "m0"  # refits fine
        finally:
            router.close()


class TestFailedWaits:
    def test_generic_fit_failure_counts_failed_waits(self):
        """Regression: a waiter whose originator's fit *failed* (not
        shed) kept outcome 'coalesced' and no counter recorded the
        group-wide failure."""
        service = stub_service(fit_seconds=0.05, fail_first=1)
        router = AsyncSelectionRouter(service)

        async def storm():
            return await asyncio.gather(
                *(router.rank("t0") for _ in range(4)),
                return_exceptions=True)

        results = run(storm())
        stats = router.stats()
        router.close()
        assert all(isinstance(r, RuntimeError) for r in results)
        assert stats["failed_waits"] == 3     # everyone but the originator
        assert stats["coalesced"] == 3        # they did coalesce first
        assert stats["rejections"] == 0       # a failure is not a shed

    def test_shed_originator_still_counts_rejections_not_failed_waits(self):
        service = stub_service(fit_seconds=0.2)
        router = AsyncSelectionRouter(service, max_pending_fits=1)

        async def storm():
            originator = asyncio.ensure_future(router.rank("t0"))
            await asyncio.sleep(0.05)
            waiter = asyncio.ensure_future(router.rank("t0"))
            await asyncio.sleep(0.01)
            shed = await asyncio.gather(router.rank("t1"),
                                        return_exceptions=True)
            assert isinstance(shed[0], QueueFullError)
            await asyncio.gather(originator, waiter)

        run(storm())
        stats = router.stats()
        router.close()
        assert stats["failed_waits"] == 0
        assert stats["rejections"] == 1

    def test_failed_waits_in_summary_and_since(self):
        earlier = RouterStats()
        later = RouterStats(failed_waits=2, coalesced=5)
        delta = later.since(earlier)
        assert delta.failed_waits == 2
        assert later.summary()["failed_waits"] == 2
        merged = RouterStats().merge(later)
        assert merged.failed_waits == 2
