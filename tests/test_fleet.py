"""The distributed fit fleet: wire protocol, dispatch, typed failover.

Three layers of coverage:

- property-based round-trips (hypothesis) for every fleet wire frame —
  encode/decode must be lossless and byte-stable, arrays must survive
  with dtype/shape/order intact;
- in-thread worker integration: socket-vs-thread artifact parity (the
  same byte-identity contract the process plane proved), coalescing,
  typed timeout/no-workers/fit-error semantics, heartbeat reaping, and
  version-skew refusal;
- real-daemon failover: two ``repro fit-worker`` subprocesses, one
  SIGKILLed mid-fit — the coalesced group must land on the survivor
  with zero lost requests.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core import FeatureSet, TransferGraphConfig
from repro.fleet import (
    FitPlaneError,
    FitTimeoutError,
    FitWorker,
    FleetCoordinator,
    NoWorkersError,
    WireError,
)
from repro.fleet import wire
from repro.obs import Observability
from repro.serving import (
    ArtifactRegistry,
    AsyncSelectionRouter,
    GatewayHTTPServer,
    RankRequest,
    SelectionGateway,
    SelectionService,
)
from repro.strategies import resolve_strategy

from serving_stubs import STUB_SCORES, StubStrategy, StubZoo, stub_service
from test_obs_http import http_request

TESTS_DIR = Path(__file__).resolve().parent
SRC_DIR = TESTS_DIR.parent / "src"


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def cached_zoo(tiny_image_zoo, tmp_path_factory):
    """The tiny zoo, saved where fleet workers can re-hydrate it."""
    from repro.zoo.cache import save_zoo

    cache_dir = tmp_path_factory.mktemp("fleet_zoo_cache")
    save_zoo(tiny_image_zoo, cache_dir)
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield tiny_image_zoo
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


# ---------------------------------------------------------------------- #
# fit doubles (module-level: fleet subprocesses unpickle by reference)
# ---------------------------------------------------------------------- #
class SlowFleetStrategy(StubStrategy):
    """Fits sleep so tests get a window to observe/kill the worker."""

    def __init__(self, sleep_s=1.0):
        super().__init__("slow-fleet", STUB_SCORES["agree"])
        self.sleep_s = sleep_s

    def fit(self, zoo, target):
        time.sleep(self.sleep_s)
        return super().fit(zoo, target)


class FailingFleetStrategy(StubStrategy):
    """An ordinary fit exception (not a plane failure)."""

    def __init__(self):
        super().__init__("failing-fleet", STUB_SCORES["agree"])

    def fit(self, zoo, target):
        raise ValueError(f"no fit for {target!r}")


# ---------------------------------------------------------------------- #
# wire protocol: hypothesis round-trips for every frame
# ---------------------------------------------------------------------- #
_names = st.text(min_size=1, max_size=16)
_counts = st.integers(min_value=0, max_value=2**31)
_blobs = st.binary(max_size=128)
_json_scalars = st.none() | st.booleans() | st.integers(-10**6, 10**6) | _names
_json_dicts = st.dictionaries(_names, _json_scalars, max_size=4)
_arrays = npst.arrays(
    dtype=st.sampled_from([np.float64, np.float32, np.int64, np.uint8]),
    shape=npst.array_shapes(min_dims=0, max_dims=3, max_side=4),
)

_hexes = st.text(alphabet="0123456789abcdef", min_size=0, max_size=64)

_frames = st.one_of(
    st.builds(wire.Hello, worker_name=_names, pid=_counts,
              wire_version=_counts, nonce=_hexes),
    st.builds(wire.Challenge, nonce=_hexes, proof=_hexes),
    st.builds(wire.Auth, proof=_hexes),
    st.builds(wire.Register, worker_id=_names,
              heartbeat_interval_s=st.floats(0.001, 1e6)),
    st.builds(wire.Heartbeat, worker_id=_names, outstanding=_counts,
              fits_done=_counts),
    st.builds(wire.Fit, fit_id=_names, target=_names, strategy_blob=_blobs,
              zoo_blob=_blobs),
    st.builds(wire.FitResult, fit_id=_names, meta=_json_dicts,
              spans=st.lists(_json_dicts, max_size=3),
              arrays=st.dictionaries(_names, _arrays, max_size=3)),
    st.builds(wire.FitError, fit_id=_names, kind=st.sampled_from(["fit",
              "plane"]), message=_names, exc_module=_names,
              exc_type=_names),
)


def _assert_frames_equal(original, decoded):
    assert type(decoded) is type(original)
    if isinstance(original, wire.FitResult):
        assert decoded.fit_id == original.fit_id
        assert decoded.meta == original.meta
        assert decoded.spans == original.spans
        assert list(decoded.arrays) == list(original.arrays)  # order
        for key, array in original.arrays.items():
            out = decoded.arrays[key]
            assert out.dtype == array.dtype
            assert out.shape == array.shape
            assert out.tobytes() == np.ascontiguousarray(array).tobytes()
            assert out.flags.writeable
    else:
        assert decoded == original


class TestWireRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(frame=_frames)
    def test_every_frame_round_trips_byte_stable(self, frame):
        encoded = wire.encode_frame(frame)
        # strip the outer length prefix the stream reader consumes
        decoded = wire.decode_frame(encoded[4:])
        _assert_frames_equal(frame, decoded)
        assert wire.encode_frame(decoded) == encoded

    @settings(max_examples=40, deadline=None)
    @given(frame=_frames, cut=st.integers(min_value=4, max_value=64))
    def test_truncated_payloads_raise_wire_error_not_garbage(self, frame,
                                                            cut):
        payload = wire.encode_frame(frame)[4:]
        if cut >= len(payload):
            return  # nothing to truncate away
        truncated = payload[:cut]
        try:
            wire.decode_frame(truncated)
        except WireError:
            pass  # the contract: typed, never a stray struct/KeyError

    def test_unknown_frame_and_bad_blobs_are_typed(self):
        with pytest.raises(WireError, match="unknown fleet frame"):
            wire.decode_frame(wire.encode_frame(
                wire.Hello("w", 1))[4:].replace(b"HELLO", b"HOWDY"))
        with pytest.raises(WireError, match="not a fleet frame"):
            wire.encode_frame(object())
        fit = wire.encode_frame(wire.Fit("f1", "t0", b"abc", b"de"))[4:]
        with pytest.raises(WireError, match="blob bytes"):
            wire.decode_frame(fit[:-1])

    def test_non_json_meta_is_a_wire_error_at_encode_time(self):
        frame = wire.FitResult("f1", meta={"oops": object()}, spans=[])
        with pytest.raises(WireError, match="not JSON-encodable"):
            wire.encode_frame(frame)

    def test_oversized_length_prefix_is_refused(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data((wire.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(WireError, match="ceiling"):
                await wire.read_frame(reader)

        run(scenario())


# ---------------------------------------------------------------------- #
# coordinator + in-thread workers: dispatch and typed failure semantics
# ---------------------------------------------------------------------- #
def fleet_with_workers(count=2, secret=None, **kwargs):
    """A started coordinator with ``count`` in-thread workers live."""
    fleet = FleetCoordinator("127.0.0.1", 0, secret=secret, **kwargs)
    host, port = fleet.start()
    workers = [FitWorker(host, port, name=f"wk{i}", secret=secret)
               for i in range(count)]
    threads = [w.run_in_thread() for w in workers]
    fleet.wait_for_workers(count)
    return fleet, workers, threads


def socket_router(service, fleet, **kwargs):
    return AsyncSelectionRouter(service, fit_executor="socket", fleet=fleet,
                                **kwargs)


class TestDispatch:
    def test_rank_and_coalescing_match_thread_counters(self):
        def drive(executor, fleet=None):
            service = SelectionService(
                StubZoo(), StubStrategy("agree", STUB_SCORES["agree"],
                                        fit_seconds=0.3))
            router = AsyncSelectionRouter(service, fit_executor=executor,
                                          fleet=fleet)

            async def traffic():
                await asyncio.gather(*(router.rank("t0") for _ in range(5)))
                await router.rank("t1")
                return await router.rank("t0")  # warm

            try:
                warm = run(traffic())
                return warm, router.stats()
            finally:
                router.close()

        fleet, _, threads = fleet_with_workers(2)
        try:
            t_warm, t_stats = drive("thread")
            s_warm, s_stats = drive("socket", fleet)
        finally:
            fleet.close()
        for t in threads:
            t.join(timeout=5)
        assert s_warm == t_warm
        for key in ("fits", "cold_fits", "coalesced", "queries",
                    "cache_hits", "failed_waits"):
            assert s_stats[key] == t_stats[key], key
        assert s_stats["coalesced"] == 4
        assert s_stats["fits"] == 2

    def test_empty_fleet_sheds_typed_no_workers(self):
        fleet = FleetCoordinator("127.0.0.1", 0)
        fleet.start()
        service = SelectionService(StubZoo(),
                                   StubStrategy("agree",
                                                STUB_SCORES["agree"]))
        router = socket_router(service, fleet)
        try:
            with pytest.raises(NoWorkersError, match="no live fit workers"):
                run(router.rank("t0"))
            assert router.pending_fits == 0
        finally:
            router.close()
            fleet.close()

    def test_timeout_is_typed_and_bounded(self):
        fleet, _, _ = fleet_with_workers(1)
        service = SelectionService(StubZoo(), SlowFleetStrategy(sleep_s=2.0))
        router = socket_router(service, fleet, fit_timeout_s=0.3)
        try:
            started = time.perf_counter()
            with pytest.raises(FitTimeoutError, match="exceeded 0.3s"):
                run(router.rank("t0"))
            assert time.perf_counter() - started < 1.5
            assert router.pending_fits == 0
        finally:
            router.close()
            fleet.close()

    def test_ordinary_fit_exception_keeps_its_type(self):
        fleet, _, _ = fleet_with_workers(1)
        service = SelectionService(StubZoo(), FailingFleetStrategy())
        router = socket_router(service, fleet)
        try:
            with pytest.raises(ValueError, match="no fit for 't0'"):
                run(router.rank("t0"))
            # the worker survives a failed fit and serves the next one
            service2 = SelectionService(
                StubZoo(), StubStrategy("agree", STUB_SCORES["agree"]))
            router2 = socket_router(service2, fleet)
            try:
                assert run(router2.rank("t0"))[0][0] == "m0"
            finally:
                router2.close()
        finally:
            router.close()
            fleet.close()

    def test_unpicklable_strategy_is_a_typed_submit_error(self):
        fleet, _, _ = fleet_with_workers(1)
        router = socket_router(stub_service(), fleet)
        try:
            with pytest.raises(FitPlaneError, match="not.*picklable"):
                run(router.rank("t0"))
        finally:
            router.close()
            fleet.close()

    def test_router_requires_a_fleet_for_socket_mode(self):
        with pytest.raises(ValueError, match="needs a FleetCoordinator"):
            AsyncSelectionRouter(stub_service(), fit_executor="socket")

    def test_router_close_leaves_the_shared_fleet_running(self):
        fleet, _, _ = fleet_with_workers(1)
        try:
            router = socket_router(stub_service(), fleet)
            router.close()
            assert fleet.worker_count == 1  # not torn down with the router
        finally:
            fleet.close()


class TestWorkerLifecycle:
    def test_silent_worker_is_reaped(self):
        fleet = FleetCoordinator("127.0.0.1", 0, heartbeat_interval_s=0.1,
                                 heartbeat_misses=2)
        host, port = fleet.start()
        worker = FitWorker(host, port, name="mute")
        worker._send_heartbeats = False
        thread = worker.run_in_thread()
        try:
            fleet.wait_for_workers(1)
            deadline = time.monotonic() + 10.0
            while fleet.worker_count and time.monotonic() < deadline:
                time.sleep(0.05)
            assert fleet.worker_count == 0
            thread.join(timeout=5)  # reap closed the connection
            assert not thread.is_alive()
        finally:
            fleet.close()

    def test_version_skewed_worker_is_refused_before_register(self):
        fleet = FleetCoordinator("127.0.0.1", 0)
        host, port = fleet.start()

        async def scenario():
            reader, writer = await asyncio.open_connection(host, port)
            await wire.write_frame(
                writer, wire.Hello("future", os.getpid(), wire_version=999))
            with pytest.raises(asyncio.IncompleteReadError):
                await wire.read_frame(reader)
            writer.close()

        try:
            run(scenario())
            assert fleet.worker_count == 0
        finally:
            fleet.close()

    def test_fleet_summary_names_every_worker(self):
        fleet, workers, _ = fleet_with_workers(2)
        try:
            summary = fleet.fleet_summary()
            assert summary["workers"] == 2
            assert summary["outstanding"] == 0
            assert sorted(d["name"] for d in summary["details"]) == \
                ["wk0", "wk1"]
            assert all(d["pid"] == os.getpid() for d in summary["details"])
        finally:
            fleet.close()


class TestAuth:
    """The mutual HMAC handshake gating registration (--fleet-secret)."""

    def test_secured_fleet_serves_fits_end_to_end(self):
        fleet, _, _ = fleet_with_workers(2, secret="s3kr1t")
        service = SelectionService(StubZoo(),
                                   StubStrategy("agree",
                                                STUB_SCORES["agree"]))
        router = socket_router(service, fleet)
        try:
            assert run(router.rank("t0"))[0][0] == "m0"
        finally:
            router.close()
            fleet.close()

    def test_wrong_secret_fails_mutual_auth_and_registers_nothing(self):
        fleet = FleetCoordinator("127.0.0.1", 0, secret="right")
        host, port = fleet.start()
        try:
            # mutual: the worker rejects the coordinator's proof first
            with pytest.raises(FitPlaneError, match="failed fleet-secret"):
                run(FitWorker(host, port, name="w", secret="wrong").run())
            assert fleet.worker_count == 0
        finally:
            fleet.close()

    def test_forged_auth_proof_is_dropped_before_register(self):
        fleet = FleetCoordinator("127.0.0.1", 0, secret="right")
        host, port = fleet.start()

        async def scenario():
            reader, writer = await asyncio.open_connection(host, port)
            await wire.write_frame(
                writer, wire.Hello("intruder", os.getpid(),
                                   nonce=wire.new_nonce()))
            challenge = await wire.read_frame(reader)
            assert isinstance(challenge, wire.Challenge)
            await wire.write_frame(writer, wire.Auth(proof="0" * 64))
            with pytest.raises(asyncio.IncompleteReadError):
                await wire.read_frame(reader)  # dropped, never REGISTER
            writer.close()

        try:
            run(scenario())
            assert fleet.worker_count == 0
        finally:
            fleet.close()

    def test_secretless_worker_is_told_to_bring_the_secret(self):
        fleet = FleetCoordinator("127.0.0.1", 0, secret="right")
        host, port = fleet.start()
        try:
            with pytest.raises(FitPlaneError,
                               match="requires a fleet secret"):
                run(FitWorker(host, port, name="bare").run())
            assert fleet.worker_count == 0
        finally:
            fleet.close()

    def test_secured_worker_refuses_an_open_coordinator(self):
        fleet = FleetCoordinator("127.0.0.1", 0)  # no secret: no challenge
        host, port = fleet.start()
        try:
            with pytest.raises(FitPlaneError,
                               match="did not request fleet-secret"):
                run(FitWorker(host, port, name="strict", secret="s").run())
        finally:
            fleet.close()

    def test_proofs_are_domain_separated(self):
        # a captured coordinator proof must never replay as a worker's
        nonce = wire.new_nonce()
        assert wire.coordinator_proof("s", nonce) != wire.worker_proof(
            "s", nonce)


class TestResolveOwnership:
    def test_foreign_fit_error_cannot_poison_anothers_fit(self):
        """A frame from worker B for a fit dispatched to worker A is
        ignored — B can neither resolve nor fail A's pending future."""
        fleet = FleetCoordinator("127.0.0.1", 0)
        host, port = fleet.start()

        async def join(name):
            reader, writer = await asyncio.open_connection(host, port)
            await wire.write_frame(writer, wire.Hello(name, os.getpid()))
            assert isinstance(await wire.read_frame(reader), wire.Register)
            return reader, writer

        async def scenario():
            reader_a, writer_a = await join("fakeA")
            _, writer_b = await join("fakeB")
            box = {}
            thread = threading.Thread(
                target=lambda: box.update(result=fleet.submit_fit(
                    StubStrategy("agree", STUB_SCORES["agree"]),
                    StubZoo(), "t0")))
            thread.start()
            fit = await asyncio.wait_for(wire.read_frame(reader_a), 10)
            assert isinstance(fit, wire.Fit)  # least-outstanding picked A
            await wire.write_frame(writer_b, wire.FitError(
                fit.fit_id, "fit", "forged", exc_module="builtins",
                exc_type="ValueError"))
            await asyncio.sleep(0.3)
            assert thread.is_alive()  # the forged frame resolved nothing
            await wire.write_frame(writer_a, wire.FitResult(
                fit.fit_id, meta={"winner": "fakeA"}, spans=[]))
            thread.join(timeout=10)
            assert not thread.is_alive()
            writer_a.close()
            writer_b.close()
            return box["result"]

        try:
            meta, arrays, spans = run(scenario())
        finally:
            fleet.close()
        assert meta == {"winner": "fakeA"}
        assert dict(arrays) == {} and spans == []

    def test_fits_done_counts_successes_not_attempts(self):
        fleet, workers, _ = fleet_with_workers(1)
        failing = SelectionService(StubZoo(), FailingFleetStrategy())
        router = socket_router(failing, fleet)
        try:
            with pytest.raises(ValueError, match="no fit for 't0'"):
                run(router.rank("t0"))
        finally:
            router.close()
        healthy = SelectionService(StubZoo(),
                                   StubStrategy("agree",
                                                STUB_SCORES["agree"]))
        router = socket_router(healthy, fleet)
        try:
            run(router.rank("t0"))
            assert workers[0].fits_done == 1  # the failure didn't count
            assert fleet.fleet_summary()["details"][0]["fits_done"] == 1
        finally:
            router.close()
            fleet.close()


class TestLifecycleRaces:
    def test_close_before_start_is_a_quiet_no_op(self):
        fleet = FleetCoordinator("127.0.0.1", 0)
        fleet.close()  # never started: nothing to join, nothing to hang
        with pytest.raises(FitPlaneError, match="closed"):
            fleet.start()

    def test_close_racing_start_never_leaks_the_loop_thread(self):
        for _ in range(5):
            fleet = FleetCoordinator("127.0.0.1", 0)

            def starter():
                try:
                    fleet.start()
                except FitPlaneError:
                    pass  # close() won the race; that's the point

            thread = threading.Thread(target=starter)
            thread.start()
            fleet.close()
            thread.join(timeout=10)
            assert not thread.is_alive()
            if fleet._thread is not None:
                fleet._thread.join(timeout=10)
                assert not fleet._thread.is_alive()


# ---------------------------------------------------------------------- #
# parity: socket-fitted artifacts byte-identical to thread-fitted
# ---------------------------------------------------------------------- #
PARITY_SPECS = [
    pytest.param(TransferGraphConfig(predictor="lr", embedding_dim=16,
                                     features=FeatureSet.everything()),
                 id="tg"),
    pytest.param("lr:all", id="lr-baseline"),
    pytest.param("logme", id="score-table"),
]


def _serve_all(zoo, strategy, executor, registry_root, fleet=None):
    service = SelectionService(zoo, strategy,
                               registry=ArtifactRegistry(registry_root))
    router = AsyncSelectionRouter(service, fit_executor=executor, fleet=fleet)
    try:
        responses = {}
        for target in zoo.target_names():
            response = run(router.handle(RankRequest(target=target)))
            responses[target] = response.to_json()
        stats = router.stats()
    finally:
        router.close()
    assert stats["fits"] == len(zoo.target_names())
    return responses


class TestParity:
    @pytest.mark.parametrize("strategy", PARITY_SPECS)
    def test_rankings_and_artifacts_byte_identical(self, cached_zoo,
                                                   tmp_path, strategy):
        thread = _serve_all(cached_zoo, strategy, "thread",
                            tmp_path / "thread_reg")
        fleet, _, _ = fleet_with_workers(2)
        try:
            via_socket = _serve_all(cached_zoo, strategy, "socket",
                                    tmp_path / "socket_reg", fleet=fleet)
        finally:
            fleet.close()
        assert thread == via_socket

        resolved = resolve_strategy(strategy)
        for target in cached_zoo.target_names():
            t_dir = tmp_path / "thread_reg" / resolved.fingerprint() / target
            s_dir = tmp_path / "socket_reg" / resolved.fingerprint() / target
            assert (t_dir / "meta.json").read_bytes() == \
                (s_dir / "meta.json").read_bytes()
            with np.load(t_dir / "arrays.npz") as t_npz, \
                    np.load(s_dir / "arrays.npz") as s_npz:
                assert sorted(t_npz.files) == sorted(s_npz.files)
                for key in t_npz.files:
                    assert t_npz[key].dtype == s_npz[key].dtype
                    assert t_npz[key].tobytes() == s_npz[key].tobytes()


# ---------------------------------------------------------------------- #
# failover: SIGKILL a real fit-worker daemon mid-fit
# ---------------------------------------------------------------------- #
def _spawn_fit_worker(host, port, name):
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC_DIR}{os.pathsep}{TESTS_DIR}"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fit-worker",
         "--connect", f"{host}:{port}", "--name", name],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


class TestFailover:
    def test_sigkill_mid_fit_retries_on_the_survivor(self):
        obs = Observability()
        fleet = FleetCoordinator("127.0.0.1", 0, obs=obs)
        host, port = fleet.start()
        procs = [_spawn_fit_worker(host, port, f"daemon{i}")
                 for i in range(2)]
        service = SelectionService(StubZoo(),
                                   SlowFleetStrategy(sleep_s=1.5))
        router = socket_router(service, fleet)
        try:
            fleet.wait_for_workers(2, timeout_s=60.0)

            async def scenario():
                first = asyncio.ensure_future(router.rank("t0"))
                second = asyncio.ensure_future(router.rank("t0"))
                busy = None
                for _ in range(500):
                    await asyncio.sleep(0.02)
                    details = fleet.fleet_summary()["details"]
                    busy = next(
                        (d for d in details if d["outstanding"]), None)
                    if busy is not None:
                        break
                assert busy is not None, "no worker ever went busy"
                os.kill(busy["pid"], signal.SIGKILL)
                return await asyncio.gather(first, second)

            results = run(scenario())
            stats = router.stats()
        finally:
            router.close()
            fleet.close()
            for proc in procs:
                proc.terminate()
                proc.wait(timeout=10)

        # zero lost requests: the whole coalesced group got the
        # survivor's result, nothing hung, nothing shed
        assert [r[0][0] for r in results] == ["m0", "m0"]
        assert stats["fits"] == 1
        assert stats["cold_fits"] == 1
        assert stats["coalesced"] == 1
        assert stats["failed_waits"] == 0
        rendered = obs.render_metrics()
        assert 'repro_fleet_dispatch_total{outcome="retry"} 1' in rendered
        assert 'repro_fleet_dispatch_total{outcome="ok"} 1' in rendered

    def test_killing_the_last_worker_sheds_typed_crash(self):
        from repro.fleet import FitWorkerCrashError

        fleet = FleetCoordinator("127.0.0.1", 0)
        host, port = fleet.start()
        proc = _spawn_fit_worker(host, port, "lone")
        service = SelectionService(StubZoo(),
                                   SlowFleetStrategy(sleep_s=1.5))
        router = socket_router(service, fleet)
        try:
            fleet.wait_for_workers(1, timeout_s=60.0)

            async def scenario():
                fit = asyncio.ensure_future(router.rank("t0"))
                for _ in range(500):
                    await asyncio.sleep(0.02)
                    if fleet.fleet_summary()["outstanding"]:
                        break
                proc.kill()
                with pytest.raises(FitWorkerCrashError):
                    await fit

            run(scenario())
            assert router.pending_fits == 0
        finally:
            router.close()
            fleet.close()
            proc.terminate()
            proc.wait(timeout=10)


# ---------------------------------------------------------------------- #
# gateway + HTTP: healthz fleet block, metrics, prestart dedup
# ---------------------------------------------------------------------- #
class TestGatewayIntegration:
    def test_healthz_and_metrics_surface_the_fleet(self):
        obs = Observability()
        fleet, _, _ = fleet_with_workers(2, obs=obs)
        gateway = SelectionGateway(obs=obs, fleet=fleet)
        for name in ("alpha", "beta"):
            gateway.add_namespace(
                name, StubZoo(), TransferGraphConfig(),
                strategies=[StubStrategy("stub:a", STUB_SCORES["agree"])],
                fit_executor="socket")
        # one shared fleet: prestart reports its workers once, not
        # once per socket router
        assert gateway.prestart_fit_planes() == 2

        async def scenario():
            server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
            await server.start()
            host, port = server.address
            _, _, rank_body = await http_request(
                host, port, "POST", "/v1/rank",
                body=json.dumps({"namespace": "alpha", "target": "t0",
                                 "strategy": "stub:a"}))
            status, _, hz_body = await http_request(
                host, port, "GET", "/v1/healthz")
            _, _, metrics_body = await http_request(
                host, port, "GET", "/v1/metrics")
            await server.close()
            return status, json.loads(rank_body), json.loads(hz_body), \
                metrics_body.decode()

        try:
            status, rank, healthz, metrics = run(scenario())
        finally:
            gateway.close()

        assert status == 200
        assert rank["ranking"][0][0] == "m0"
        assert healthz["fleet"]["workers"] == 2
        assert {d["name"] for d in healthz["fleet"]["details"]} == \
            {"wk0", "wk1"}
        assert "repro_fleet_workers 2" in metrics
        assert 'repro_fleet_dispatch_total{outcome="ok"} 1' in metrics
        # the remote fit's spans grafted into the parent trace and fed
        # the per-stage fit histogram
        assert 'stage="fit.zoo_hydrate"' in metrics
        # gateway.close() closed the fleet it owns
        assert fleet.worker_count == 0

    def test_healthz_has_no_fleet_block_without_a_fleet(self):
        gateway = SelectionGateway()
        gateway.add_namespace("alpha", StubZoo(), TransferGraphConfig())

        async def scenario():
            server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
            await server.start()
            host, port = server.address
            _, _, body = await http_request(host, port, "GET", "/v1/healthz")
            await server.close()
            return json.loads(body)

        try:
            healthz = run(scenario())
        finally:
            gateway.close()
        assert "fleet" not in healthz


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #
class TestCLI:
    def test_fit_worker_command_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fit-worker", "--connect", "10.0.0.7:9000", "--name", "gpu-3",
             "--concurrency", "2", "--fleet-secret", "hunter2"])
        assert args.command == "fit-worker"
        assert args.connect == ("10.0.0.7", 9000)
        assert args.concurrency == 2
        assert args.fleet_secret == "hunter2"

    def test_serve_accepts_socket_executor_and_fleet_listen(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--fit-executor", "socket",
             "--fleet-listen", "0.0.0.0:7700", "--no-prestart",
             "--fleet-secret", "hunter2"])
        assert args.fit_executor == "socket"
        assert args.fleet_listen == ("0.0.0.0", 7700)
        assert args.no_prestart
        assert args.fleet_secret == "hunter2"

    @pytest.mark.parametrize("bad", ["7700", "host:", ":", "host:port",
                                     "host:70000"])
    def test_bad_host_port_is_rejected(self, bad):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit-worker", "--connect", bad])
