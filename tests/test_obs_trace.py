"""Tracing and events: span nesting, outcome merge, context propagation."""

from __future__ import annotations

import io
import json
from concurrent.futures import ThreadPoolExecutor

from repro.obs import (
    OUTCOME_SEVERITY,
    EventLog,
    Observability,
    annotate,
    current_trace,
    format_event_human,
    record_cache,
    run_in_context,
    set_outcome,
    span,
)


class TestSpans:
    def test_span_without_active_trace_is_a_noop(self):
        assert current_trace() is None
        with span("fit.walks") as active:
            assert active is None   # nothing recorded, nothing raised

    def test_spans_nest_under_the_active_request(self):
        obs = Observability()
        with obs.request("rank", namespace="img") as trace:
            with span("fit.embed"):
                with span("fit.walks"):
                    pass
                with span("fit.sgns"):
                    pass
            with span("predict"):
                pass
        tree = trace.span_tree()
        assert [node["name"] for node in tree] == ["fit.embed", "predict"]
        assert [c["name"] for c in tree[0]["children"]] == \
            ["fit.walks", "fit.sgns"]
        # depth-1 stages only; nested detail stays in the tree
        assert set(trace.stage_totals()) == {"fit.embed", "predict"}

    def test_stage_totals_sum_repeated_stages(self):
        obs = Observability()
        with obs.request("score_batch") as trace:
            for _ in range(3):
                with span("predict"):
                    pass
        assert set(trace.stage_totals()) == {"predict"}
        tree = trace.span_tree()
        assert len(tree) == 3
        assert trace.stage_totals()["predict"] >= \
            max(node["duration_ms"] for node in tree)

    def test_run_in_context_carries_the_trace_to_worker_threads(self):
        obs = Observability()
        with ThreadPoolExecutor(max_workers=1) as pool:
            with obs.request("rank") as trace:
                def job():
                    with span("fit.train"):
                        return current_trace()
                seen = pool.submit(run_in_context(job)).result()
                # without the context copy the worker sees no trace
                assert pool.submit(job).result() is None
        assert seen is trace
        assert "fit.train" in trace.stage_totals()


class TestOutcomes:
    def test_outcome_merge_keeps_most_severe(self):
        obs = Observability()
        with obs.request("rank") as trace:
            set_outcome("warm")
            set_outcome("cold")
            set_outcome("warm")     # cannot downgrade
        assert trace.outcome == "cold"
        assert OUTCOME_SEVERITY["shed"] > OUTCOME_SEVERITY["cold"]

    def test_record_cache_hit_marks_warm_and_counts(self):
        obs = Observability()
        with obs.request("rank", namespace="img", strategy="logme") as trace:
            record_cache(hit=True)
        assert trace.outcome == "warm"
        with obs.request("rank", namespace="img", strategy="logme") as trace:
            record_cache(hit=False)
        assert trace.outcome == "ok"
        text = obs.render_metrics()
        assert ('repro_cache_lookups_total{namespace="img",'
                'strategy="logme",result="hit"} 1') in text
        assert ('repro_cache_lookups_total{namespace="img",'
                'strategy="logme",result="miss"} 1') in text

    def test_exception_marks_error_outcome(self):
        obs = Observability()
        try:
            with obs.request("rank") as trace:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert trace.outcome == "error"
        assert 'outcome="error"' in obs.render_metrics()

    def test_helpers_are_noops_without_a_trace(self):
        set_outcome("cold")
        record_cache(hit=True)
        annotate(target="dtd")      # none of these may raise


class TestRequestContext:
    def test_nested_request_reuses_the_outer_trace(self):
        """A replay wrapping a gateway that traces internally must not
        double-count the request."""
        obs = Observability()
        with obs.request("rank", request_id="outer") as outer:
            with obs.request("rank", request_id="inner") as inner:
                assert inner is outer
        records = obs.drain_traces()
        assert [r["request_id"] for r in records] == ["outer"]

    def test_request_id_minted_when_absent_kept_when_given(self):
        obs = Observability()
        with obs.request("rank") as trace:
            minted = trace.request_id
        assert minted and len(minted) == 16
        with obs.request("rank", request_id="abc") as trace:
            assert trace.request_id == "abc"

    def test_annotate_lands_in_trace_record_and_event(self):
        stream = io.StringIO()
        obs = Observability(event_log=EventLog(stream, json_lines=True))
        with obs.request("rank") as trace:
            annotate(target="dtd")
        assert trace.to_dict()["metadata"] == {"target": "dtd"}
        event = json.loads(stream.getvalue())
        assert event["target"] == "dtd"

    def test_trace_sink_sees_every_finished_trace(self):
        obs = Observability()
        seen: list[dict] = []
        obs.add_trace_sink(seen.append)
        with obs.request("rank", namespace="img"):
            with span("predict"):
                pass
        assert len(seen) == 1
        assert seen[0]["endpoint"] == "rank"
        assert seen[0]["spans"][0]["name"] == "predict"

    def test_requests_roll_up_into_metrics(self):
        obs = Observability()
        with obs.request("rank", namespace="img", strategy="logme"):
            set_outcome("cold")
        with obs.request("rank", namespace="img", strategy="logme"):
            set_outcome("warm")
        text = obs.render_metrics()
        assert ('repro_requests_total{endpoint="rank",namespace="img",'
                'strategy="logme",outcome="cold"} 1') in text
        assert ('repro_requests_total{endpoint="rank",namespace="img",'
                'strategy="logme",outcome="warm"} 1') in text
        assert ('repro_request_latency_ms_count{endpoint="rank",'
                'namespace="img"} 2') in text


class TestEventLog:
    def test_json_event_shape(self):
        stream = io.StringIO()
        obs = Observability(event_log=EventLog(stream, json_lines=True))
        with obs.request("rank", namespace="img", strategy="logme",
                         request_id="rid-1"):
            set_outcome("cold")
            with span("fit.estimate"):
                pass
        event = json.loads(stream.getvalue())
        assert event["event"] == "request"
        assert event["request_id"] == "rid-1"
        assert event["outcome"] == "cold"
        assert "fit.estimate" in event["stages"]
        assert "spans" not in event     # fast request: no tree dump

    def test_slow_request_carries_span_tree(self):
        stream = io.StringIO()
        obs = Observability(event_log=EventLog(stream, json_lines=True,
                                               slow_ms=0.0))
        with obs.request("rank"):
            with span("fit.train"):
                pass
        event = json.loads(stream.getvalue())
        assert event["slow"] is True
        assert event["spans"][0]["name"] == "fit.train"

    def test_human_line_names_outcome_and_stages(self):
        stream = io.StringIO()
        obs = Observability(event_log=EventLog(stream))
        with obs.request("rank", namespace="img", strategy="logme",
                         request_id="rid-9"):
            set_outcome("warm")
        line = stream.getvalue()
        for fragment in ("[     warm]", "rank", "ns=img",
                         "strategy=logme", "rid=rid-9"):
            assert fragment in line

    def test_summary_events_share_the_formatter(self):
        stream = io.StringIO()
        log = EventLog(stream, json_lines=True)
        log.emit_summary("serve-sim", p50_ms=1.5, queries=6)
        event = json.loads(stream.getvalue())
        assert event == {"event": "summary", "kind": "serve-sim",
                         "p50_ms": 1.5, "queries": 6}
        human = format_event_human(event)
        assert human.startswith("[summary:serve-sim]")
        assert "p50_ms=1.5" in human
