"""import-layering fixture: probe importing downward (nn) is allowed."""

from repro import nn

__all__ = ["nn", "feature_dim"]


def feature_dim(config):
    return int(config["dim"])
