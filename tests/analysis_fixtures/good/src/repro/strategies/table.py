"""pickle-boundary fixture: a strategy with plain-data state only."""

from repro.strategies.base import SelectionStrategy


class TableStrategy(SelectionStrategy):
    spec = "table"
    name = "Table"

    def __init__(self, scale):
        self.scale = float(scale)
        self.offsets = {}
