"""pickle-boundary fixture: spawn workers take module-level callables."""


def _fit_task(spec, target):
    return spec, target


def schedule(pool, spec, target):
    return pool.submit(_fit_task, spec, target)
