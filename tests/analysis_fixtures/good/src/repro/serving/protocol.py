"""wire-schema fixture: a stdlib-only protocol matching its snapshot.

``protocol_schema.json`` next door was generated from this module with
``repro analyze --update-schema --root tests/analysis_fixtures/good``.
"""

import json
from dataclasses import dataclass
from typing import ClassVar

PROTOCOL_VERSION = "v1"


@dataclass(frozen=True)
class RankRequest:
    kind: ClassVar[str] = "rank"
    target: str
    top_k: int = 5
    request_id: str | None = None

    def to_json(self):
        return json.dumps({"kind": self.kind, "target": self.target})


@dataclass(frozen=True)
class RankResponse:
    kind: ClassVar[str] = "rank_response"
    ranking: list[tuple[str, float]]
