"""async-blocking fixture: the sanctioned patterns only.

Blocking callables are *referenced* as executor arguments, never called
on the loop; sleeps go through asyncio.
"""

import asyncio


async def handle(loop, strategy, zoo, target):
    await asyncio.sleep(0)
    return await loop.run_in_executor(None, strategy.fit, zoo, target)


async def read_payload(path):
    return await asyncio.to_thread(_read, path)


async def lookup(loop, index, fingerprint):
    return await loop.run_in_executor(None, index.rows, fingerprint)


def _read(path):
    with open(path, "rb") as fh:
        return fh.read()
