"""lock-discipline fixture: every access pattern the rule exempts.

The declaring ``__init__``, accesses under ``with self._lock``, a
``*_locked`` helper, and one deliberate, commented
``# analyze: ignore[lock-discipline]`` fast path.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded by: self._lock

    def record(self):
        with self._lock:
            self._hits += 1

    def snapshot_locked(self):
        return self._hits

    def snapshot(self):
        with self._lock:
            return self.snapshot_locked()

    def peek_fast(self):
        # Deliberate unlocked sample: a torn read only skews one scrape.
        return self._hits  # analyze: ignore[lock-discipline]
