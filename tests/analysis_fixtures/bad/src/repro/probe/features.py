"""import-layering fixture: probe (layer 2) reaching up into serving."""

from repro.serving.router import AsyncSelectionRouter


def build_router():
    # BAD: an upward dependency — probe must not know about serving.
    return AsyncSelectionRouter
